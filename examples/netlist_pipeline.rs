//! Deck → report, with zero macro-specific Rust: parse a SPICE deck,
//! derive its fault dictionary from topology, interpret textual
//! configuration descriptions, and run the paper's full
//! generate → compact → evaluate pipeline — exactly what
//! `castg generate <deck.sp> --configs <dir>` does.
//!
//! ```sh
//! cargo run --release --example netlist_pipeline
//! ```

use std::sync::Arc;

use castg::core::report::render_pipeline_report;
use castg::core::{
    compact, evaluate_test_set, test_instances_from_compaction, AnalogMacro, CompactionOptions,
    ConfigDescription, DescribedConfig, Generator, NominalCache,
};
use castg::netlist::{parse_deck, write_deck, NetlistMacro};

// Any macro netlist — a two-stage amplifier front-ended by a divider
// subcircuit, with a Level-1 model card, scale suffixes, continuations
// and comments.
const DECK: &str = "\
* demo macro: resistively biased NMOS amplifier
.title demo-amp
.model nch nmos (vto=0.75 kp=110u lambda=0.04)
.subckt bias top mid
Rt top mid 1MEG
Rb mid 0 1MEG
.ends bias
VDD vdd 0 DC 5
VIN in 0 DC 2
X1 vdd g bias
Rc in g 100k       ; input coupling
M1 out g 0 0 nch W=10u L=1u
RD vdd out 50k
CL out 0 1p
.end
";

const DC_CONFIG: &str = "\
macro type: demo-amp
test configuration: DC output
control VIN: dc(lev)
observe out: dc()
return: dV(out)
parameter lev: 0 .. 5
variable box_rel: 0.05
variable box_gain: 1.0
variable box_floor: 1e-3
seed lev: 2
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse the deck; the circuit is a first-class castg netlist.
    let mac = NetlistMacro::from_deck_text("demo_amp", DECK)?;
    println!(
        "parsed `{}`: {} nodes, {} devices, {} derived faults",
        mac.name(),
        mac.circuit().node_count(),
        mac.circuit().devices().len(),
        mac.fault_dictionary().len(),
    );

    // Configurations are textual descriptions (normally *.cfg files in
    // a directory next to the deck; see tests/fixtures/iv_configs/).
    let config = DescribedConfig::new(1, ConfigDescription::parse(DC_CONFIG)?)?;
    let mac = mac.with_configurations(vec![Arc::new(config)]);

    // The paper's pipeline, unchanged.
    let cache = NominalCache::new();
    let dict = mac.fault_dictionary();
    let generation = Generator::new(&mac, &cache).generate(&dict);
    println!(
        "generated {} tests ({} failures) in {:.2?}",
        generation.tests.len(),
        generation.failures.len(),
        generation.wall_time
    );
    let compaction = compact(&mac, &cache, &generation, &CompactionOptions::default())?;
    let tests = test_instances_from_compaction(&mac, &compaction)?;
    let coverage = evaluate_test_set(&mac, &cache, &tests, &dict)?;
    println!(
        "compacted to {} tests covering {}/{} faults\n",
        tests.len(),
        coverage.detected(),
        coverage.total()
    );
    print!("{}", render_pipeline_report(mac.name(), &generation, &compaction, &coverage));

    // Round trip: circuits write back out as decks, exactly (flattened
    // `X…`-prefixed subcircuit internals are the documented exception —
    // their names cannot start with their card letter — so demonstrate
    // on a hand-built RLC).
    let mut rlc = castg::spice::Circuit::new();
    let a = rlc.node("a");
    let b = rlc.node("b");
    rlc.add_vsource("V1", a, castg::spice::Circuit::GROUND, castg::spice::Waveform::dc(1.0))?;
    rlc.add_resistor("R1", a, b, 10.0)?;
    rlc.add_inductor("L1", b, castg::spice::Circuit::GROUND, 1e-3)?;
    rlc.add_capacitor("C1", b, castg::spice::Circuit::GROUND, 1e-9)?;
    let deck_text = write_deck(&rlc)?;
    assert_eq!(parse_deck(&deck_text)?.circuit(), &rlc);
    println!("\nwriter round-trip: exact\n{deck_text}");
    Ok(())
}
