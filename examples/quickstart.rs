//! Quickstart: measure how visibly a single bridging defect disturbs the
//! IV-converter, exactly the way the test generator scores it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use castg::core::{AnalogMacro, Evaluator, NominalCache};
use castg::faults::Fault;
use castg::macros::IvConverter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The device under test: a CMOS transimpedance amplifier with
    // standardized node names (vdd, inn, out, ...).
    let mac = IvConverter::with_analytic_boxes();
    let circuit = mac.nominal_circuit();
    println!(
        "macro `{}` ({}): {} nodes, {} devices, {} faults in the dictionary",
        mac.name(),
        mac.macro_type(),
        circuit.node_count(),
        circuit.devices().len(),
        mac.fault_dictionary().len()
    );

    // A 10 kΩ resistive short between the second-stage input and the
    // output — one of the paper's 45 bridging faults.
    let fault = Fault::bridge("na", "out", 10e3);
    println!("\ninjected fault: {fault}");

    // Score it with test configuration #1 (DC transfer) at a few drive
    // levels. S < 0 means the tolerance box is violated → detected.
    let cache = NominalCache::new();
    let configs = mac.configurations();
    let dc = configs.iter().find(|c| c.id() == 1).expect("config #1 exists");
    let ev = Evaluator::new(dc.as_ref(), &circuit, &cache);
    println!("\nconfig #1 (dc_transfer): sensitivity S_f(lev)");
    for lev in [-40e-6, -20e-6, 0.0, 20e-6, 40e-6] {
        let report = ev.evaluate(&fault, &[lev])?;
        println!(
            "  lev = {:>8.1} µA   ΔV(out) = {:>12.5e} V   box = {:>10.3e} V   S = {:>8.3}  {}",
            lev * 1e6,
            report.faulty_returns[0] - report.nominal_returns[0],
            report.boxes[0],
            report.sensitivity,
            if report.sensitivity < 0.0 { "DETECTED" } else { "undetected" }
        );
    }
    println!("\n(negative sensitivity = the deviation leaves the tolerance box)");
    Ok(())
}
