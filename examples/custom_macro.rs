//! The framework is macro-type agnostic: run the identical generation +
//! compaction pipeline on a different macro — a five-transistor OTA
//! unity-gain buffer with its own (DC-only, fast) configuration set.
//!
//! ```sh
//! cargo run --release --example custom_macro
//! ```

use castg::core::{compact, AnalogMacro, CompactionOptions, Generator, NominalCache};
use castg::macros::OtaBuffer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ota = OtaBuffer::new();
    let dict = ota.fault_dictionary();
    println!(
        "macro `{}` ({}): {} faults ({} configurations)",
        ota.name(),
        ota.macro_type(),
        dict.len(),
        ota.configurations().len()
    );

    let cache = NominalCache::new();
    let generator = Generator::new(&ota, &cache);
    let report = generator.generate(&dict);
    println!(
        "generated {} best tests in {:?} ({} failures)",
        report.tests.len(),
        report.wall_time,
        report.failures.len()
    );
    for row in report.distribution() {
        println!(
            "  config #{} {:<14} detects best: {} bridges, {} pinholes",
            row.config_id, row.config_name, row.bridge, row.pinhole
        );
    }
    let undetected = report.undetected();
    println!("undetectable at dictionary impact: {}", undetected.len());

    let compaction = compact(&ota, &cache, &report, &CompactionOptions::default())?;
    println!(
        "compacted test set: {} → {} tests (ratio {:.1}x)",
        compaction.original_count,
        compaction.tests.len(),
        compaction.ratio()
    );
    for (i, t) in compaction.tests.iter().enumerate() {
        println!(
            "  T{i}: config #{} vin = {:.3} V covers {} fault(s)",
            t.config_id,
            t.params[0],
            t.covered_faults.len()
        );
    }
    Ok(())
}
