//! Test-configuration descriptions as text (the paper's Fig. 1): parse a
//! description, inspect it, and round-trip it back to text. This is the
//! exchange format that makes a test engineer's configuration work
//! reusable across macros of a type (§2.1).
//!
//! ```sh
//! cargo run --release --example dsl_config
//! ```

use castg::core::{AnalogMacro, ConfigDescription};
use castg::macros::IvConverter;

const STEP_RESPONSE: &str = "\
# A test configuration description for IV-converter macros,
# in the spirit of the paper's Fig. 1.
macro type: IV-converter
test configuration: Step response 1
control Iin: step(base, elev, slew_rate=sl)
observe Vout: sample(rate=sa, time=t)
return: Max(dV(Vout))
parameter base: -2e-5 .. 2e-5
parameter elev: -4e-5 .. 4e-5
variable sl: 1e-8
variable sa: 1e8
variable t: 7.5e-6
seed base: 0
seed elev: 2e-5
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse the textual description.
    let parsed = ConfigDescription::parse(STEP_RESPONSE)?;
    println!("parsed `{}` for macro type `{}`", parsed.title, parsed.macro_type);
    println!("  control nodes : {:?}", parsed.controls.iter().map(|c| &c.node).collect::<Vec<_>>());
    println!("  observe nodes : {:?}", parsed.observes.iter().map(|o| &o.node).collect::<Vec<_>>());
    println!("  return value  : {}", parsed.return_value);
    for p in &parsed.parameters {
        println!("  parameter {:<6} ∈ [{:.2e}, {:.2e}]", p.name, p.lo, p.hi);
    }
    println!("  seed vector   : {:?}", parsed.seed_vector());

    // Round-trip: serialize and re-parse.
    let text = parsed.to_string();
    let reparsed = ConfigDescription::parse(&text)?;
    assert_eq!(parsed, reparsed);
    println!("\nround-trip through the text format: ok");

    // Compare with the live implementation shipped for the IV-converter.
    let mac = IvConverter::with_analytic_boxes();
    let configs = mac.configurations();
    let live = configs.iter().find(|c| c.id() == 4).expect("config #4 exists");
    let live_d = live.description();
    println!("\nlive configuration #4 (`{}`) description:\n{live_d}", live.name());
    Ok(())
}
