//! Renders tps-graphs (the paper's Figs. 2–4): the sensitivity landscape
//! of the THD test configuration for a bridging fault at three impact
//! levels, as ASCII heat maps.
//!
//! ```sh
//! cargo run --release --example tps_graph            # 9×9 grid
//! cargo run --release --example tps_graph -- 17      # finer grid
//! ```

use castg::core::{tps_graph, AnalogMacro, Evaluator, NominalCache};
use castg::faults::Fault;
use castg::macros::IvConverter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(9);

    let mac = IvConverter::with_analytic_boxes();
    let circuit = mac.nominal_circuit();
    let cache = NominalCache::new();
    let configs = mac.configurations();
    let thd = configs.iter().find(|c| c.id() == 3).expect("config #3 exists");
    let ev = Evaluator::new(thd.as_ref(), &circuit, &cache);

    // The same fault at a hard impact (10 kΩ) and two soft impacts
    // (34 kΩ, 75 kΩ): the soft-fault graphs share a stable optimum.
    for ohms in [10e3, 34e3, 75e3] {
        let fault = Fault::bridge("tail", "out", ohms);
        let graph = tps_graph(&ev, &fault, n, n)?;
        println!("{}", graph.render_ascii());
        if let Some((x, y, s)) = graph.optimum() {
            println!(
                "optimum: Iin_dc = {:.1} µA, freq = {:.1} kHz, S = {s:.3}\n",
                x * 1e6,
                y / 1e3
            );
        }
    }
    Ok(())
}
