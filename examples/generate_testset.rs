//! The full pipeline of the paper on a slice of the IV-converter fault
//! dictionary: per-fault optimal test generation (§3), compaction into a
//! small test set (§4), and coverage evaluation.
//!
//! ```sh
//! cargo run --release --example generate_testset          # 8 faults
//! cargo run --release --example generate_testset -- 55    # full dictionary
//! ```

use castg::core::{
    compact, evaluate_test_set, test_instances_from_compaction, AnalogMacro,
    CompactionOptions, Generator, NominalCache,
};
use castg::faults::FaultDictionary;
use castg::macros::IvConverter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);

    let mac = IvConverter::with_analytic_boxes();
    let full = mac.fault_dictionary();
    let dict: FaultDictionary = full.faults().iter().take(n).cloned().collect();
    println!("generating optimal tests for {} / {} faults...", dict.len(), full.len());

    let cache = NominalCache::new();
    let generator = Generator::new(&mac, &cache);
    let report = generator.generate(&dict);
    println!(
        "generated {} tests in {:?} ({} simulator evaluations)",
        report.tests.len(),
        report.wall_time,
        report.total_evaluations()
    );
    for t in &report.tests {
        println!(
            "  {:<22} → config #{} {:<14} T = {:?}  S_dict = {:>8.3}  R_crit = {:.2e} Ω",
            t.fault.name(),
            t.config_id,
            t.config_name,
            t.params.iter().map(|p| format!("{p:.3e}")).collect::<Vec<_>>(),
            t.sensitivity_at_dictionary,
            t.fault.base_resistance() * t.critical_scale,
        );
    }

    // §4: collapse the per-fault tests.
    let compaction = compact(&mac, &cache, &report, &CompactionOptions::default())?;
    println!(
        "\ncompaction: {} → {} tests (ratio {:.1}x, {} screen rejections, δ = {})",
        compaction.original_count,
        compaction.tests.len(),
        compaction.ratio(),
        compaction.screen_rejections,
        compaction.delta
    );
    for (i, t) in compaction.tests.iter().enumerate() {
        println!("  T{i}: config #{} {:?} covers {:?}", t.config_id, t.params, t.covered_faults);
    }

    // Verify the compacted set still detects the dictionary.
    let instances = test_instances_from_compaction(&mac, &compaction)?;
    let coverage = evaluate_test_set(&mac, &cache, &instances, &dict)?;
    println!(
        "\ncompacted-set coverage: {}/{} faults detected ({:.1} %); escapes: {:?}",
        coverage.detected(),
        coverage.total(),
        100.0 * coverage.coverage(),
        coverage.escapes()
    );
    Ok(())
}
