* device zoo: diode, BJTs, and the controlled-source cards
.model dm d (is=1e-14 n=1.0 rs=5 cjo=2p)
.model qn npn (is=1e-15 bf=100 br=2 cje=4p cjc=2p)
.model qp pnp (is={isv} bf=80)
.param isv=2e-15 gain=2
VCC vcc 0 DC 5
VIN in 0 DC 2.5
D1 in mid dm
D2 mid 0 dm
Q1 c1 in e1 qn
Q2 out c1 e2 qp
RC vcc c1 4k
RE e1 0 1k
RL out 0 2k
E1 ep 0 c1 0 1.5
G1 gp 0 in 0 1m
F1 fp 0 VCC {gain}
H1 hp 0 VIN 50
RG gp 0 1k
RF fp 0 1k
RH hp 0 1k
RE2 e2 vcc 1k
.end
