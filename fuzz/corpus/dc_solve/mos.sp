.model nch nmos (vto={vt} kp=110u)
.param vt=0.75 w=10u
V1 d 0 DC 5
V2 g 0 DC 2
M1 d g 0 0 nch W={w} L=1u
.end
