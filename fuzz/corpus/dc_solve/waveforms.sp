.title every waveform
.param a=1u f=10k
V1 a 0 SIN({a} 0.5u {f})
V2 b 0 PULSE(0 5 1u 10n 10n 5u 10u)
V3 c 0 PWL(0 0 1u 5 2u 0)
V4 d 0 STEP(0 5 1u 10n)
I1 0 e DC {a*2}
R1 a b 1k
R2 b c 2.5MEG
R3 c d 1e6
L1 d e 1m
C1 e 0 1.5pF
.end
