* Synthetic R-divider macro: the deck twin of
* castg_core::synthetic::DividerMacro (same element values, same node
* names, same device order — the parsed circuit equals the hand-built
* one exactly). Exercised by the netlist golden fixture.
.title R-divider
V1 vin 0 DC 5
R1 vin mid 1k
R2 mid out 1k
R3 out 0 2k
C1 out 0 1n
.end
