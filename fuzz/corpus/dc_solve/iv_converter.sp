* castg netlist (regenerate with castg_netlist::write_deck)
.nodeorder vdd vref inn tail nmir na nz out biasp biasn
.model castg_m0 nmos (vto=0.75 kp=0.00011 lambda=0.04 gamma=0.5 phi=0.7 cox=0.0023 cgso=3e-10)
.model castg_m1 pmos (vto=-0.9 kp=3.8e-5 lambda=0.05 gamma=0.45 phi=0.7 cox=0.0023 cgso=3e-10)
VDD vdd 0 DC 5.0
IIN inn 0 DC 0.0
R1 vdd vref 200000.0
R2 vref 0 200000.0
CREF vref 0 5e-12
IBIAS vdd biasn DC 2e-5
M10 biasn biasn 0 0 castg_m0 W=2e-5 L=2e-6
M9 biasp biasn 0 0 castg_m0 W=2e-5 L=2e-6
M8 biasp biasp vdd vdd castg_m1 W=4e-5 L=2e-6
M5 tail biasp vdd vdd castg_m1 W=4e-5 L=2e-6
M1 nmir inn tail vdd castg_m1 W=6e-5 L=2e-6
M2 na vref tail vdd castg_m1 W=6e-5 L=2e-6
M3 nmir nmir 0 0 castg_m0 W=2e-5 L=2e-6
M4 na nmir 0 0 castg_m0 W=2e-5 L=2e-6
M6 out na 0 0 castg_m0 W=8e-5 L=1e-6
M7 out biasp vdd vdd castg_m1 W=8e-5 L=2e-6
RZ na nz 2000.0
CC nz out 4e-12
RF out inn 39000.0
CF out inn 1.5e-12
.end
