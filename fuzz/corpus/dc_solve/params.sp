.title params and expressions
.param ratio=2 rbase=1k
.param rtot={rbase*ratio}
V1 in 0 DC {1+ratio}
R1 in out {rtot/2}
R2 out 0 {rbase}
C1 out 0 {10p*(ratio+1)}
.end
