.param g=1k
.subckt leg a b r=1k rr={2*r}
R1 a m {r}
R2 m b {rr}
.ends
V1 in 0 DC 5
X1 in out leg
X2 out 0 leg r={g/2}
.end
