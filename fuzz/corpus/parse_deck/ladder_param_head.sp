.title parameterized RC ladder (256 sections)
* Parameterized mirror of castg_core::synthetic::LadderMacro::new(256).
* Every element value routes through a `.param` definition and a braced
* expression, so this fixture pins the whole .param/{expr} path against
* the hand-built reference macro bit for bit (see tests/ladder_param.rs).
.param vsrc=5 rsrc=1k
.param rser={rsrc} rshunt=1e9 cshunt=10p
V1 src 0 DC {vsrc}
Rsrc src in {rsrc}
Rs1 in n1 {rser}
Rp1 n1 0 {rshunt}
Cp1 n1 0 {cshunt}
Rs2 n1 n2 {rser}
Rp2 n2 0 {rshunt}
Cp2 n2 0 {cshunt}
Rs3 n2 n3 {rser}
Rp3 n3 0 {rshunt}
Cp3 n3 0 {cshunt}
Rs4 n3 n4 {rser}
Rp4 n4 0 {rshunt}
Cp4 n4 0 {cshunt}
Rs5 n4 n5 {rser}
Rp5 n5 0 {rshunt}
Cp5 n5 0 {cshunt}
Rs6 n5 n6 {rser}
Rp6 n6 0 {rshunt}
Cp6 n6 0 {cshunt}
Rs7 n6 n7 {rser}
Rp7 n7 0 {rshunt}
Cp7 n7 0 {cshunt}
Rs8 n7 n8 {rser}
Rp8 n8 0 {rshunt}
Cp8 n8 0 {cshunt}
Rs9 n8 n9 {rser}
Rp9 n9 0 {rshunt}
Cp9 n9 0 {cshunt}
Rs10 n9 n10 {rser}
Rp10 n10 0 {rshunt}
Cp10 n10 0 {cshunt}
Rs11 n10 n11 {rser}
Rp11 n11 0 {rshunt}
Cp11 n11 0 {cshunt}
Rs12 n11 n12 {rser}
Rp12 n12 0 {rshunt}
Cp12 n12 0 {cshunt}
Rs13 n12 n13 {rser}
Rp13 n13 0 {rshunt}
Cp13 n13 0 {cshunt}
Rs14 n13 n14 {rser}
Rp14 n14 0 {rshunt}
Cp14 n14 0 {cshunt}
Rs15 n14 n15 {rser}
Rp15 n15 0 {rshunt}
Cp15 n15 0 {cshunt}
Rs16 n15 n16 {rser}
Rp16 n16 0 {rshunt}
Cp16 n16 0 {cshunt}
Rs17 n16 n17 {rser}
Rp17 n17 0 {rshunt}
Cp17 n17 0 {cshunt}
