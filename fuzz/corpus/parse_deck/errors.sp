.param a={b}
.param b={a}
R1 αβ 0 {undefined_name
V1 x 0 DC {1/0}
X1 {1} s
.end
