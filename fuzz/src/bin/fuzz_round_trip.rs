//! Fuzz target: any deck that *parses* must round-trip through the
//! writer — `parse(write(parse(d)))` yields the identical circuit and
//! title, and the written deck is fully resolved (no `.param`, no
//! `{…}`).
//!
//! `write_deck_with_title` may legitimately refuse circuits whose
//! names the deck grammar cannot spell
//! ([`NetlistError::Unrepresentable`]): subcircuit flattening prefixes
//! internal devices `X1.R1`, and a resistor card cannot start with `X`.
//! That arm is a *skip*; any other writer error on a parsed deck is a
//! bug.
//!
//! [`NetlistError::Unrepresentable`]: castg_netlist::NetlistError::Unrepresentable

use std::process::ExitCode;

use castg_netlist::{parse_deck, write_deck_with_title, NetlistError};

fn main() -> ExitCode {
    castg_fuzz::fuzz_main("round_trip", |data: &[u8]| {
        let text = String::from_utf8_lossy(data);
        let Ok(deck) = parse_deck(&text) else { return };
        let written = match write_deck_with_title(deck.circuit(), deck.title.as_deref()) {
            Ok(w) => w,
            Err(NetlistError::Unrepresentable { .. }) => return,
            Err(e) => panic!("parsed deck failed to write: {e}\ninput:\n{text}"),
        };
        // Written decks are fully resolved: no `.param` card and no
        // `{…}` expression anywhere — except inside the `.title`,
        // whose text is verbatim and may spell anything.
        for line in written.lines() {
            if line.len() >= 6 && line.as_bytes()[..6].eq_ignore_ascii_case(b".title") {
                continue;
            }
            // Card = first whitespace-separated token; a device *named*
            // `M2.param` is legal and not a parameter definition.
            let card = line.split_whitespace().next().unwrap_or("");
            assert!(
                !card.eq_ignore_ascii_case(".param") && !line.contains('{'),
                "writer output is not resolved at `{line}`:\n{written}"
            );
        }
        let reparsed = match parse_deck(&written) {
            Ok(d) => d,
            Err(e) => panic!("written deck failed to reparse: {e}\ndeck:\n{written}"),
        };
        assert_eq!(reparsed.title, deck.title, "title diverged:\n{written}");
        assert!(reparsed.params.is_empty(), "written deck reintroduced params:\n{written}");
        assert_eq!(
            reparsed.circuit(),
            deck.circuit(),
            "round-trip diverged:\ninput:\n{text}\nwritten:\n{written}"
        );
    })
}
