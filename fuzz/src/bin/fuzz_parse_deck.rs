//! Fuzz target: `parse_deck` must never panic, whatever bytes arrive.
//!
//! The contract under test is the frontend's first promise — errors are
//! `Err` values with a 1-based location, never unwinds, never hangs —
//! over arbitrary (lossily decoded) input.

use std::process::ExitCode;

use castg_netlist::parse_deck;

fn main() -> ExitCode {
    castg_fuzz::fuzz_main("parse_deck", |data: &[u8]| {
        let text = String::from_utf8_lossy(data);
        if let Err(e) = parse_deck(&text) {
            // Errors must render and carry sane locations; formatting
            // them here keeps the Display paths under fuzz too.
            let _ = e.to_string();
        }
    })
}
