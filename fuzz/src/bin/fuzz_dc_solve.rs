//! Fuzz target: a budgeted DC operating-point solve must never panic
//! and never run away, whatever deck arrives.
//!
//! The contract under test is the solver's robustness promise (PR 8):
//! over any circuit the frontend lowers, the Newton strategy ladder
//! either lands, or fails with a typed `Err` — no unwinds anywhere in
//! the assemble/factor/iterate stack — and the analysis-level budget
//! ([`AnalysisOptions::max_total_iter`] / `budget_ms`) actually bounds
//! the work: a solve that ignores its caps shows up here as a
//! wall-clock overrun, which panics the harness and saves the deck.
//!
//! Successful solves must also return finite state: a converged
//! residual over non-finite unknowns would mean the convergence test
//! itself is broken.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use castg_netlist::parse_deck;
use castg_spice::{AnalysisOptions, DcAnalysis};

/// Decks above this MNA size are skipped: the budget caps Newton
/// iterations, not factorization cost, and the mutation loop should
/// spend its time on device/topology shapes rather than giant systems.
const MAX_UNKNOWNS: usize = 192;

/// Hard wall-clock ceiling per solve. The budget below is 250 ms; a
/// solve that takes longer than this despite it has escaped its caps.
const OVERRUN: Duration = Duration::from_secs(10);

fn main() -> ExitCode {
    castg_fuzz::fuzz_main("dc_solve", |data: &[u8]| {
        let text = String::from_utf8_lossy(data);
        let Ok(deck) = parse_deck(&text) else { return };
        let circuit = deck.circuit();
        if circuit.unknown_count() == 0 || circuit.unknown_count() > MAX_UNKNOWNS {
            return;
        }
        let opts = AnalysisOptions {
            max_total_iter: Some(2_000),
            budget_ms: Some(250),
            ..AnalysisOptions::default()
        };
        let t0 = Instant::now();
        match DcAnalysis::with_options(circuit, opts).solve() {
            Ok(sol) => {
                assert!(
                    sol.state().iter().all(|v| v.is_finite()),
                    "converged DC solution has non-finite state:\n{text}"
                );
            }
            // Typed failures (no convergence, singular, timeout) are
            // legitimate outcomes for arbitrary decks; their Display
            // paths stay under fuzz.
            Err(e) => {
                let _ = e.to_string();
            }
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < OVERRUN,
            "budgeted DC solve overran its caps: {elapsed:?} for:\n{text}"
        );
    })
}
