//! Fuzz target: the daemon's wire parsers must never panic, whatever
//! bytes a client sends.
//!
//! Two layers under test, exactly as `castg serve` composes them:
//!
//! 1. [`castg_serve::http::parse_head`] — the incremental HTTP/1.1
//!    request-head parser. Arbitrary bytes must yield either a typed
//!    [`HttpError`](castg_serve::http::HttpError), a "need more bytes"
//!    `Ok(None)`, or a well-formed head whose reported length is in
//!    bounds — never an unwind.
//! 2. [`castg_serve::json::parse_json`] — the body parser, fed both the
//!    raw input and (when the head parses) the slice the head says the
//!    body starts at, plus [`CampaignRequest::from_json`] over any
//!    value that survives, so the typed-decode layer fuzzes too.

use std::process::ExitCode;

use castg_serve::http::parse_head;
use castg_serve::json::parse_json;
use castg_serve::CampaignRequest;

fn main() -> ExitCode {
    castg_fuzz::fuzz_main("http_request", |data: &[u8]| {
        match parse_head(data) {
            Ok(Some((head, body_at))) => {
                // The offset contract: the body starts inside (or at the
                // end of) the buffer the head was parsed from.
                assert!(body_at <= data.len(), "body offset {body_at} > {}", data.len());
                let _ = head.content_length;
                // Decode the remainder the way the server would.
                if let Ok(v) = parse_json(&data[body_at..]) {
                    if let Err(e) = CampaignRequest::from_json(&v) {
                        let _ = e.to_string();
                    }
                }
            }
            Ok(None) => {}
            Err(e) => {
                // Errors must render (Display paths under fuzz too).
                let _ = e.to_string();
            }
        }
        // The body parser also sees the raw bytes directly (the batch
        // endpoint parses nested job objects out of arbitrary arrays).
        match parse_json(data) {
            Ok(v) => {
                if let Err(e) = CampaignRequest::from_json(&v) {
                    let _ = e.to_string();
                }
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    })
}
