//! In-tree fuzzing driver for the deck frontend.
//!
//! The build environment has no registry access, so this harness does
//! what `cargo fuzz` would otherwise do, with the pieces the targets
//! actually need: corpus replay, a time-bounded deterministic mutation
//! loop (xorshift over bit flips, byte edits, splices, truncations and
//! SPICE-dictionary token insertion), `catch_unwind` around the target,
//! and artifact capture on the first panic. Every run with the same
//! `--seed`, `--seconds` and corpus is bit-reproducible.
//!
//! ```text
//! cargo run --release -p castg-fuzz --bin fuzz_parse_deck -- --seconds 60
//! cargo run --release -p castg-fuzz --bin fuzz_round_trip -- crash-1a2b.deck
//! ```
//!
//! Passing file paths replays just those inputs (the triage loop for a
//! saved artifact); otherwise the corpus directory is replayed and then
//! mutated for `--seconds` wall-clock seconds. A panicking input is
//! written to `fuzz/artifacts/<target>/` and the process exits with
//! code 101, so CI smoke jobs fail loudly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Tokens the mutator splices in whole, so random inputs reach the
/// deck grammar's deeper corners (params, expressions, subcircuits,
/// continuations) far sooner than byte noise would.
const DICTIONARY: &[&str] = &[
    ".param ", ".subckt ", ".ends", ".model ", ".title ", ".end", ".nodeorder ", "DC ", "SIN(",
    "PULSE(", "PWL(", "STEP(", "{", "}", "{a+b}", "{1k*x}", "(", ")", "=", "1k", "2.5MEG", "10p",
    "1e308", "-1e-308", "\n+ ", "\nX1 a b s ", "\nV1 a 0 DC 1\n", "\nR1 a b {r}\n", "*", ";",
    " $ ", "w=", "0", "..", "e", "αβ",
    // Device-zoo cards and model types: diodes, BJTs, the controlled
    // sources, and their `.model` parameter keys.
    "\nD1 a b dm\n", "\nQ1 c b e qm\n", "\nG1 a 0 c 0 1m\n", "\nF1 a 0 V1 2\n",
    "\nH1 a 0 V1 50\n", ".model dm d (is=1e-14 n=1 rs=5 cjo=2p)\n",
    ".model qm npn (is=1e-15 bf=100 br=2 cje=4p cjc=2p)\n", " npn ", " pnp ", " d ",
    "is=", "bf=", "br=", "cje=", "cjc=", "cjo=", "cj0=", "rs=", "n=",
    // Wire-protocol tokens for the `castg serve` frontend targets:
    // request lines, header fields and JSON fragments, so mutated
    // inputs reach past the request-line parser and into header,
    // body-length and JSON-escape handling.
    "POST /v1/campaign HTTP/1.1\r\n", "GET /v1/health HTTP/1.1\r\n", "HTTP/1.1", "HTTP/1.0",
    "\r\n\r\n", "\r\n", "Content-Length: ", "Content-Length: 18446744073709551616\r\n",
    "Transfer-Encoding: chunked\r\n", "Connection: keep-alive\r\n", "Connection: close\r\n",
    "Host: a\r\n", ": ", "{\"name\": \"x\", \"deck\": \"", "\"configs\": [",
    "\"params\": {", "\\u0041", "\\ud834\\udd1e", "\\ud800", "\\\"", "1e309", "-0.5e-7",
    "true", "false", "null", "[[[[", "]]]]", "{\"a\":", "}}", ",",
];

/// Default per-run mutation budget when `--seconds` is absent: long
/// enough to exercise the grammar, short enough for a test suite.
const DEFAULT_SECONDS: u64 = 2;

/// Deterministic xorshift64* — the only randomness source in the
/// harness, seeded from `--seed` (default 0x9e3779b97f4a7c15).
pub struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One mutation step: returns a modified copy of `input`.
fn mutate(rng: &mut Rng, input: &[u8]) -> Vec<u8> {
    let mut out = input.to_vec();
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        match rng.below(6) {
            // Bit flip.
            0 if !out.is_empty() => {
                let i = rng.below(out.len());
                out[i] ^= 1 << rng.below(8);
            }
            // Byte replace.
            1 if !out.is_empty() => {
                let i = rng.below(out.len());
                out[i] = (rng.next() & 0xff) as u8;
            }
            // Truncate a tail.
            2 if out.len() > 1 => {
                out.truncate(1 + rng.below(out.len() - 1));
            }
            // Duplicate a random slice (continuation/line duplication).
            3 if !out.is_empty() => {
                let a = rng.below(out.len());
                let b = a + rng.below(out.len() - a);
                let slice = out[a..b].to_vec();
                let at = rng.below(out.len());
                out.splice(at..at, slice);
            }
            // Insert a dictionary token.
            4 => {
                let tok = DICTIONARY[rng.below(DICTIONARY.len())].as_bytes();
                let at = rng.below(out.len() + 1);
                out.splice(at..at, tok.iter().copied());
            }
            // Delete a random slice.
            _ if out.len() > 1 => {
                let a = rng.below(out.len());
                let b = a + rng.below(out.len() - a);
                out.drain(a..b);
            }
            _ => {}
        }
        // Keep inputs bounded: the parser's costs are linear, but the
        // harness should spend its budget on shapes, not length.
        if out.len() > 1 << 14 {
            out.truncate(1 << 14);
        }
    }
    out
}

fn repo_root() -> PathBuf {
    // fuzz/ is a workspace member one level below the root.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().map(Path::to_path_buf).unwrap_or_default()
}

/// Loads every regular file in the target's corpus directory, sorted by
/// name for reproducibility. Missing directory → empty corpus.
fn load_corpus(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).filter(|p| p.is_file()).collect(),
        Err(_) => Vec::new(),
    };
    entries.sort();
    entries
        .into_iter()
        .filter_map(|p| std::fs::read(&p).ok().map(|data| (p, data)))
        .collect()
}

/// Runs `target` over one input, capturing any panic.
fn execute(target: &dyn Fn(&[u8]), input: &[u8]) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| target(input))).map_err(|e| {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

/// Writes the crashing input under `fuzz/artifacts/<name>/` and
/// returns its path (best-effort: falls back to the current directory).
fn save_artifact(name: &str, input: &[u8]) -> PathBuf {
    // FNV-1a over the input names the artifact stably.
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in input {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let dir = repo_root().join("fuzz/artifacts").join(name);
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("crash-{h:016x}.deck"));
    let _ = std::fs::write(&path, input);
    path
}

/// Entry point shared by every fuzz target binary: parses harness
/// arguments, replays the corpus (or explicit file arguments), runs the
/// time-bounded mutation loop, and reports. Returns the process exit
/// code: success, or 101 after saving a crash artifact.
pub fn fuzz_main(name: &str, target: impl Fn(&[u8])) -> ExitCode {
    let mut seconds = DEFAULT_SECONDS;
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut corpus_dir = repo_root().join("fuzz/corpus").join(name);
    let mut replay_only: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seconds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seconds = v,
                None => {
                    eprintln!("{name}: --seconds needs an integer value");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("{name}: --seed needs an integer value");
                    return ExitCode::FAILURE;
                }
            },
            "--corpus" => match args.next() {
                Some(v) => corpus_dir = PathBuf::from(v),
                None => {
                    eprintln!("{name}: --corpus needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => replay_only.push(PathBuf::from(other)),
        }
    }

    let target: &dyn Fn(&[u8]) = &target;

    // Explicit files: triage mode, replay and exit.
    if !replay_only.is_empty() {
        for path in &replay_only {
            let data = match std::fs::read(path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{name}: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            if let Err(msg) = execute(target, &data) {
                eprintln!("{name}: {} panics: {msg}", path.display());
                return ExitCode::from(101);
            }
            eprintln!("{name}: {} ok", path.display());
        }
        return ExitCode::SUCCESS;
    }

    let corpus = load_corpus(&corpus_dir);
    if corpus.is_empty() {
        eprintln!(
            "{name}: warning: empty corpus at {} — mutating from scratch",
            corpus_dir.display()
        );
    }
    for (path, data) in &corpus {
        if let Err(msg) = execute(target, data) {
            eprintln!("{name}: corpus input {} panics: {msg}", path.display());
            return ExitCode::from(101);
        }
    }

    let mut rng = Rng(seed | 1);
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut execs: u64 = corpus.len() as u64;
    let mut pool: Vec<Vec<u8>> = corpus.into_iter().map(|(_, d)| d).collect();
    if pool.is_empty() {
        pool.push(b"V1 a 0 DC 1\nR1 a 0 1k\n".to_vec());
    }
    while Instant::now() < deadline {
        // A batch per clock check keeps the loop out of syscalls.
        for _ in 0..64 {
            let base = &pool[rng.below(pool.len())];
            let input = mutate(&mut rng, base);
            if let Err(msg) = execute(target, &input) {
                let path = save_artifact(name, &input);
                eprintln!(
                    "{name}: panic after {execs} execs: {msg}\n{name}: artifact saved to {}",
                    path.display()
                );
                return ExitCode::from(101);
            }
            execs += 1;
        }
    }
    eprintln!("{name}: {execs} execs in {seconds}s, no panics");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng(42 | 1);
        let mut b = Rng(42 | 1);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn mutate_is_bounded_and_deterministic() {
        let mut a = Rng(7);
        let mut b = Rng(7);
        let seed = b"V1 a 0 DC 1\n".to_vec();
        for _ in 0..200 {
            let x = mutate(&mut a, &seed);
            let y = mutate(&mut b, &seed);
            assert_eq!(x, y);
            assert!(x.len() <= (1 << 14) + 64);
        }
    }

    #[test]
    fn execute_captures_panics() {
        let boom: &dyn Fn(&[u8]) = &|d: &[u8]| {
            if d.first() == Some(&b'!') {
                panic!("boom");
            }
        };
        assert!(execute(boom, b"ok").is_ok());
        let err = execute(boom, b"!").unwrap_err();
        assert!(err.contains("boom"));
    }
}
