//! Cross-validation of the AC small-signal engine against the transient
//! engine and against the IV-converter's designed behaviour. Two
//! independent numerical paths agreeing is strong evidence both are
//! right.

use castg::core::AnalogMacro;
use castg::macros::IvConverter;
use castg::spice::{
    AcAnalysis, AcSource, Circuit, Probe, TranAnalysis, Waveform,
};

#[test]
fn ac_matches_transient_steady_state_for_rc() {
    // Drive an RC low-pass at its pole frequency: the transient
    // steady-state amplitude must equal the AC magnitude.
    let (r, c) = (1e3, 1e-9);
    let f0 = 1.0 / (2.0 * std::f64::consts::PI * r * c);
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::sine(0.0, 1.0, f0)).unwrap();
    ckt.add_resistor("R1", vin, out, r).unwrap();
    ckt.add_capacitor("C1", out, Circuit::GROUND, c).unwrap();

    // AC path.
    let sweep = AcAnalysis::new(&ckt)
        .source(AcSource { name: "V1".into(), magnitude: 1.0 })
        .run(&[f0])
        .unwrap();
    let h_ac = sweep.voltage(0, out).abs();

    // Transient path: simulate 8 periods, measure the peak of the tail.
    let period = 1.0 / f0;
    let trace = TranAnalysis::new(&ckt)
        .run(8.0 * period, period / 256.0, &[Probe::NodeVoltage(out)])
        .unwrap();
    let tail = &trace.column(0)[trace.len() * 3 / 4..];
    let h_tran = tail.iter().fold(0.0_f64, |m, v| m.max(v.abs()));

    assert!(
        (h_ac - h_tran).abs() < 0.02,
        "AC says {h_ac:.4}, transient steady state says {h_tran:.4}"
    );
}

#[test]
fn iv_converter_ac_transimpedance_is_rf_in_band() {
    let mac = IvConverter::with_analytic_boxes();
    let circuit = mac.nominal_circuit();
    let out = circuit.find_node("out").unwrap();
    let sweep = AcAnalysis::new(&circuit)
        .source(AcSource { name: "IIN".into(), magnitude: 1.0 })
        .run(&[1e3, 10e3, 100e3])
        .unwrap();
    let z = sweep.magnitude(out);
    // In-band transimpedance ≈ RF = 39 kΩ, flat through 100 kHz.
    for (f, zi) in sweep.freqs().iter().zip(&z) {
        assert!(
            (zi - 39e3).abs() / 39e3 < 0.05,
            "|Z({f} Hz)| = {zi}, expected ≈ 39 kΩ"
        );
    }
}

#[test]
fn iv_converter_bandwidth_is_finite_and_reasonable() {
    // Far above the loop bandwidth the transimpedance must roll off.
    let mac = IvConverter::with_analytic_boxes();
    let circuit = mac.nominal_circuit();
    let out = circuit.find_node("out").unwrap();
    let sweep = AcAnalysis::new(&circuit)
        .source(AcSource { name: "IIN".into(), magnitude: 1.0 })
        .run(&[10e3, 100e6])
        .unwrap();
    let z = sweep.magnitude(out);
    assert!(
        z[1] < 0.5 * z[0],
        "no roll-off: |Z(100 MHz)| = {} vs |Z(10 kHz)| = {}",
        z[1],
        z[0]
    );
}

#[test]
fn bridge_fault_shifts_ac_response() {
    // A feedback bridge halves the transimpedance — visible in AC too,
    // foreshadowing gain-style extension test configurations.
    let mac = IvConverter::with_analytic_boxes();
    let circuit = mac.nominal_circuit();
    let faulty = castg::faults::Fault::bridge("out", "inn", 39e3).inject(&circuit).unwrap();
    let out = circuit.find_node("out").unwrap();
    let run = |c: &Circuit| {
        AcAnalysis::new(c)
            .source(AcSource { name: "IIN".into(), magnitude: 1.0 })
            .run(&[1e3])
            .unwrap()
            .voltage(0, out)
            .abs()
    };
    let z_nom = run(&circuit);
    let z_flt = run(&faulty);
    assert!(
        (z_flt - z_nom / 2.0).abs() / z_nom < 0.1,
        "z_nom = {z_nom}, z_faulty = {z_flt} (expected ≈ half)"
    );
}
