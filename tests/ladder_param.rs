//! Differential harness for the `.param`/expression frontend: the
//! committed `ladder_param.sp` fixture — a fully parameterized deck
//! where every element value routes through a `.param` definition and a
//! braced `{…}` expression — must lower to **exactly** the hand-built
//! [`LadderMacro::new(256)`] circuit: same node table (interning
//! order), bit-identical device values, bit-identical DC state, and
//! (release-only) an identical generate → compact → evaluate coverage
//! report when driven by the reference macro's configurations and
//! dictionary.

use std::path::PathBuf;

use castg::core::synthetic::LadderMacro;
use castg::core::{
    compact, evaluate_test_set, report::render_pipeline_report, test_instances_from_compaction,
    AnalogMacro, CompactionOptions, Generator, NominalCache,
};
use castg::netlist::{parse_deck, parse_deck_with_params, NetlistMacro};

const SECTIONS: usize = 256;

fn fixture_text() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ladder_param.sp");
    std::fs::read_to_string(&path).expect("ladder_param.sp fixture exists")
}

/// The parameterized deck lowers to the hand-built ladder *exactly*:
/// same node count and interning order, same devices with bit-identical
/// values (`Circuit` equality is value-exact on every `f64`).
#[test]
fn ladder_param_deck_lowers_to_the_hand_built_ladder() {
    let deck = parse_deck(&fixture_text()).expect("fixture deck parses");
    assert_eq!(deck.title.as_deref(), Some("parameterized RC ladder (256 sections)"));
    let parsed = deck.into_circuit();
    let built = LadderMacro::new(SECTIONS).nominal_circuit();
    assert_eq!(parsed.node_count(), built.node_count());
    assert_eq!(parsed.unknown_count(), built.unknown_count());
    for id in built.non_ground_nodes() {
        assert_eq!(
            parsed.find_node(built.node_name(id)),
            Some(id),
            "node {} interned differently",
            built.node_name(id)
        );
    }
    assert_eq!(parsed, built, "parameterized deck must equal the hand-built ladder");
}

/// The resolved parameter report carries every `.param` under its deck
/// spelling, in deck order, with the exact values the reference macro's
/// constants hold (`10p` must resolve to the same bits as `10e-12`).
#[test]
fn ladder_param_resolved_values_are_exact() {
    let deck = parse_deck(&fixture_text()).unwrap();
    let expect = [
        ("vsrc", 5.0),
        ("rsrc", LadderMacro::R_SOURCE),
        ("rser", LadderMacro::R_SERIES),
        ("rshunt", LadderMacro::R_SHUNT),
        ("cshunt", LadderMacro::C_SHUNT),
    ];
    assert_eq!(deck.params.len(), expect.len());
    for ((name, value), (want_name, want)) in deck.params.iter().zip(expect) {
        assert_eq!(name, want_name);
        assert_eq!(value.to_bits(), want.to_bits(), "{name}: {value} vs {want}");
    }
}

/// DC operating points of the parsed and hand-built circuits agree bit
/// for bit across the full 259-unknown state vector.
#[test]
fn ladder_param_dc_state_is_bit_identical() {
    use castg::spice::DcAnalysis;
    let parsed = parse_deck(&fixture_text()).unwrap().into_circuit();
    let built = LadderMacro::new(SECTIONS).nominal_circuit();
    let sp = DcAnalysis::new(&parsed).solve().expect("parsed circuit converges");
    let sb = DcAnalysis::new(&built).solve().expect("built circuit converges");
    assert_eq!(sp.state().len(), sb.state().len());
    for (i, (a, b)) in sp.state().iter().zip(sb.state()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "unknown {i}: {a} vs {b}");
    }
}

/// An external override re-scales the whole ladder: `--param rsrc=2k`
/// must propagate through the dependent `rser={rsrc}` definition into
/// every series resistor, matching a hand-built circuit where both
/// constants changed.
#[test]
fn ladder_param_override_rescales_the_ladder() {
    let overridden = parse_deck_with_params(&fixture_text(), &[("rsrc".to_string(), 2e3)])
        .unwrap()
        .into_circuit();
    use castg::spice::DeviceKind;
    for name in ["Rsrc", "Rs1", "Rs256"] {
        match overridden.device(name).expect(name).kind() {
            DeviceKind::Resistor { ohms, .. } => {
                assert_eq!(*ohms, 2e3, "{name} must follow the rsrc override");
            }
            other => panic!("{name} should be a resistor, got {other:?}"),
        }
    }
}

/// End-to-end acceptance: driven by the reference macro's own
/// configurations and fault dictionary, the parsed parameterized deck
/// produces a byte-identical pipeline coverage report. Release-only:
/// the step configuration optimizes 259-unknown transients.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release")]
fn ladder_param_coverage_report_is_identical() {
    let reference = LadderMacro::new(SECTIONS);
    let netlist_mac = NetlistMacro::from_deck_text("ladder", &fixture_text())
        .expect("fixture deck loads")
        .with_configurations(reference.configurations());
    let dict = reference.fault_dictionary();

    let report = |mac: &dyn AnalogMacro| -> String {
        let cache = NominalCache::new();
        let generation = Generator::new(mac, &cache).generate(&dict);
        assert!(generation.failures.is_empty(), "generation failed: {:?}", generation.failures);
        let compaction =
            compact(mac, &cache, &generation, &CompactionOptions::default()).unwrap();
        let tests = test_instances_from_compaction(mac, &compaction).unwrap();
        let coverage = evaluate_test_set(mac, &cache, &tests, &dict).unwrap();
        render_pipeline_report("ladder", &generation, &compaction, &coverage)
    };

    let from_deck = report(&netlist_mac);
    let from_reference = report(&reference);
    assert_eq!(
        from_deck, from_reference,
        "parameterized deck and hand-built ladder must produce identical reports"
    );
}
