//! Regression tests for the `castg check` CLI surface: parameter
//! overrides reaching the lowered circuit, resolved-parameter printing,
//! and the named structural-singularity diagnostic.

use std::io::Write;
use std::process::Command;

fn castg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_castg"))
}

fn write_deck(dir: &std::path::Path, name: &str, text: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(text.as_bytes()).unwrap();
    path
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("castg-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn check_prints_resolved_params_and_applies_overrides() {
    let dir = temp_dir("params");
    let deck = write_deck(
        &dir,
        "pdeck.sp",
        ".title param smoke\n\
         .param rload=2k\n\
         V1 vin 0 DC 5\n\
         R1 vin out 1k\n\
         R2 out 0 {rload}\n",
    );

    // Deck value: divider 1k over 2k -> v(out) = 10/3.
    let out = castg().arg("check").arg(&deck).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("resolved parameters:"), "stdout: {stdout}");
    assert!(stdout.contains(".param rload = 2e3"), "stdout: {stdout}");
    assert!(stdout.contains("v(out) = 3.333333e0"), "stdout: {stdout}");

    // Override shadows the deck definition: 1k over 4k -> v(out) = 4.
    let out =
        castg().arg("check").arg(&deck).args(["--param", "rload=4k"]).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(".param rload = 4e3"), "stdout: {stdout}");
    assert!(stdout.contains("v(out) = 4.000000e0"), "stdout: {stdout}");
}

#[test]
fn check_rejects_malformed_param_flags() {
    let dir = temp_dir("badparam");
    let deck = write_deck(&dir, "d.sp", "V1 a 0 DC 1\nR1 a 0 1k\n");
    for bad in ["rload", "=4k", "rload=abc"] {
        let out = castg().arg("check").arg(&deck).args(["--param", bad]).output().unwrap();
        assert!(!out.status.success(), "--param {bad} should be rejected");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("--param"), "stderr: {stderr}");
    }
}

#[test]
fn check_names_the_singular_unknown() {
    let dir = temp_dir("singular");
    // V2 and V3 disagree across the same node pair: the MNA system is
    // structurally singular at V3's branch-current column.
    let deck = write_deck(
        &dir,
        "sing.sp",
        "V1 a 0 DC 1\n\
         R1 a b 1k\n\
         V2 b 0 DC 1\n\
         V3 b 0 DC 2\n",
    );
    let out = castg().arg("check").arg(&deck).output().unwrap();
    assert!(!out.status.success(), "a singular deck must fail `check`");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("structurally singular at unknown i(V3)"),
        "diagnostic must name the branch unknown, got: {stderr}"
    );
    assert!(stderr.contains("voltage-source loop"), "stderr: {stderr}");
}

#[test]
fn check_reports_param_cycles_with_the_defining_line() {
    let dir = temp_dir("cycle");
    let deck = write_deck(
        &dir,
        "cycle.sp",
        ".param a={b+1}\n\
         .param b={a+1}\n\
         V1 x 0 DC {a}\n\
         R1 x 0 1k\n",
    );
    let out = castg().arg("check").arg(&deck).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cycle"), "stderr: {stderr}");
}
