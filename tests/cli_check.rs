//! Regression tests for the `castg` CLI surface: parameter overrides
//! reaching the lowered circuit, resolved-parameter printing, the named
//! structural-singularity diagnostic, and the `generate` robustness
//! flags (`--max-newton-iters`, `--budget-ms`, `--strict`) with their
//! outcome accounting and exit codes.

use std::io::Write;
use std::process::Command;

fn castg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_castg"))
}

fn write_deck(dir: &std::path::Path, name: &str, text: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(text.as_bytes()).unwrap();
    path
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("castg-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn check_prints_resolved_params_and_applies_overrides() {
    let dir = temp_dir("params");
    let deck = write_deck(
        &dir,
        "pdeck.sp",
        ".title param smoke\n\
         .param rload=2k\n\
         V1 vin 0 DC 5\n\
         R1 vin out 1k\n\
         R2 out 0 {rload}\n",
    );

    // Deck value: divider 1k over 2k -> v(out) = 10/3.
    let out = castg().arg("check").arg(&deck).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("resolved parameters:"), "stdout: {stdout}");
    assert!(stdout.contains(".param rload = 2e3"), "stdout: {stdout}");
    assert!(stdout.contains("v(out) = 3.333333e0"), "stdout: {stdout}");
    let digest = extract_digest(&stdout);
    assert!(stdout.contains("request digest (name `pdeck`"), "stdout: {stdout}");

    // Override shadows the deck definition: 1k over 4k -> v(out) = 4.
    let out =
        castg().arg("check").arg(&deck).args(["--param", "rload=4k"]).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(".param rload = 4e3"), "stdout: {stdout}");
    assert!(stdout.contains("v(out) = 4.000000e0"), "stdout: {stdout}");
    // A resolved-parameter change is a semantic change: the `castg
    // serve` cache key the digest line predicts must move with it.
    assert_ne!(digest, extract_digest(&stdout), "override did not move the request digest");
}

/// Pulls the 64-hex-char digest out of `check`'s digest line.
fn extract_digest(stdout: &str) -> String {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("request digest"))
        .unwrap_or_else(|| panic!("no digest line in: {stdout}"));
    let hex = line.rsplit(' ').next().unwrap().trim().to_string();
    assert_eq!(hex.len(), 64, "not a sha-256 hex digest: {line}");
    assert!(hex.bytes().all(|b| b.is_ascii_hexdigit()), "not hex: {line}");
    hex
}

#[test]
fn check_rejects_malformed_param_flags() {
    let dir = temp_dir("badparam");
    let deck = write_deck(&dir, "d.sp", "V1 a 0 DC 1\nR1 a 0 1k\n");
    for bad in ["rload", "=4k", "rload=abc"] {
        let out = castg().arg("check").arg(&deck).args(["--param", bad]).output().unwrap();
        assert!(!out.status.success(), "--param {bad} should be rejected");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("--param"), "stderr: {stderr}");
    }
}

#[test]
fn check_names_the_singular_unknown() {
    let dir = temp_dir("singular");
    // V2 and V3 disagree across the same node pair: the MNA system is
    // structurally singular at V3's branch-current column.
    let deck = write_deck(
        &dir,
        "sing.sp",
        "V1 a 0 DC 1\n\
         R1 a b 1k\n\
         V2 b 0 DC 1\n\
         V3 b 0 DC 2\n",
    );
    let out = castg().arg("check").arg(&deck).output().unwrap();
    assert!(!out.status.success(), "a singular deck must fail `check`");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("structurally singular at unknown i(V3)"),
        "diagnostic must name the branch unknown, got: {stderr}"
    );
    assert!(stderr.contains("voltage-source loop"), "stderr: {stderr}");
}

fn fixture(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

#[test]
fn generate_reports_outcomes_and_ladder_statistics() {
    let dir = temp_dir("outcomes");
    let json = dir.join("cov.json");
    let out = castg()
        .arg("generate")
        .arg(fixture("divider.sp"))
        .arg("--configs")
        .arg(fixture("divider_configs"))
        .arg("--json")
        .arg(&json)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("castg: outcomes: detected"), "stderr: {stderr}");
    assert!(stderr.contains("ladder:"), "stderr: {stderr}");
    // A healthy campaign must not emit the robustness warning.
    assert!(!stderr.contains("robustness-suspect"), "stderr: {stderr}");
    let json_text = std::fs::read_to_string(&json).unwrap();
    assert!(json_text.contains("\"outcomes\": {\"detected\": "), "json: {json_text}");
    assert!(json_text.contains("\"convergence_stats\": {\"solves\": "), "json: {json_text}");
    assert!(json_text.contains("\"outcome\": \"detected\""), "json: {json_text}");
    assert!(json_text.contains("\"unconverged\": 0"), "json: {json_text}");
    assert!(json_text.contains("\"panicked\": 0"), "json: {json_text}");
}

#[test]
fn generate_strict_fails_on_exhausted_iteration_budget() {
    // A zero-iteration allowance makes every faulted solve exhaust its
    // budget deterministically: all faults come back `unconverged`.
    // Without --strict that is a warning and exit 0; with --strict the
    // run must exit 1 and name the flag.
    let dir = temp_dir("strict");
    let json = dir.join("cov.json");
    let base = |extra: &[&str]| {
        let mut cmd = castg();
        cmd.arg("generate")
            .arg(fixture("divider.sp"))
            .arg("--configs")
            .arg(fixture("divider_configs"))
            .arg("--json")
            .arg(&json)
            .args(["--max-newton-iters", "0"])
            .args(extra);
        cmd.output().unwrap()
    };

    let out = base(&[]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("robustness-suspect"), "stderr: {stderr}");
    let json_text = std::fs::read_to_string(&json).unwrap();
    assert!(json_text.contains("\"outcome\": \"unconverged\""), "json: {json_text}");

    let out = base(&["--strict"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--strict"), "stderr: {stderr}");
    assert!(stderr.contains("robustness-suspect"), "stderr: {stderr}");
}

#[test]
fn generate_rejects_malformed_budget_flags() {
    for bad in
        [&["--max-newton-iters", "many"][..], &["--budget-ms", "-5"][..], &["--budget-ms"][..]]
    {
        let out = castg()
            .arg("generate")
            .arg(fixture("divider.sp"))
            .arg("--configs")
            .arg(fixture("divider_configs"))
            .args(bad)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{bad:?} should be rejected");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains(bad[0]), "stderr: {stderr}");
    }
}

#[test]
fn check_reports_param_cycles_with_the_defining_line() {
    let dir = temp_dir("cycle");
    let deck = write_deck(
        &dir,
        "cycle.sp",
        ".param a={b+1}\n\
         .param b={a+1}\n\
         V1 x 0 DC {a}\n\
         R1 x 0 1k\n",
    );
    let out = castg().arg("check").arg(&deck).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cycle"), "stderr: {stderr}");
}
