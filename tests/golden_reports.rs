//! Golden-file regression tests: the generate → compact → evaluate
//! pipeline's canonical report rendering must match the committed
//! fixtures under `tests/golden/` **byte for byte**.
//!
//! The pipeline is deterministic (fixed seeds, deterministic
//! optimizers, order-stable parallel fan-out), so any diff here means
//! an algorithmic change — intended or not. To update the fixtures
//! after an intentional change, run
//!
//! ```text
//! cargo run --release -p castg-bench --bin regen_all
//! ```
//!
//! which rewrites `tests/golden/*.txt`, and review the diff.

use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn assert_matches_fixture(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with \
             `cargo run --release -p castg-bench --bin regen_all`",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "golden report {name} diverged from its fixture.\n\
         If the change is intentional, regenerate with\n\
         `cargo run --release -p castg-bench --bin regen_all` and review the diff.\n\
         --- fixture ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn divider_generation_report_is_byte_stable() {
    assert_matches_fixture("divider_generation.txt", &castg_bench::golden::divider_report());
}

/// The machine-readable (`--json` / `castg serve` response body) JSON
/// shape over the divider pipeline, with timings pinned to constants.
/// Any field added, removed or reformatted in
/// `castg_core::report::render_json_report` shows up here — and
/// therefore changes what every daemon client parses.
#[test]
fn json_report_is_byte_stable() {
    assert_matches_fixture("json_report.json", &castg_bench::golden::json_report());
}

#[test]
fn mesh_generation_report_is_byte_stable() {
    assert_matches_fixture("mesh_generation.txt", &castg_bench::golden::mesh_report());
}

/// The bipolar (diode + BJT) macro's pipeline over a bridge + junction
/// pinhole fault mix: the junction-limited Newton path must render the
/// identical report byte for byte.
#[test]
fn bjt_generation_report_is_byte_stable() {
    assert_matches_fixture("bjt_generation.txt", &castg_bench::golden::bjt_report());
}

/// The parsed-deck (netlist frontend) pipeline: the divider deck +
/// description-file configurations under `tests/fixtures/` must render
/// the identical report byte for byte.
#[test]
fn netlist_generation_report_is_byte_stable() {
    let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    assert_matches_fixture(
        "netlist_generation.txt",
        &castg_bench::golden::netlist_report(&fixtures),
    );
}

/// Release-only: the IV-converter golden run optimizes transient-heavy
/// configurations and takes ~50 s unoptimized. The CI release-test job
/// runs it on every push; locally use
/// `cargo test --release --test golden_reports`. The rendering is
/// bit-identical between debug and release builds (no fast-math
/// anywhere), so nothing is lost by asserting it in release only.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release")]
fn iv_converter_generation_report_is_byte_stable() {
    assert_matches_fixture("iv_generation.txt", &castg_bench::golden::iv_report());
}
