* castg netlist (regenerate with castg_netlist::write_deck)
.nodeorder vcc vin tail c1 c2 out bias e3 bmid e4
.model castg_d0 d (is=1e-14 n=1.0 rs=5.0 cjo=2e-12)
.model castg_q0 npn (is=1e-15 bf=100.0 br=2.0 cje=4e-12 cjc=2e-12)
.model castg_q1 pnp (is=1e-15 bf=100.0 br=2.0 cje=4e-12 cjc=2e-12)
VCC vcc 0 DC 5.0
VIN vin 0 DC 2.5
Q1 c1 out tail castg_q0
Q2 c2 vin tail castg_q0
RC1 vcc c1 4000.0
RC2 vcc c2 4000.0
RE3 vcc e3 1000.0
Q3 out c2 e3 castg_q1
ROUT out 0 2000.0
RB vcc bias 10000.0
D1 bias bmid castg_d0
D2 bmid 0 castg_d0
Q4 tail bias e4 castg_q0
RE4 e4 0 600.0
CL out 0 2e-12
.end
