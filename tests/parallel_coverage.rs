//! Parallel-equivalence coverage tests on the scalable macro family:
//! `evaluate_test_set_with_threads` must produce the identical report —
//! fault order, best-test indices, sensitivities bit for bit — at any
//! worker count. The in-crate test pins this on the toy divider; these
//! extend it to a `LadderMacro` large enough (n ≥ 256) that the sparse
//! solver path carries the simulations and every worker is actually
//! busy.

use std::sync::Arc;

use castg::core::synthetic::{LadderMacro, OtaChainMacro};
use castg::core::{
    compact, evaluate_test_set_with_threads, test_instances_from_compaction, AnalogMacro,
    CompactionOptions, Generator, GeneratorOptions, NominalCache, TestInstance,
};
use castg::faults::FaultDictionary;
use castg::numeric::{BrentOptions, PowellOptions};

/// DC-config test instances at a few stimulus levels (cheap to
/// evaluate, no generation run needed).
fn dc_instances(mac: &dyn AnalogMacro, levels: &[f64]) -> Vec<TestInstance> {
    let config = mac
        .configurations()
        .into_iter()
        .find(|c| c.name() == "dc_out")
        .expect("macro has a dc_out configuration");
    levels
        .iter()
        .map(|&lev| TestInstance { config: Arc::clone(&config), params: vec![lev] })
        .collect()
}

#[test]
fn ladder_256_parallel_reports_are_identical() {
    let mac = LadderMacro::with_unknowns(256);
    assert!(mac.unknowns() >= 256);
    let cache = NominalCache::new();
    let dict = mac.fault_dictionary();
    let tests = dc_instances(&mac, &[2.0, 5.0, 7.5]);

    let serial = evaluate_test_set_with_threads(&mac, &cache, &tests, &dict, 1).unwrap();
    assert_eq!(serial.total(), dict.len());
    // The ladder family is built so its faults stay detectable at
    // scale; an all-escape report would make the equivalence vacuous.
    assert!(serial.detected() > 0, "escapes: {:?}", serial.escapes());

    for threads in [2, 4, 8] {
        let parallel =
            evaluate_test_set_with_threads(&mac, &cache, &tests, &dict, threads).unwrap();
        assert_eq!(parallel.test_count, serial.test_count, "threads = {threads}");
        assert_eq!(parallel.per_fault, serial.per_fault, "threads = {threads}");
    }
}

/// The full generate → compact → evaluate pipeline runs on a ladder
/// big enough that every simulation takes the sparse solver path
/// (`Auto` picks sparse from n = 64), proving the scalable family
/// plugs into the paper's algorithms end to end — not just into raw
/// coverage evaluation.
#[test]
fn ladder_generation_compaction_pipeline() {
    let mac = LadderMacro::with_unknowns(64);
    let cache = NominalCache::new();
    // A sub-dictionary of ground bridges (strongly detectable at any
    // ladder size) keeps the optimizer work debug-friendly; the full
    // dictionary is exercised by the release-mode coverage tests.
    let dict = FaultDictionary::new(
        mac.fault_dictionary()
            .iter()
            .filter(|f| f.name().ends_with(",0)"))
            .cloned()
            .collect(),
    );
    assert!(dict.len() >= 4, "expected ground bridges, got {}", dict.len());

    let options = GeneratorOptions {
        threads: 2,
        powell: PowellOptions {
            ftol: 1e-3,
            max_iter: 6,
            line: BrentOptions { tol: 5e-3, max_iter: 10 },
        },
        brent: BrentOptions { tol: 1e-3, max_iter: 20 },
        ..GeneratorOptions::default()
    };
    let generator = Generator::with_options(&mac, &cache, options);
    let report = generator.generate(&dict);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.tests.len(), dict.len());

    let compaction = compact(&mac, &cache, &report, &CompactionOptions::default()).unwrap();
    assert!(!compaction.tests.is_empty());
    assert!(compaction.tests.len() <= report.tests.len());

    let instances = test_instances_from_compaction(&mac, &compaction).unwrap();
    let coverage = evaluate_test_set_with_threads(&mac, &cache, &instances, &dict, 4).unwrap();
    assert_eq!(
        coverage.detected(),
        dict.len(),
        "ground bridges must stay detected after compaction; escapes: {:?}",
        coverage.escapes()
    );
}

#[test]
fn ota_chain_parallel_reports_are_identical() {
    let mac = OtaChainMacro::with_unknowns(64);
    let cache = NominalCache::new();
    let dict = mac.fault_dictionary();
    let tests = dc_instances(&mac, &[1.0, 2.5, 4.0]);

    let serial = evaluate_test_set_with_threads(&mac, &cache, &tests, &dict, 1).unwrap();
    for threads in [2, 8] {
        let parallel =
            evaluate_test_set_with_threads(&mac, &cache, &tests, &dict, threads).unwrap();
        assert_eq!(parallel.per_fault, serial.per_fault, "threads = {threads}");
    }
}
