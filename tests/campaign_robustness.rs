//! Campaign convergence resilience: deliberately pathological fault
//! variants — singular matrices, genuinely non-converging solves,
//! degenerate injection sites — must degrade to typed per-fault
//! outcomes, never to a process panic or a hard `evaluate_campaign`
//! error, and the outcome tallies must be bit-identical at any worker
//! count.

use std::sync::Arc;

use castg::core::{
    check_params, evaluate_campaign, AnalogMacro, CampaignOptions, ConfigDescription,
    CoreError, FaultOutcome, Measurement, NominalCache, ParamSpec, PortAction,
    TestConfiguration, TestInstance,
};
use castg::core::synthetic::LadderMacro;
use castg::faults::{Fault, FaultDictionary};
use castg::numeric::{Bounds, ParamSpace};
use castg::spice::{Circuit, DcAnalysis, MosParams, MosPolarity, Waveform};
use proptest::prelude::*;

/// A two-transistor macro built to host pathological fault variants.
///
/// `M1` is a depletion NMOS common-source stage (`gdrv` biases its gate
/// through `Rg1`, `Rload` pulls the drain `out` to `vdd`); `M2` hangs
/// node `x` off its drain with nothing else attached, so a fault that
/// cuts `M2` off leaves `x` held only by the assembler's gmin floor.
/// The negative rail `neg` exists purely as a bridge target that drags
/// gates below the depletion threshold.
struct PathologicalMacro;

fn depletion_nmos() -> MosParams {
    MosParams { vt0: -1.0, ..MosParams::nmos_default(10e-6, 1e-6) }
}

impl AnalogMacro for PathologicalMacro {
    fn name(&self) -> &str {
        "pathological"
    }

    fn macro_type(&self) -> &str {
        "pathological"
    }

    fn nominal_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let neg = c.node("neg");
        let gdrv = c.node("gdrv");
        let g1 = c.node("g1");
        let g2 = c.node("g2");
        let out = c.node("out");
        let x = c.node("x");
        c.add_vsource("V1", vdd, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        c.add_vsource("Vn", neg, Circuit::GROUND, Waveform::dc(-5.0)).unwrap();
        c.add_vsource("Vg", gdrv, Circuit::GROUND, Waveform::dc(3.0)).unwrap();
        c.add_resistor("Rg1", gdrv, g1, 1e3).unwrap();
        c.add_resistor("Rg2", gdrv, g2, 1e3).unwrap();
        c.add_resistor("Rload", vdd, out, 10e3).unwrap();
        let gnd = Circuit::GROUND;
        c.add_mosfet("M1", out, g1, gnd, gnd, MosPolarity::Nmos, depletion_nmos()).unwrap();
        c.add_mosfet("M2", x, g2, gnd, gnd, MosPolarity::Nmos, depletion_nmos()).unwrap();
        c
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        vec!["out".into(), "g1".into(), "g2".into(), "x".into(), "neg".into()]
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        FaultDictionary::new(pathological_faults())
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![Arc::new(PathologicalDcConfig)]
    }
}

/// The dictionary the robustness tests run: one healthy detectable
/// fault, one deliberately singular variant, one deliberately
/// non-converging variant, and two degenerate injection sites.
fn pathological_faults() -> Vec<Fault> {
    vec![
        // Healthy: shorting the gate bias to the negative rail cuts M1
        // off and slams `out` to vdd — detected via plain/damped Newton.
        Fault::bridge("g1", "neg", 1.0),
        // Deliberately singular: a sub-normal bridge resistance is
        // positive and finite (so it injects), but its conductance
        // overflows to +inf; every rung's factorization sees a
        // non-finite pivot in v(out)'s column and reports the matrix
        // singular there.
        Fault::bridge("out", "0", 5e-324),
        // Deliberately non-converging: 1e250 S of finite coupling
        // destroys the conditioning of every linear solve without ever
        // producing a non-finite pivot; plain, damped, gmin stepping,
        // source stepping and pseudo-transient continuation all fail,
        // and the exhausted ladder reports no convergence.
        Fault::bridge("out", "g1", 1e-250),
        // Degenerate site: a self-bridge cannot be injected.
        Fault::bridge("g1", "g1", 10e3),
        // Degenerate site: the node does not exist in this macro.
        Fault::bridge("nowhere", "0", 10e3),
    ]
}

#[derive(Debug)]
struct PathologicalDcConfig;

impl TestConfiguration for PathologicalDcConfig {
    fn id(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "dc_out"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["lev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(4.0, 6.0).unwrap()])
    }

    fn seed(&self) -> Vec<f64> {
        vec![5.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let sol = DcAnalysis::new(circuit)
            .override_stimulus("V1", Waveform::dc(params[0]))
            .solve()?;
        let out = circuit.find_node("out").expect("macro has an `out` node");
        Ok(Measurement::scalar(sol.voltage(out)))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, _params: &[f64], _nominal: &[f64]) -> Vec<f64> {
        vec![0.05]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "pathological".into(),
            title: "DC output".into(),
            controls: vec![PortAction { node: "vdd".into(), action: "dc(lev)".into() }],
            observes: vec![PortAction { node: "out".into(), action: "dc()".into() }],
            return_value: "dV(out)".into(),
            parameters: vec![ParamSpec { name: "lev".into(), lo: 4.0, hi: 6.0 }],
            variables: vec![],
            seed: vec![("lev".into(), 5.0)],
        }
    }
}

fn pathological_tests() -> Vec<TestInstance> {
    let config: Arc<dyn TestConfiguration> = Arc::new(PathologicalDcConfig);
    vec![TestInstance { params: config.seed(), config }]
}

#[test]
fn deliberate_pathologies_become_typed_outcomes() {
    let mac = PathologicalMacro;
    let cache = NominalCache::new();
    let tests = pathological_tests();
    let dict = mac.fault_dictionary();
    let report = evaluate_campaign(
        &mac,
        &cache,
        &tests,
        &dict,
        &CampaignOptions { threads: 1, ..CampaignOptions::default() },
    )
    .expect("pathological variants must not abort the campaign");

    assert_eq!(report.per_fault.len(), dict.len());
    assert_eq!(report.per_fault[0].outcome, FaultOutcome::Detected);
    assert_eq!(
        report.per_fault[1].outcome,
        FaultOutcome::Singular { unknown: "v(out)".into() },
        "the dead-short variant must report the singular unknown"
    );
    assert_eq!(report.per_fault[2].outcome, FaultOutcome::Unconverged);
    for degenerate in &report.per_fault[3..] {
        assert!(
            matches!(degenerate.outcome, FaultOutcome::InjectionFailed { .. }),
            "degenerate site must fail injection, got {}",
            degenerate.outcome
        );
    }

    let tally = report.tally();
    assert_eq!(
        (tally.detected, tally.singular, tally.unconverged, tally.injection_failed),
        (1, 1, 1, 2)
    );
    assert_eq!(tally.suspect(), 1, "only the non-converging fault is solver fragility");
    // The non-converging variant walked the whole ladder.
    assert!(report.ladder.unconverged > 0, "ladder stats: {:?}", report.ladder);
    assert!(report.ladder.iterations > 0);
}

#[test]
fn pathological_tallies_are_bit_identical_across_thread_counts() {
    let mac = PathologicalMacro;
    let tests = pathological_tests();
    let dict = mac.fault_dictionary();
    let run = |threads: usize| {
        let cache = NominalCache::new();
        evaluate_campaign(
            &mac,
            &cache,
            &tests,
            &dict,
            &CampaignOptions { threads, ..CampaignOptions::default() },
        )
        .expect("campaign completes at any worker count")
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        let parallel = run(threads);
        assert_eq!(parallel.per_fault, serial.per_fault, "threads = {threads}");
        assert_eq!(parallel.tally(), serial.tally(), "threads = {threads}");
    }
}

#[test]
fn iteration_allowance_degrades_deterministically() {
    // Starving every (fault, test) item of iterations must turn solver
    // work into `Unconverged` — deterministically, with injection
    // failures untouched and no hard error.
    let mac = PathologicalMacro;
    let tests = pathological_tests();
    let dict = mac.fault_dictionary();
    let run = |threads: usize| {
        let cache = NominalCache::new();
        evaluate_campaign(
            &mac,
            &cache,
            &tests,
            &dict,
            &CampaignOptions {
                threads,
                max_newton_iters: Some(0),
                ..CampaignOptions::default()
            },
        )
        .expect("a starved campaign still completes")
    };
    let report = run(1);
    for f in &report.per_fault {
        assert!(
            matches!(
                f.outcome,
                FaultOutcome::Unconverged | FaultOutcome::InjectionFailed { .. }
            ),
            "{}: expected starvation or injection failure, got {}",
            f.fault,
            f.outcome
        );
    }
    assert_eq!(report.tally().unconverged, 3);
    assert_eq!(run(4).per_fault, report.per_fault);
}

/// Node universe for the random-dictionary campaigns: every fault site
/// of a 4-section ladder, the internal non-site nodes, ground, and a
/// name that exists in no circuit.
const LADDER_NODES: &[&str] = &["src", "in", "n1", "n2", "n3", "out", "0", "nowhere"];

/// Bridge resistances the random dictionaries draw from: routine
/// values, a dead short whose conductance overflows, a
/// conditioning-destroying near-short, and a near-open.
const BRIDGE_OHMS: &[f64] = &[10e3, 1.0, 5e-324, 1e-250, 1e12];

/// Decodes one drawn `usize` into a bridge over the node universe
/// (endpoint pair plus resistance index), covering self-bridges and
/// ground-to-ground bridges by construction.
fn decode_bridge(code: usize) -> Fault {
    let a = code % LADDER_NODES.len();
    let b = (code / LADDER_NODES.len()) % LADDER_NODES.len();
    let ohms = BRIDGE_OHMS[(code / (LADDER_NODES.len() * LADDER_NODES.len())) % BRIDGE_OHMS.len()];
    Fault::bridge(LADDER_NODES[a], LADDER_NODES[b], ohms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Campaigns over arbitrary adjacent-bridge dictionaries — self
    /// bridges, ground-to-ground bridges, unknown nodes, dead shorts —
    /// never panic and never return a hard error: every fault gets a
    /// typed outcome, and the tally is bit-identical at 1 and 4 workers.
    #[test]
    fn random_bridge_dictionaries_always_get_typed_outcomes(
        codes in prop::collection::vec(0usize..320, 1..8)
    ) {
        let faults: Vec<Fault> = codes.into_iter().map(decode_bridge).collect();
        let mac = LadderMacro::new(4);
        let config = mac.configurations().into_iter().next().expect("ladder has configs");
        let tests = vec![TestInstance { params: config.seed(), config }];
        let dict = FaultDictionary::new(faults);
        let run = |threads: usize| {
            let cache = NominalCache::new();
            evaluate_campaign(
                &mac,
                &cache,
                &tests,
                &dict,
                &CampaignOptions { threads, ..CampaignOptions::default() },
            )
        };
        let serial = run(1).expect("random dictionaries must not hard-error the campaign");
        prop_assert_eq!(serial.per_fault.len(), dict.len());
        let tally = serial.tally();
        prop_assert_eq!(
            tally.detected + tally.undetected + tally.unconverged + tally.singular
                + tally.timed_out + tally.panicked + tally.injection_failed,
            dict.len()
        );
        let parallel = run(4).expect("parallel campaign completes");
        prop_assert_eq!(parallel.per_fault, serial.per_fault);
        prop_assert_eq!(parallel.tally(), serial.tally());
    }
}
