//! Differential harness for the fault-campaign engine: the delta-stamp
//! injection path (variants sharing and patching the nominal circuit's
//! compiled plan) must produce **bit-identical** coverage reports to
//! the clone-and-recompile reference path, for every fault in the
//! IV-converter and ladder-n=256 dictionaries, on the dense and the
//! sparse solver path, at any worker count.
//!
//! This is the contract that lets every production evaluation default
//! to delta injection: whatever the patched plans, shared sparse
//! templates, seeded symbolic analyses and Jacobian-reuse keys do, the
//! numbers cannot move by even one ulp.

use std::sync::Arc;

use castg::core::synthetic::{LadderMacro, MeshMacro, OtaChainMacro};
use castg::core::{
    evaluate_campaign, AnalogMacro, CampaignOptions, CoverageReport, InjectionMode,
    NominalCache, TestInstance,
};
use castg::faults::{Fault, FaultDictionary, Junction};
use castg::macros::{BjtOpAmp, IvConverter};
use castg::spice::{OrderingKind, SolverKind};

/// Builds a few test instances per configuration of `mac` by scaling
/// each configuration's seed vector — cheap, deterministic, and enough
/// to exercise every measurement kind (DC, THD transient, step
/// transient) against every fault.
fn seed_instances(mac: &dyn AnalogMacro, scales: &[f64]) -> Vec<TestInstance> {
    let mut tests = Vec::new();
    for config in mac.configurations() {
        let space = config.space();
        for &scale in scales {
            let params: Vec<f64> =
                config.seed().iter().map(|p| p * scale).collect();
            let params = space.clamp(&params);
            tests.push(TestInstance { config: Arc::clone(&config), params });
        }
    }
    tests
}

fn assert_reports_bit_identical(a: &CoverageReport, b: &CoverageReport, what: &str) {
    assert_eq!(a.test_count, b.test_count, "{what}: test counts");
    assert_eq!(a.per_fault.len(), b.per_fault.len(), "{what}: fault counts");
    for (x, y) in a.per_fault.iter().zip(&b.per_fault) {
        assert_eq!(x.fault, y.fault, "{what}");
        assert_eq!(x.best_test, y.best_test, "{what}: {}", x.fault);
        assert_eq!(x.detected, y.detected, "{what}: {}", x.fault);
        assert_eq!(
            x.best_sensitivity.to_bits(),
            y.best_sensitivity.to_bits(),
            "{what}: {} sensitivity {} vs {}",
            x.fault,
            x.best_sensitivity,
            y.best_sensitivity,
        );
    }
}

/// Runs the delta-vs-rebuild differential over a macro's dictionary at
/// several worker counts; each evaluation uses a fresh nominal cache so
/// the two paths cannot share measurements.
fn differential(mac: &dyn AnalogMacro, dict: &FaultDictionary, tests: &[TestInstance]) {
    let reference = {
        let cache = NominalCache::new();
        evaluate_campaign(
            mac,
            &cache,
            tests,
            dict,
            &CampaignOptions {
                threads: 1,
                injection: InjectionMode::Rebuild,
                ..CampaignOptions::default()
            },
        )
        .expect("rebuild-path campaign")
    };
    assert!(
        reference.detected() > 0,
        "a fully undetected dictionary would make the differential vacuous; escapes: {:?}",
        reference.escapes()
    );
    for threads in [1usize, 4] {
        for injection in [InjectionMode::Delta, InjectionMode::Rebuild] {
            let cache = NominalCache::new();
            let report = evaluate_campaign(
                mac,
                &cache,
                tests,
                dict,
                &CampaignOptions { threads, injection, ..CampaignOptions::default() },
            )
            .expect("campaign");
            assert_reports_bit_identical(
                &reference,
                &report,
                &format!("threads={threads}, injection={injection:?}"),
            );
        }
    }
}

/// IV-converter (dense solver path, n = 11, nonlinear): every
/// dictionary fault — all 45 bridges and all 10 pinholes — against
/// tests from all five paper configurations.
///
/// The transient configurations make the full run a release-binary
/// workload; debug builds cover a dictionary prefix that still includes
/// both fault models.
#[test]
fn iv_converter_delta_campaign_is_bit_identical() {
    let mac = IvConverter::with_analytic_boxes();
    let full = mac.fault_dictionary();
    let take = if cfg!(debug_assertions) {
        // Two bridges plus the first pinhole keep `cargo test` quick.
        let mut faults: Vec<_> = full.iter().take(2).cloned().collect();
        if let Some(pinhole) = full.iter().find(|f| f.name().starts_with("pinhole")) {
            faults.push(pinhole.clone());
        }
        FaultDictionary::new(faults)
    } else {
        full
    };
    // One instance per configuration (the seed itself): five tests
    // covering DC, supply-current, THD and both step measurements.
    let tests = seed_instances(&mac, &[1.0]);
    differential(&mac, &take, &tests);
}

/// Ladder at n = 256 unknowns (sparse solver path, linear): the full
/// bridge dictionary against DC and step-response tests, exercising the
/// shared symbolic analysis and the factor-once Jacobian reuse on both
/// injection paths.
#[test]
fn ladder_256_delta_campaign_is_bit_identical() {
    let mac = LadderMacro::with_unknowns(256);
    assert!(mac.unknowns() >= 256);
    let dict = mac.fault_dictionary();
    let scales: &[f64] = if cfg!(debug_assertions) { &[1.0] } else { &[0.6, 1.0, 1.4] };
    let tests = seed_instances(&mac, scales);
    differential(&mac, &dict, &tests);
}

/// The mesh campaign — the workload whose natural-order fill justifies
/// the AMD ordering — run four-way: Dense, Sparse-Natural, Sparse-AMD
/// and Sparse-BTF variants of the macro each get the full
/// delta-vs-rebuild and threads-1-vs-4 bit-identity treatment, so plan
/// patching over a *permuted* pattern is pinned exactly like the
/// unpermuted paths. (The mesh is irreducible, so its forced-BTF column
/// resolves to the AMD fallback — which is exactly the degenerate case
/// the bit-identity contract must cover.) The configurations must also
/// agree with each other on which faults are detected (their
/// sensitivities differ only in the last ulps).
#[test]
fn mesh_four_way_delta_campaigns_are_bit_identical() {
    let configs: [(SolverKind, OrderingKind); 4] = [
        (SolverKind::Dense, OrderingKind::Natural),
        (SolverKind::Sparse, OrderingKind::Natural),
        (SolverKind::Sparse, OrderingKind::Amd),
        (SolverKind::Sparse, OrderingKind::Btf),
    ];
    let size = if cfg!(debug_assertions) { 64 } else { 256 };
    let mut detection: Vec<Vec<bool>> = Vec::new();
    for (solver, ordering) in configs {
        let mac = MeshMacro::with_unknowns(size).with_solver(solver, ordering);
        let dict = mac.fault_dictionary();
        let scales: &[f64] = if cfg!(debug_assertions) { &[1.0] } else { &[0.6, 1.0] };
        let tests = seed_instances(&mac, scales);
        differential(&mac, &dict, &tests);

        let cache = NominalCache::new();
        let report = evaluate_campaign(
            &mac,
            &cache,
            &tests,
            &dict,
            &CampaignOptions {
                threads: 2,
                injection: InjectionMode::Delta,
                ..CampaignOptions::default()
            },
        )
        .expect("campaign");
        detection.push(report.per_fault.iter().map(|f| f.detected).collect());
    }
    assert_eq!(detection[0], detection[1], "dense vs sparse-natural detection diverged");
    assert_eq!(detection[0], detection[2], "dense vs sparse-amd detection diverged");
    assert_eq!(detection[0], detection[3], "dense vs sparse-btf detection diverged");
}

/// The OTA-chain campaign under *forced BTF* — the one macro whose
/// static pattern genuinely condenses into per-stage blocks, so the
/// delta-vs-rebuild and threads-1-vs-4 bit-identity contract here runs
/// through the block-wise factor/solve path, patched plans and all.
/// The BTF report's detection verdicts must also match a forced
/// Sparse-AMD run of the same campaign.
#[test]
fn ota_chain_btf_delta_campaign_is_bit_identical() {
    let size = if cfg!(debug_assertions) { 64 } else { 128 };
    let mut detection: Vec<Vec<bool>> = Vec::new();
    for ordering in [OrderingKind::Amd, OrderingKind::Btf] {
        let mac = OtaChainMacro::with_unknowns(size)
            .with_solver(SolverKind::Sparse, ordering);
        let dict = mac.fault_dictionary();
        let tests = seed_instances(&mac, &[1.0]);
        differential(&mac, &dict, &tests);

        let cache = NominalCache::new();
        let report = evaluate_campaign(
            &mac,
            &cache,
            &tests,
            &dict,
            &CampaignOptions {
                threads: 2,
                injection: InjectionMode::Delta,
                ..CampaignOptions::default()
            },
        )
        .expect("campaign");
        detection.push(report.per_fault.iter().map(|f| f.detected).collect());
    }
    assert_eq!(detection[0], detection[1], "sparse-amd vs sparse-btf detection diverged");
}

/// Block-parallel BTF solves must be thread-count invariant at the
/// analysis level, not just inside the factor kernel: the same forced
/// Btf DC solve with `block_threads` 1 and 4 — nominal and under every
/// dictionary fault, delta-injected — returns bit-identical states.
#[test]
fn btf_block_threads_solve_bit_identically() {
    use castg::spice::{AnalysisOptions, DcAnalysis};
    let mac = OtaChainMacro::with_unknowns(96);
    let nominal = mac.nominal_circuit();
    nominal.compile_plan();
    let opts = |block_threads| AnalysisOptions {
        solver: SolverKind::Sparse,
        ordering: OrderingKind::Btf,
        block_threads,
        ..AnalysisOptions::default()
    };
    let solve = |circuit: &castg::spice::Circuit, threads| {
        DcAnalysis::with_options(circuit, opts(threads)).solve().unwrap()
    };
    let one = solve(&nominal, 1);
    let many = solve(&nominal, 4);
    for (a, b) in one.state().iter().zip(many.state()) {
        assert_eq!(a.to_bits(), b.to_bits(), "nominal block_threads 1 vs 4");
    }
    for fault in mac.fault_dictionary().iter() {
        let patched = fault.inject(&nominal).unwrap();
        let one = solve(&patched, 1);
        let many = solve(&patched, 4);
        for (a, b) in one.state().iter().zip(many.state()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{} block_threads 1 vs 4", fault.name());
        }
    }
}

/// The ladder campaign through the forced Sparse-AMD configuration:
/// tridiagonal-plus-branch-row structure under a non-identity
/// permutation, delta vs rebuild, threads 1 vs 4.
#[test]
fn ladder_amd_delta_campaign_is_bit_identical() {
    let mac = LadderMacro::with_unknowns(if cfg!(debug_assertions) { 96 } else { 256 })
        .with_solver(SolverKind::Sparse, OrderingKind::Amd);
    let dict = mac.fault_dictionary();
    let tests = seed_instances(&mac, &[1.0]);
    differential(&mac, &dict, &tests);
}

/// The campaign differential through the *dense* solver arm: the
/// n = 24 ladder sits below the Auto sparse threshold, so every
/// simulation of this campaign runs dense LU — the delta path's
/// bit-identity must not depend on the sparse machinery.
#[test]
fn ladder_auto_dense_delta_campaign_is_bit_identical() {
    let mac = LadderMacro::with_unknowns(24);
    let dict = mac.fault_dictionary();
    let config = mac
        .configurations()
        .into_iter()
        .find(|c| c.name() == "dc_out")
        .expect("ladder has a dc_out configuration");
    let tests: Vec<TestInstance> = [2.0, 5.0, 7.5]
        .iter()
        .map(|&lev| TestInstance { config: Arc::clone(&config), params: vec![lev] })
        .collect();
    differential(&mac, &dict, &tests);
}

/// The bipolar op-amp — the pure junction-device Newton path: every
/// dictionary fault (21 bridges + 10 diode/BJT junction pinholes in
/// release; a mix of both in debug) gets the full delta-vs-rebuild and
/// threads-1-vs-4 bit-identity treatment, pinning the patched-plan
/// `DiodeSite`/`BjtSite` stamping against clone-and-recompile.
#[test]
fn bjt_opamp_delta_campaign_is_bit_identical() {
    let mac = BjtOpAmp::new();
    let full = mac.fault_dictionary();
    let dict = if cfg!(debug_assertions) {
        // Three bridges plus three junction pinholes keep `cargo test`
        // quick while covering both fault models.
        FaultDictionary::new(
            full.iter().take(3).chain(full.iter().skip(21).take(3)).cloned().collect(),
        )
    } else {
        full
    };
    let tests = seed_instances(&mac, &[0.7, 1.0, 1.3]);
    differential(&mac, &dict, &tests);
}

/// Spice-level delta-vs-rebuild over a full-wave diode bridge
/// rectifier: bridge and anode–cathode pinhole patches on the compiled
/// plan must solve bit-identically to rebuilt circuits under both
/// forced solver kinds — the diode counterpart of the forced-kind
/// ladder differential below.
#[test]
fn rectifier_junction_faults_solve_delta_and_rebuilt_identically() {
    use castg::spice::{
        AnalysisOptions, Circuit, DcAnalysis, DiodeParams, SolverKind, Waveform,
    };
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let a = c.node("a");
    let p = c.node("p");
    let m = c.node("m");
    let gnd = Circuit::GROUND;
    let d = DiodeParams::signal_default();
    c.add_vsource("V1", vin, gnd, Waveform::dc(3.0)).unwrap();
    c.add_resistor("RS", vin, a, 50.0).unwrap();
    c.add_diode("D1", a, p, d).unwrap();
    c.add_diode("D2", gnd, p, d).unwrap();
    c.add_diode("D3", m, a, d).unwrap();
    c.add_diode("D4", m, gnd, d).unwrap();
    c.add_resistor("RL", p, m, 1e3).unwrap();
    c.add_capacitor("CF", p, m, 1e-6).unwrap();
    c.compile_plan();

    let mut faults = vec![
        Fault::bridge("a", "p", 10e3),
        Fault::bridge("p", "m", 10e3),
        Fault::bridge("vin", "m", 10e3),
    ];
    for name in ["D1", "D2", "D3", "D4"] {
        faults.push(Fault::junction_pinhole(name, Junction::AnodeCathode, 2e3));
    }
    for fault in &faults {
        let patched = fault.inject(&c).unwrap();
        let rebuilt = fault.inject_rebuilt(&c).unwrap();
        for solver in [SolverKind::Dense, SolverKind::Sparse] {
            let opts = AnalysisOptions { solver, ..AnalysisOptions::default() };
            let sp = DcAnalysis::with_options(&patched, opts).solve().unwrap();
            let sr = DcAnalysis::with_options(&rebuilt, opts).solve().unwrap();
            for (x, y) in sp.state().iter().zip(sr.state()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{solver:?} {}", fault.name());
            }
        }
    }
}

/// Spice-level differential with the solver *forced* (both kinds, on a
/// size where Auto would pick the other): a delta-injected variant and
/// a rebuilt variant must solve bit-identically under explicitly forced
/// Dense and forced Sparse dispatch alike.
#[test]
fn forced_solver_kinds_solve_delta_and_rebuilt_identically() {
    use castg::spice::{AnalysisOptions, DcAnalysis, SolverKind};
    for unknowns in [24usize, 96] {
        let mac = LadderMacro::with_unknowns(unknowns);
        let nominal = mac.nominal_circuit();
        nominal.compile_plan();
        for fault in mac.fault_dictionary().iter() {
            let patched = fault.inject(&nominal).unwrap();
            let rebuilt = fault.inject_rebuilt(&nominal).unwrap();
            for solver in [SolverKind::Dense, SolverKind::Sparse] {
                let opts = AnalysisOptions { solver, ..AnalysisOptions::default() };
                let sp = DcAnalysis::with_options(&patched, opts).solve().unwrap();
                let sr = DcAnalysis::with_options(&rebuilt, opts).solve().unwrap();
                for (a, b) in sp.state().iter().zip(sr.state()) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "n={unknowns} {solver:?} {}",
                        fault.name()
                    );
                }
            }
        }
    }
}
