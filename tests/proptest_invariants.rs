//! Cross-crate property-based tests of the pipeline's core invariants.

use castg::core::{sensitivity, ConfigDescription};
use castg::faults::Fault;
use castg::numeric::{Bounds, ParamSpace};
use castg::spice::Waveform;
use proptest::prelude::*;

proptest! {
    /// S = 1 − |Δ|/box exactly in the single-return case.
    #[test]
    fn sensitivity_matches_closed_form(dev in -1e6f64..1e6, boxw in 1e-9f64..1e6) {
        let s = sensitivity(&[dev], &[boxw]);
        let expected = 1.0 - dev.abs() / boxw;
        prop_assert!((s - expected).abs() <= 1e-9 * expected.abs().max(1.0));
    }

    /// Sensitivity is monotonically non-increasing in |deviation| and
    /// non-decreasing in the box width.
    #[test]
    fn sensitivity_monotonicity(dev in 0.0f64..1e3, extra in 0.0f64..1e3, boxw in 1e-6f64..1e3) {
        let s1 = sensitivity(&[dev], &[boxw]);
        let s2 = sensitivity(&[dev + extra], &[boxw]);
        prop_assert!(s2 <= s1 + 1e-12);
        let s3 = sensitivity(&[dev], &[boxw * 2.0]);
        prop_assert!(s3 >= s1 - 1e-12);
    }

    /// Multi-return sensitivity is the minimum of the single-return ones.
    #[test]
    fn sensitivity_is_min_over_returns(
        devs in prop::collection::vec(-1e3f64..1e3, 1..6),
        boxw in 1e-3f64..1e3,
    ) {
        let boxes = vec![boxw; devs.len()];
        let combined = sensitivity(&devs, &boxes);
        let min_single = devs
            .iter()
            .map(|d| sensitivity(&[*d], &[boxw]))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((combined - min_single).abs() < 1e-9);
    }

    /// Impact scaling of faults is exactly multiplicative and never
    /// mutates the original.
    #[test]
    fn fault_impact_scaling(r0 in 1.0f64..1e9, w in 1.001f64..1e3) {
        let f = Fault::bridge("a", "b", r0);
        prop_assert_eq!(f.effective_resistance(), r0);
        let weak = f.weakened(w);
        let strong = f.intensified(w);
        prop_assert!((weak.effective_resistance() - r0 * w).abs() < 1e-6 * r0 * w);
        prop_assert!((strong.effective_resistance() - r0 / w).abs() < 1e-6 * r0 / w);
        prop_assert_eq!(f.impact_scale(), 1.0);
        // Weakening then intensifying by the same factor round-trips.
        let rt = weak.intensified(w);
        prop_assert!((rt.effective_resistance() - r0).abs() < 1e-6 * r0);
    }

    /// Parameter-space normalization round-trips inside the bounds.
    #[test]
    fn param_space_roundtrip(
        lo in -1e3f64..0.0,
        width in 1e-3f64..1e3,
        u in 0.0f64..1.0,
    ) {
        let space = ParamSpace::new(vec![Bounds::new(lo, lo + width).unwrap()]);
        let x = space.denormalize(&[u]);
        prop_assert!(space.contains(&x));
        let back = space.normalize(&x);
        prop_assert!((back[0] - u).abs() < 1e-9);
    }

    /// A sine waveform never leaves `offset ± amplitude`.
    #[test]
    fn sine_is_bounded(
        offset in -10.0f64..10.0,
        amp in 0.0f64..10.0,
        freq in 1.0f64..1e6,
        t in 0.0f64..1.0,
    ) {
        let w = Waveform::sine(offset, amp, freq);
        let v = w.eval(t);
        prop_assert!(v >= offset - amp - 1e-9 && v <= offset + amp + 1e-9);
    }

    /// A step waveform is monotone between its endpoints for positive
    /// elevation and stays within [base, base+elev].
    #[test]
    fn step_is_bounded(
        base in -5.0f64..5.0,
        elev in 0.0f64..5.0,
        t in 0.0f64..1e-3,
    ) {
        let w = Waveform::step(base, elev, 1e-6, 1e-7);
        let v = w.eval(t);
        prop_assert!(v >= base - 1e-12 && v <= base + elev + 1e-12);
    }

    /// Config descriptions round-trip through the Fig.-1 text format for
    /// arbitrary parameter bounds and seeds.
    #[test]
    fn description_roundtrip(
        lo in -1e3f64..0.0,
        width in 1e-6f64..1e3,
        seed_frac in 0.0f64..1.0,
    ) {
        let hi = lo + width;
        let seed = lo + seed_frac * width;
        let text = format!(
            "macro type: X\ntest configuration: T\ncontrol a: dc(p)\nobserve b: dc()\n\
             return: dV(b)\nparameter p: {lo:e} .. {hi:e}\nseed p: {seed:e}\n"
        );
        let d = ConfigDescription::parse(&text).unwrap();
        let d2 = ConfigDescription::parse(&d.to_string()).unwrap();
        prop_assert_eq!(d, d2);
    }
}
