//! Differential test harness: the sparse solver path against the dense
//! one, end to end through the circuit simulator.
//!
//! Every analysis here is run through multiple solver configurations —
//! dense LU, sparse LU in natural order, sparse LU under AMD, sparse
//! LU under the BTF block-triangular decomposition (the four-way) — on
//! the same circuit, and the solutions must agree to 1e-9 *relative*.
//! The circuits come from the scalable synthetic families
//! (`LadderMacro`, `OtaChainMacro`, `MeshMacro`, `CrossbarMacro`) and
//! from the paper's IV-converter, nominal **and** after fault
//! injection, so the cross-check covers linear and MOS-nonlinear
//! systems, DC, transient and AC, at sizes where `Auto` would pick any
//! path.

use castg::core::synthetic::{CrossbarMacro, LadderMacro, MeshMacro, OtaChainMacro};
use castg::core::AnalogMacro;
use castg::faults::{Fault, Junction};
use castg::macros::{BjtOpAmp, IvConverter};
use castg::spice::{
    AcAnalysis, AcSource, AnalysisOptions, Circuit, DcAnalysis, DiodeParams, NewtonStrategy,
    OrderingKind, Probe, SolverKind, TranAnalysis, Waveform,
};
use proptest::prelude::*;

/// Relative agreement both solver paths must reach.
const REL_TOL: f64 = 1e-9;

fn opts(solver: SolverKind) -> AnalysisOptions {
    AnalysisOptions { solver, ..AnalysisOptions::default() }
}

/// Options for the nonlinear (MOS) differential cases: Newton stops at
/// `reltol`, so with the default 1e-4 the two solver paths can
/// legitimately halt at iterates ~1e-4 apart. Driving the tolerances
/// near machine precision pins both to the same fixed point, making the
/// 1e-9 cross-check meaningful.
fn tight_opts(solver: SolverKind) -> AnalysisOptions {
    AnalysisOptions {
        solver,
        reltol: 1e-12,
        vntol: 1e-13,
        abstol: 1e-16,
        max_iter: 400,
        ..AnalysisOptions::default()
    }
}

/// Solves the DC operating point through both paths and compares every
/// MNA unknown.
fn assert_dc_paths_agree(c: &Circuit, context: &str) {
    assert_dc_paths_agree_with(c, context, opts, REL_TOL);
}

/// As [`assert_dc_paths_agree`], with explicit per-path options and
/// agreement tolerance.
fn assert_dc_paths_agree_with(
    c: &Circuit,
    context: &str,
    make_opts: fn(SolverKind) -> AnalysisOptions,
    tol: f64,
) {
    let dense = DcAnalysis::with_options(c, make_opts(SolverKind::Dense)).solve().unwrap();
    let sparse = DcAnalysis::with_options(c, make_opts(SolverKind::Sparse)).solve().unwrap();
    for (i, (d, s)) in dense.state().iter().zip(sparse.state()).enumerate() {
        let scale = d.abs().max(s.abs()).max(1.0);
        assert!(
            (d - s).abs() <= tol * scale,
            "{context}: unknown {i} diverges: dense {d} vs sparse {s}"
        );
    }
}

#[test]
fn ladder_dc_dense_vs_sparse_across_sizes() {
    for n in [16, 64, 256] {
        let mac = LadderMacro::with_unknowns(n);
        assert_dc_paths_agree(&mac.nominal_circuit(), &format!("ladder n={n}"));
    }
}

#[test]
fn ladder_dc_agrees_after_fault_injection() {
    let mac = LadderMacro::with_unknowns(128);
    let c = mac.nominal_circuit();
    for fault in mac.fault_dictionary().iter() {
        let faulty = fault.inject(&c).unwrap();
        assert_dc_paths_agree(&faulty, &format!("ladder fault {}", fault.name()));
    }
}

#[test]
fn ota_chain_dc_dense_vs_sparse_nominal_and_faulted() {
    let mac = OtaChainMacro::with_unknowns(48);
    let c = mac.nominal_circuit();
    assert_dc_paths_agree_with(&c, "ota chain nominal", tight_opts, REL_TOL);
    for fault in mac.fault_dictionary().iter() {
        let faulty = fault.inject(&c).unwrap();
        assert_dc_paths_agree_with(
            &faulty,
            &format!("ota chain fault {}", fault.name()),
            tight_opts,
            REL_TOL,
        );
    }
}

#[test]
fn iv_converter_dc_agrees_with_sparse_forced() {
    // The paper's real macro: 10 MOSFETs at n = 11 — a size Auto solves
    // densely, so forcing sparse here cross-checks the nonlinear path
    // on the exact circuit the generation pipeline hammers.
    let mac = IvConverter::with_analytic_boxes();
    let mut c = mac.nominal_circuit();
    c.set_stimulus("IIN", Waveform::dc(20e-6)).unwrap();
    assert_dc_paths_agree_with(&c, "iv-converter nominal", tight_opts, REL_TOL);
    // Faulted variants: some bridges (supply into the high-gain bias
    // loop) drive the Jacobian's condition number to ~1e8, where two
    // equally correct factorizations can only agree to κ·ε ≈ 1e-8 in
    // f64 — so the faulted cross-check uses a conditioning-aware bound
    // instead of the well-conditioned 1e-9.
    for fault in mac.fault_dictionary().iter().take(12) {
        let faulty = fault.inject(&c).unwrap();
        assert_dc_paths_agree_with(
            &faulty,
            &format!("iv-converter fault {}", fault.name()),
            tight_opts,
            1e-6,
        );
    }
}

#[test]
fn ladder_transient_dense_vs_sparse() {
    let mac = LadderMacro::with_unknowns(96);
    let mut c = mac.nominal_circuit();
    c.set_stimulus("V1", Waveform::step(1.0, 2.0, 0.2e-6, 0.05e-6)).unwrap();
    let out = c.find_node("out").unwrap();
    let probes = [Probe::NodeVoltage(out)];
    let run = |kind| {
        TranAnalysis::with_options(&c, opts(kind), Default::default())
            .run(2e-6, 0.05e-6, &probes)
            .unwrap()
    };
    let dense = run(SolverKind::Dense);
    let sparse = run(SolverKind::Sparse);
    assert_eq!(dense.len(), sparse.len());
    for (i, (d, s)) in dense.column(0).iter().zip(sparse.column(0)).enumerate() {
        let scale = d.abs().max(s.abs()).max(1.0);
        assert!(
            (d - s).abs() <= REL_TOL * scale,
            "transient t[{i}]: dense {d} vs sparse {s}"
        );
    }
}

#[test]
fn ladder_ac_dense_vs_sparse() {
    // The sparse AC path solves the real 2n×2n embedding; magnitudes
    // and phases must match the dense complex solver.
    let mac = LadderMacro::with_unknowns(80);
    let c = mac.nominal_circuit();
    let out = c.find_node("out").unwrap();
    let freqs = [1e3, 100e3, 10e6];
    let run = |kind| {
        AcAnalysis::with_options(&c, opts(kind))
            .source(AcSource { name: "V1".into(), magnitude: 1.0 })
            .run(&freqs)
            .unwrap()
    };
    let dense = run(SolverKind::Dense);
    let sparse = run(SolverKind::Sparse);
    for (i, f) in freqs.iter().enumerate() {
        let d = dense.voltage(i, out);
        let s = sparse.voltage(i, out);
        let scale = d.abs().max(s.abs()).max(1.0);
        assert!(
            (d - s).abs() <= 1e-8 * scale,
            "ac f={f}: dense {d:?} vs sparse {s:?}"
        );
    }
}

#[test]
fn auto_matches_forced_paths_at_the_boundary() {
    // Auto must agree with both forced paths regardless of which side
    // of the selection threshold a circuit lands on.
    for n in [32, 200] {
        let mac = LadderMacro::with_unknowns(n);
        let c = mac.nominal_circuit();
        let auto = DcAnalysis::with_options(&c, opts(SolverKind::Auto)).solve().unwrap();
        let dense = DcAnalysis::with_options(&c, opts(SolverKind::Dense)).solve().unwrap();
        for (a, d) in auto.state().iter().zip(dense.state()) {
            assert!((a - d).abs() <= REL_TOL * d.abs().max(1.0), "n={n}: {a} vs {d}");
        }
    }
}

/// The four solver configurations the ordering differential
/// cross-checks: dense LU, sparse LU in natural order, sparse LU under
/// the AMD fill-reducing permutation, and sparse LU under the BTF
/// block-triangular decomposition (which falls back to AMD on
/// irreducible circuits, so forcing it is always well-defined).
const FOUR_WAY: [(SolverKind, OrderingKind); 4] = [
    (SolverKind::Dense, OrderingKind::Natural),
    (SolverKind::Sparse, OrderingKind::Natural),
    (SolverKind::Sparse, OrderingKind::Amd),
    (SolverKind::Sparse, OrderingKind::Btf),
];

fn opts3(solver: SolverKind, ordering: OrderingKind) -> AnalysisOptions {
    AnalysisOptions { solver, ordering, ..AnalysisOptions::default() }
}

/// Solves the DC operating point through all four paths and compares
/// every MNA unknown pairwise against the dense reference.
fn assert_dc_four_way_agrees(c: &Circuit, context: &str, tol: f64) {
    let solutions: Vec<_> = FOUR_WAY
        .iter()
        .map(|&(solver, ordering)| {
            DcAnalysis::with_options(c, opts3(solver, ordering)).solve().unwrap_or_else(|e| {
                panic!("{context}: {solver:?}/{ordering:?} failed: {e}")
            })
        })
        .collect();
    for (idx, sol) in solutions.iter().enumerate().skip(1) {
        let (solver, ordering) = FOUR_WAY[idx];
        for (i, (d, s)) in solutions[0].state().iter().zip(sol.state()).enumerate() {
            let scale = d.abs().max(s.abs()).max(1.0);
            assert!(
                (d - s).abs() <= tol * scale,
                "{context}: {solver:?}/{ordering:?} unknown {i} diverges: dense {d} vs {s}"
            );
        }
    }
}

#[test]
fn mesh_dc_four_way_across_sizes_nominal_and_faulted() {
    for n in [64usize, 256] {
        let mac = MeshMacro::with_unknowns(n);
        let c = mac.nominal_circuit();
        assert_dc_four_way_agrees(&c, &format!("mesh n={n}"), REL_TOL);
        for fault in mac.fault_dictionary().iter() {
            let faulty = fault.inject(&c).unwrap();
            assert_dc_four_way_agrees(
                &faulty,
                &format!("mesh n={n} fault {}", fault.name()),
                REL_TOL,
            );
        }
    }
}

#[test]
fn ladder_dc_four_way_nominal_and_faulted() {
    let mac = LadderMacro::with_unknowns(256);
    let c = mac.nominal_circuit();
    assert_dc_four_way_agrees(&c, "ladder n=256", REL_TOL);
    for fault in mac.fault_dictionary().iter() {
        let faulty = fault.inject(&c).unwrap();
        assert_dc_four_way_agrees(&faulty, &format!("ladder fault {}", fault.name()), REL_TOL);
    }
}

/// The OTA chain is the workload BTF exists for: its Norton-biased
/// cascade condenses into per-stage blocks under the static (DC)
/// pattern, so the forced-BTF column here actually exercises the
/// block-wise factor/solve path (on the other macros it falls back to
/// AMD). Nonlinear, so the tight tolerances pin every path to the same
/// Newton fixed point.
#[test]
fn ota_chain_dc_four_way_nominal_and_faulted() {
    let tight = |solver, ordering| AnalysisOptions {
        reltol: 1e-12,
        vntol: 1e-13,
        abstol: 1e-16,
        max_iter: 400,
        ..opts3(solver, ordering)
    };
    let mac = OtaChainMacro::with_unknowns(128);
    let c = mac.nominal_circuit();
    let reference = DcAnalysis::with_options(&c, tight(SolverKind::Dense, OrderingKind::Natural))
        .solve()
        .unwrap();
    for &(solver, ordering) in &FOUR_WAY[1..] {
        let sol = DcAnalysis::with_options(&c, tight(solver, ordering)).solve().unwrap();
        for (i, (d, s)) in reference.state().iter().zip(sol.state()).enumerate() {
            let scale = d.abs().max(s.abs()).max(1.0);
            assert!(
                (d - s).abs() <= REL_TOL * scale,
                "ota chain {solver:?}/{ordering:?} unknown {i}: {d} vs {s}"
            );
        }
    }
    for fault in mac.fault_dictionary().iter() {
        let faulty = fault.inject(&c).unwrap();
        let dense =
            DcAnalysis::with_options(&faulty, tight(SolverKind::Dense, OrderingKind::Natural))
                .solve()
                .unwrap();
        let btf = DcAnalysis::with_options(&faulty, tight(SolverKind::Sparse, OrderingKind::Btf))
            .solve()
            .unwrap();
        for (d, s) in dense.state().iter().zip(btf.state()) {
            let scale = d.abs().max(s.abs()).max(1.0);
            assert!(
                (d - s).abs() <= REL_TOL * scale,
                "ota chain fault {}: {d} vs {s}",
                fault.name()
            );
        }
    }
}

/// Transient on the OTA chain across all four configurations: the
/// transient Newton systems live on the full (companion-augmented)
/// pattern, where the gate-drain capacitances make the cascade
/// irreducible — forced BTF must fall back to AMD and still agree.
#[test]
fn ota_chain_transient_four_way() {
    let mac = OtaChainMacro::with_unknowns(64);
    let mut c = mac.nominal_circuit();
    c.set_stimulus("VIN", Waveform::step(1.5, 3.0, 0.2e-6, 0.05e-6)).unwrap();
    let out = c.find_node("out").unwrap();
    let probes = [Probe::NodeVoltage(out)];
    let tight = |solver, ordering| AnalysisOptions {
        reltol: 1e-12,
        vntol: 1e-13,
        abstol: 1e-16,
        max_iter: 400,
        ..opts3(solver, ordering)
    };
    let run = |solver, ordering| {
        TranAnalysis::with_options(&c, tight(solver, ordering), Default::default())
            .run(1e-6, 0.05e-6, &probes)
            .unwrap()
    };
    let reference = run(SolverKind::Dense, OrderingKind::Natural);
    for &(solver, ordering) in &FOUR_WAY[1..] {
        let got = run(solver, ordering);
        assert_eq!(reference.len(), got.len());
        for (i, (d, s)) in reference.column(0).iter().zip(got.column(0)).enumerate() {
            let scale = d.abs().max(s.abs()).max(1.0);
            assert!(
                (d - s).abs() <= 1e-8 * scale,
                "ota transient {solver:?}/{ordering:?} t[{i}]: {d} vs {s}"
            );
        }
    }
}

/// AC on the OTA chain: the 2n×2n embedding couples G and ωC, so the
/// BTF resolution runs its own transversal/condensation per sweep and
/// falls back to the embedding's AMD ordering when it cannot condense.
#[test]
fn ota_chain_ac_four_way() {
    let mac = OtaChainMacro::with_unknowns(64);
    let c = mac.nominal_circuit();
    let out = c.find_node("out").unwrap();
    let freqs = [1e3, 1e6, 100e6];
    let run = |solver, ordering| {
        AcAnalysis::with_options(&c, opts3(solver, ordering))
            .source(AcSource { name: "VIN".into(), magnitude: 1.0 })
            .run(&freqs)
            .unwrap()
    };
    let reference = run(SolverKind::Dense, OrderingKind::Natural);
    for &(solver, ordering) in &FOUR_WAY[1..] {
        let got = run(solver, ordering);
        for (i, f) in freqs.iter().enumerate() {
            let d = reference.voltage(i, out);
            let s = got.voltage(i, out);
            let scale = d.abs().max(s.abs()).max(1.0);
            assert!(
                (d - s).abs() <= 1e-8 * scale,
                "ota ac {solver:?}/{ordering:?} f={f}: {d:?} vs {s:?}"
            );
        }
    }
}

/// The crossbar is the *nonlinear* mesh-fill workload: MOS readout
/// stages on two overlaid bar lattices. Newton must converge to the
/// same fixed point through all four solver paths, nominal and with
/// bridge + pinhole faults injected.
#[test]
fn crossbar_dc_four_way_nominal_and_faulted() {
    let mac = CrossbarMacro::with_unknowns(96);
    let c = mac.nominal_circuit();
    let tight = |solver, ordering| AnalysisOptions {
        reltol: 1e-12,
        vntol: 1e-13,
        abstol: 1e-16,
        max_iter: 400,
        ..opts3(solver, ordering)
    };
    let reference = DcAnalysis::with_options(&c, tight(SolverKind::Dense, OrderingKind::Natural))
        .solve()
        .unwrap();
    for &(solver, ordering) in &FOUR_WAY[1..] {
        let sol = DcAnalysis::with_options(&c, tight(solver, ordering)).solve().unwrap();
        for (d, s) in reference.state().iter().zip(sol.state()) {
            let scale = d.abs().max(s.abs()).max(1.0);
            assert!(
                (d - s).abs() <= REL_TOL * scale,
                "crossbar {solver:?}/{ordering:?}: {d} vs {s}"
            );
        }
    }
    for fault in mac.fault_dictionary().iter() {
        let faulty = fault.inject(&c).unwrap();
        let dense = DcAnalysis::with_options(&faulty, tight(SolverKind::Dense, OrderingKind::Natural))
            .solve()
            .unwrap();
        let amd = DcAnalysis::with_options(&faulty, tight(SolverKind::Sparse, OrderingKind::Amd))
            .solve()
            .unwrap();
        for (d, s) in dense.state().iter().zip(amd.state()) {
            let scale = d.abs().max(s.abs()).max(1.0);
            assert!(
                (d - s).abs() <= 1e-7 * scale,
                "crossbar fault {}: {d} vs {s}",
                fault.name()
            );
        }
    }
}

#[test]
fn mesh_transient_four_way() {
    let mac = MeshMacro::with_unknowns(144);
    let mut c = mac.nominal_circuit();
    c.set_stimulus("V1", Waveform::step(1.0, 2.0, 0.2e-6, 0.05e-6)).unwrap();
    let out = c.find_node("out").unwrap();
    let probes = [Probe::NodeVoltage(out)];
    let run = |solver, ordering| {
        TranAnalysis::with_options(&c, opts3(solver, ordering), Default::default())
            .run(2e-6, 0.05e-6, &probes)
            .unwrap()
    };
    let reference = run(SolverKind::Dense, OrderingKind::Natural);
    for &(solver, ordering) in &FOUR_WAY[1..] {
        let got = run(solver, ordering);
        assert_eq!(reference.len(), got.len());
        for (i, (d, s)) in reference.column(0).iter().zip(got.column(0)).enumerate() {
            let scale = d.abs().max(s.abs()).max(1.0);
            assert!(
                (d - s).abs() <= REL_TOL * scale,
                "mesh transient {solver:?}/{ordering:?} t[{i}]: {d} vs {s}"
            );
        }
    }
}

/// AC on the mesh: the sparse path's 2n×2n real embedding gets its own
/// AMD permutation or BTF run (computed once per sweep); magnitudes
/// must match the dense complex solver under every ordering.
#[test]
fn mesh_ac_four_way() {
    let mac = MeshMacro::with_unknowns(100);
    let c = mac.nominal_circuit();
    let out = c.find_node("out").unwrap();
    let freqs = [1e3, 1e6, 100e6];
    let run = |solver, ordering| {
        AcAnalysis::with_options(&c, opts3(solver, ordering))
            .source(AcSource { name: "V1".into(), magnitude: 1.0 })
            .run(&freqs)
            .unwrap()
    };
    let reference = run(SolverKind::Dense, OrderingKind::Natural);
    for &(solver, ordering) in &FOUR_WAY[1..] {
        let got = run(solver, ordering);
        for (i, f) in freqs.iter().enumerate() {
            let d = reference.voltage(i, out);
            let s = got.voltage(i, out);
            let scale = d.abs().max(s.abs()).max(1.0);
            assert!(
                (d - s).abs() <= 1e-8 * scale,
                "mesh ac {solver:?}/{ordering:?} f={f}: {d:?} vs {s:?}"
            );
        }
    }
}

/// A full-wave diode bridge rectifier with source resistance, a
/// smoothing capacitor and a load — the pure-diode workload of the
/// junction-device differentials. With a +3 V input, D1 and D4 conduct
/// while D2 and D3 sit in reverse, so the DC operating point exercises
/// both sides of the exponential.
fn rectifier() -> Circuit {
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let a = c.node("a");
    let p = c.node("p");
    let m = c.node("m");
    let gnd = Circuit::GROUND;
    let d = DiodeParams::signal_default();
    c.add_vsource("V1", vin, gnd, Waveform::dc(3.0)).unwrap();
    c.add_resistor("RS", vin, a, 50.0).unwrap();
    c.add_diode("D1", a, p, d).unwrap();
    c.add_diode("D2", gnd, p, d).unwrap();
    c.add_diode("D3", m, a, d).unwrap();
    c.add_diode("D4", m, gnd, d).unwrap();
    c.add_resistor("RL", p, m, 1e3).unwrap();
    c.add_capacitor("CF", p, m, 1e-6).unwrap();
    c
}

/// Bridge and junction-pinhole faults of the rectifier differential.
fn rectifier_faults() -> Vec<Fault> {
    let mut faults = vec![
        Fault::bridge("a", "p", 10e3),
        Fault::bridge("p", "m", 10e3),
        Fault::bridge("vin", "m", 10e3),
    ];
    for d in ["D1", "D2", "D3", "D4"] {
        faults.push(Fault::junction_pinhole(d, Junction::AnodeCathode, 2e3));
    }
    faults
}

/// The diode bridge through all four solver paths, nominal and under
/// every differential fault: the exponential junction Newton must land
/// on the same fixed point everywhere.
#[test]
fn rectifier_dc_four_way_nominal_and_faulted() {
    let tight = |solver, ordering| AnalysisOptions {
        reltol: 1e-12,
        vntol: 1e-13,
        abstol: 1e-16,
        max_iter: 400,
        ..opts3(solver, ordering)
    };
    let c = rectifier();
    let reference = DcAnalysis::with_options(&c, tight(SolverKind::Dense, OrderingKind::Natural))
        .solve()
        .unwrap();
    // Sanity: the bridge really rectifies (one diode drop per leg).
    let p = reference.voltage(c.find_node("p").unwrap());
    let m = reference.voltage(c.find_node("m").unwrap());
    assert!(p - m > 1.0 && p - m < 3.0, "rectified output {}", p - m);
    for &(solver, ordering) in &FOUR_WAY[1..] {
        let sol = DcAnalysis::with_options(&c, tight(solver, ordering)).solve().unwrap();
        for (i, (d, s)) in reference.state().iter().zip(sol.state()).enumerate() {
            let scale = d.abs().max(s.abs()).max(1.0);
            assert!(
                (d - s).abs() <= REL_TOL * scale,
                "rectifier {solver:?}/{ordering:?} unknown {i}: {d} vs {s}"
            );
        }
    }
    for fault in rectifier_faults() {
        let faulty = fault.inject(&c).unwrap();
        let dense =
            DcAnalysis::with_options(&faulty, tight(SolverKind::Dense, OrderingKind::Natural))
                .solve()
                .unwrap();
        for &(solver, ordering) in &FOUR_WAY[1..] {
            let sol = DcAnalysis::with_options(&faulty, tight(solver, ordering)).solve().unwrap();
            for (d, s) in dense.state().iter().zip(sol.state()) {
                let scale = d.abs().max(s.abs()).max(1.0);
                assert!(
                    (d - s).abs() <= REL_TOL * scale,
                    "rectifier fault {} {solver:?}/{ordering:?}: {d} vs {s}",
                    fault.name()
                );
            }
        }
    }
}

/// Transient on the rectifier: junction capacitances enter the
/// companion-augmented pattern, and the step drives the diodes across
/// their conduction threshold mid-run.
#[test]
fn rectifier_transient_dense_vs_sparse() {
    let mut c = rectifier();
    c.set_stimulus("V1", Waveform::step(0.0, 3.0, 0.2e-6, 0.05e-6)).unwrap();
    let p = c.find_node("p").unwrap();
    let probes = [Probe::NodeVoltage(p)];
    let run = |kind| {
        TranAnalysis::with_options(&c, tight_opts(kind), Default::default())
            .run(2e-6, 0.05e-6, &probes)
            .unwrap()
    };
    let dense = run(SolverKind::Dense);
    let sparse = run(SolverKind::Sparse);
    assert_eq!(dense.len(), sparse.len());
    for (i, (d, s)) in dense.column(0).iter().zip(sparse.column(0)).enumerate() {
        let scale = d.abs().max(s.abs()).max(1.0);
        assert!(
            (d - s).abs() <= 1e-8 * scale,
            "rectifier transient t[{i}]: dense {d} vs sparse {s}"
        );
    }
}

/// The bipolar op-amp through all four solver paths, nominal and under
/// its entire 31-fault dictionary (21 bridges + 10 junction pinholes).
/// Faulted variants get a conditioning-aware bound like the
/// IV-converter's: a supply bridge into the high-gain loop leaves two
/// equally correct factorizations ~κ·ε apart.
#[test]
fn bjt_opamp_dc_four_way_nominal_and_faulted() {
    let tight = |solver, ordering| AnalysisOptions {
        reltol: 1e-12,
        vntol: 1e-13,
        abstol: 1e-16,
        max_iter: 400,
        ..opts3(solver, ordering)
    };
    let mac = BjtOpAmp::new();
    let c = mac.nominal_circuit();
    let reference = DcAnalysis::with_options(&c, tight(SolverKind::Dense, OrderingKind::Natural))
        .solve()
        .unwrap();
    for &(solver, ordering) in &FOUR_WAY[1..] {
        let sol = DcAnalysis::with_options(&c, tight(solver, ordering)).solve().unwrap();
        for (i, (d, s)) in reference.state().iter().zip(sol.state()).enumerate() {
            let scale = d.abs().max(s.abs()).max(1.0);
            assert!(
                (d - s).abs() <= REL_TOL * scale,
                "bjt opamp {solver:?}/{ordering:?} unknown {i}: {d} vs {s}"
            );
        }
    }
    for fault in mac.fault_dictionary().iter() {
        let faulty = fault.inject(&c).unwrap();
        let dense =
            DcAnalysis::with_options(&faulty, tight(SolverKind::Dense, OrderingKind::Natural))
                .solve()
                .unwrap();
        for &(solver, ordering) in &FOUR_WAY[1..] {
            let sol = DcAnalysis::with_options(&faulty, tight(solver, ordering)).solve().unwrap();
            for (d, s) in dense.state().iter().zip(sol.state()) {
                let scale = d.abs().max(s.abs()).max(1.0);
                assert!(
                    (d - s).abs() <= 1e-6 * scale,
                    "bjt opamp fault {} {solver:?}/{ordering:?}: {d} vs {s}",
                    fault.name()
                );
            }
        }
    }
}

/// AC on the bipolar op-amp: the small-signal linearization around the
/// junction-limited operating point, with cje/cjc/cj0 junction
/// capacitances in the 2n×2n sparse embedding.
#[test]
fn bjt_opamp_ac_dense_vs_sparse() {
    let c = BjtOpAmp::new().nominal_circuit();
    let out = c.find_node("out").unwrap();
    let freqs = [1e3, 1e6, 100e6];
    let run = |kind| {
        AcAnalysis::with_options(&c, opts(kind))
            .source(AcSource { name: "VIN".into(), magnitude: 1.0 })
            .run(&freqs)
            .unwrap()
    };
    let dense = run(SolverKind::Dense);
    let sparse = run(SolverKind::Sparse);
    for (i, f) in freqs.iter().enumerate() {
        let d = dense.voltage(i, out);
        let s = sparse.voltage(i, out);
        let scale = d.abs().max(s.abs()).max(1.0);
        assert!(
            (d - s).abs() <= 1e-8 * scale,
            "bjt ac f={f}: dense {d:?} vs sparse {s:?}"
        );
    }
}

/// Acceptance pin: pn-junction limiting must keep the cold start (all
/// unknowns at zero) of both junction macros on the cheap rungs of the
/// Newton ladder. Without limiting, the rectifier's first iterate puts
/// ~3 V across an exponential and overflows into the rescue rungs; with
/// it, plain or damped Newton lands every solve.
#[test]
fn junction_cold_starts_stay_on_the_cheap_rungs() {
    for (name, c) in [
        ("rectifier", rectifier()),
        ("bjt_opamp", BjtOpAmp::new().nominal_circuit()),
    ] {
        let sol = DcAnalysis::new(&c).solve().unwrap();
        let report = sol.convergence();
        assert!(
            matches!(report.strategy, NewtonStrategy::Plain | NewtonStrategy::Damped),
            "{name}: cold start escalated to {}",
            report.strategy
        );
        for rung in &report.rungs {
            assert!(
                matches!(rung.strategy, NewtonStrategy::Plain | NewtonStrategy::Damped),
                "{name}: ladder attempted {}",
                rung.strategy
            );
        }
        assert!(
            report.total_iterations() < 200,
            "{name}: cold start took {} iterations",
            report.total_iterations()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random `LadderMacro` instances — random size, stimulus level and
    /// injected bridge fault — agree between the two solver paths at
    /// the DC operating point.
    #[test]
    fn random_ladder_instances_agree(
        sections in 8usize..220,
        lev in 1.0f64..8.0,
        fault_choice in 0usize..12,
    ) {
        let mac = LadderMacro::new(sections);
        let mut c = mac.nominal_circuit();
        c.set_stimulus("V1", Waveform::dc(lev)).unwrap();
        let dict = mac.fault_dictionary();
        let fault: &Fault = &dict.faults()[fault_choice % dict.len()];
        let faulty = fault.inject(&c).unwrap();

        for circuit in [&c, &faulty] {
            let dense =
                DcAnalysis::with_options(circuit, opts(SolverKind::Dense)).solve().unwrap();
            let sparse =
                DcAnalysis::with_options(circuit, opts(SolverKind::Sparse)).solve().unwrap();
            for (d, s) in dense.state().iter().zip(sparse.state()) {
                let scale = d.abs().max(s.abs()).max(1.0);
                prop_assert!(
                    (d - s).abs() <= REL_TOL * scale,
                    "sections={}, lev={}, fault={}: {} vs {}",
                    sections, lev, fault.name(), d, s
                );
            }
        }
    }
}
