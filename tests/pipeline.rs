//! End-to-end integration of the full pipeline on the fast synthetic
//! macro: generation → compaction → coverage → baseline, plus
//! determinism.

use castg::core::synthetic::DividerMacro;
use castg::core::{
    compact, compare_with_baseline, evaluate_test_set, seed_test_set,
    test_instances_from_compaction, AnalogMacro, CompactionOptions, Generator,
    GeneratorOptions, NominalCache, SelectionMethod,
};

fn quick_options() -> GeneratorOptions {
    GeneratorOptions {
        threads: 2,
        powell: castg::numeric::PowellOptions {
            ftol: 1e-3,
            max_iter: 6,
            line: castg::numeric::BrentOptions { tol: 5e-3, max_iter: 10 },
        },
        brent: castg::numeric::BrentOptions { tol: 1e-3, max_iter: 20 },
        ..GeneratorOptions::default()
    }
}

#[test]
fn full_pipeline_on_synthetic_macro() {
    let mac = DividerMacro::new();
    let dict = mac.fault_dictionary();
    let cache = NominalCache::new();

    // §3: one optimal test per fault.
    let generator = Generator::with_options(&mac, &cache, quick_options());
    let report = generator.generate(&dict);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.tests.len(), dict.len());
    assert!(report.total_evaluations() > 0);

    // Table-2-style distribution accounts for every fault exactly once.
    let total: usize = report.distribution().iter().map(|r| r.bridge + r.pinhole).sum();
    assert_eq!(total, dict.len());

    // §4: compaction covers every fault exactly once and never grows.
    let compaction = compact(&mac, &cache, &report, &CompactionOptions::default()).unwrap();
    assert!(compaction.tests.len() <= report.tests.len());
    let covered: usize = compaction.tests.iter().map(|t| t.covered_faults.len()).sum();
    assert_eq!(covered, report.tests.len());

    // The compacted set detects what the per-fault set detected.
    let instances = test_instances_from_compaction(&mac, &compaction).unwrap();
    let coverage = evaluate_test_set(&mac, &cache, &instances, &dict).unwrap();
    assert_eq!(coverage.detected(), dict.len(), "escapes: {:?}", coverage.escapes());

    // §2.2: optimization is at least as good as the fixed-seed baseline.
    let cmp = compare_with_baseline(&mac, &cache, &report, &dict).unwrap();
    assert!(cmp.optimized.detected() >= cmp.baseline.detected());
    assert!(cmp.optimized.mean_best_sensitivity() <= cmp.baseline.mean_best_sensitivity() + 1e-9);
}

#[test]
fn generation_is_deterministic() {
    let mac = DividerMacro::new();
    let dict = mac.fault_dictionary();
    let run = || {
        let cache = NominalCache::new();
        let generator = Generator::with_options(&mac, &cache, quick_options());
        let report = generator.generate(&dict);
        report
            .tests
            .iter()
            .map(|t| (t.fault.name(), t.config_id, t.params.clone(), t.critical_scale))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "two identical runs must select identical tests");
}

#[test]
fn selection_methods_agree_across_dictionary() {
    let mac = DividerMacro::new();
    let dict = mac.fault_dictionary();
    let run = |method: SelectionMethod| {
        let cache = NominalCache::new();
        let opts = GeneratorOptions { selection: method, ..quick_options() };
        let generator = Generator::with_options(&mac, &cache, opts);
        generator
            .generate(&dict)
            .tests
            .iter()
            .map(|t| (t.fault.name(), t.config_id))
            .collect::<Vec<_>>()
    };
    let iterative = run(SelectionMethod::PaperIterative);
    let critical = run(SelectionMethod::MaxCriticalImpact);
    // The two selection definitions coincide on clear-cut faults; demand
    // agreement on a solid majority (ties near equal criticality may
    // differ legitimately).
    let agree = iterative.iter().zip(&critical).filter(|(a, b)| a == b).count();
    assert!(
        agree * 3 >= iterative.len() * 2,
        "selection methods agree on only {agree}/{} faults",
        iterative.len()
    );
}

#[test]
fn seed_baseline_is_well_formed() {
    let mac = DividerMacro::new();
    let seeds = seed_test_set(&mac);
    assert_eq!(seeds.len(), mac.configurations().len());
    for t in &seeds {
        assert!(t.config.space().contains(&t.params));
    }
}
