//! Integration checks of the IV-converter device under test against the
//! paper's §3.4 experimental setup. Kept to DC-dominated work so the
//! debug-mode test run stays fast; the transient-heavy experiments live
//! in the release-mode bench binaries.

use castg::core::{tps_profile, AnalogMacro, Evaluator, NominalCache};
use castg::faults::{Fault, FaultKind};
use castg::macros::IvConverter;
use castg::spice::DcAnalysis;

/// The IV-converter operating point from a zero start is the dominant
/// per-solve cost of its campaigns now that each iteration is LU-bound.
/// Under the convergence strategy ladder (plain rung capped, damped
/// rung with bounded clamp growth) it takes exactly 24 iterations —
/// down from the 25 fixed-damping iterations the ladder replaced. The
/// count is deterministic (bit-stable assembly, power-of-two damping),
/// so this pins it exactly; an intentional convergence improvement
/// should update the number *downward* alongside a golden fixture
/// regeneration. A warm start from the solution must converge in a
/// single verification iteration.
#[test]
fn cold_start_newton_iteration_count_is_pinned() {
    let mac = IvConverter::with_analytic_boxes();
    let c = mac.nominal_circuit();
    let cold = DcAnalysis::new(&c).solve().unwrap();
    assert_eq!(
        cold.newton_iterations(),
        24,
        "cold-start Newton iteration count moved — regression or intentional \
         convergence change?"
    );
    let warm = DcAnalysis::new(&c).solve_from(cold.state()).unwrap();
    assert_eq!(warm.newton_iterations(), 1, "warm start must verify in one iteration");
    for (a, b) in cold.state().iter().zip(warm.state()) {
        // One verification iteration from a tolerance-converged state
        // may polish the iterate within the solver's own tolerances;
        // it must not move it materially.
        assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
    }
}

#[test]
fn fault_universe_is_the_papers() {
    let mac = IvConverter::with_analytic_boxes();
    let dict = mac.fault_dictionary();
    assert_eq!(dict.len(), 55);
    assert_eq!(dict.count(FaultKind::Bridge), 45);
    assert_eq!(dict.count(FaultKind::Pinhole), 10);
    assert_eq!(mac.fault_site_nodes().len(), 10);
    assert_eq!(mac.nominal_circuit().mosfet_names().len(), 10);
}

#[test]
fn five_configurations_with_paper_structure() {
    let mac = IvConverter::with_analytic_boxes();
    let configs = mac.configurations();
    assert_eq!(configs.len(), 5);
    let one_param = configs.iter().filter(|c| c.space().dim() == 1).count();
    let two_param = configs.iter().filter(|c| c.space().dim() == 2).count();
    assert_eq!((one_param, two_param), (2, 3));
}

#[test]
fn transimpedance_operating_point() {
    let mac = IvConverter::with_analytic_boxes();
    let mut circuit = mac.nominal_circuit();
    circuit.set_stimulus("IIN", castg::spice::Waveform::dc(20e-6)).unwrap();
    let sol = DcAnalysis::new(&circuit).solve().unwrap();
    let out = sol.voltage(circuit.find_node("out").unwrap());
    // V(out) = vref + Iin·RF = 2.5 + 20 µA · 39 kΩ = 3.28 V.
    assert!((out - 3.28).abs() < 0.1, "out = {out}");
}

#[test]
fn dc_profile_detects_feedback_bridge_everywhere() {
    let mac = IvConverter::with_analytic_boxes();
    let circuit = mac.nominal_circuit();
    let cache = NominalCache::new();
    let configs = mac.configurations();
    let dc = configs.iter().find(|c| c.id() == 1).unwrap();
    let ev = Evaluator::new(dc.as_ref(), &circuit, &cache);
    // Bridging the feedback resistor halves the transimpedance — a
    // gross fault the DC transfer sees at every drive level but zero.
    let fault = Fault::bridge("out", "inn", 10e3);
    let profile = tps_profile(&ev, &fault, 9).unwrap();
    let detecting = profile.iter().filter(|(_, s)| *s < 0.0).count();
    assert!(detecting >= 7, "only {detecting}/9 profile points detect");
}

#[test]
fn weakening_a_pinhole_reduces_its_detectability() {
    // The impact knob of §2.2: raising the model resistance (a smaller
    // physical defect) must monotonically raise the best sensitivity
    // (toward undetectable).
    let mac = IvConverter::with_analytic_boxes();
    let circuit = mac.nominal_circuit();
    let cache = NominalCache::new();
    let configs = mac.configurations();
    let dc = configs.iter().find(|c| c.id() == 1).unwrap();
    let ev = Evaluator::new(dc.as_ref(), &circuit, &cache);

    let best_s = |fault: &Fault| -> f64 {
        tps_profile(&ev, fault, 9)
            .unwrap()
            .into_iter()
            .map(|(_, s)| s)
            .fold(f64::INFINITY, f64::min)
    };
    let base = Fault::pinhole("M4", 2e3);
    let s_strong = best_s(&base);
    let s_weak = best_s(&base.weakened(50.0));
    let s_weaker = best_s(&base.weakened(2500.0));
    assert!(s_strong < s_weak, "weakening must lose sensitivity: {s_strong} !< {s_weak}");
    assert!(s_weak < s_weaker, "weakening must lose sensitivity: {s_weak} !< {s_weaker}");
}

#[test]
fn all_dictionary_faults_inject_and_solve_dc() {
    let mac = IvConverter::with_analytic_boxes();
    let circuit = mac.nominal_circuit();
    let mut convergent = 0;
    for fault in mac.fault_dictionary().iter() {
        let faulty = fault.inject(&circuit).unwrap();
        if DcAnalysis::new(&faulty).solve().is_ok() {
            convergent += 1;
        }
    }
    assert!(convergent >= 50, "{convergent}/55 faulty circuits converge in DC");
}
