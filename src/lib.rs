//! `castg` — Compact Analog Structural Test Generation.
//!
//! Meta-crate bundling the full workspace reproduction of Kaal &
//! Kerkhoff, *"Compact Structural Test Generation for Analog Macros"*
//! (ED&TC 1997). Each subsystem lives in its own crate and is re-exported
//! here under a short name:
//!
//! * [`core`] (`castg-core`) — the paper's contribution: sensitivity,
//!   tps-graphs, per-fault optimal test generation, compaction,
//!   baselines and reporting.
//! * [`macros`] (`castg-macros`) — the devices under test (the
//!   IV-converter with its five Table-1 test configurations, plus an
//!   OTA buffer) with tolerance-box calibration.
//! * [`netlist`] (`castg-netlist`) — the SPICE-deck frontend: parse
//!   decks (R/C/L/V/I/M/E cards, `.subckt` flattening, `.model` cards,
//!   scale suffixes) into [`spice`] circuits, write circuits back out
//!   (exact round-trip), and wrap a deck + textual configuration
//!   descriptions + a topology-derived fault dictionary as an
//!   [`core::AnalogMacro`] — so the pipeline runs on macros it was
//!   never compiled with. The `castg` CLI binary
//!   (`castg generate <deck.sp> --configs <dir>`) drives the whole
//!   deck-to-report flow from the command line.
//! * [`faults`] (`castg-faults`) — bridge and pinhole fault models with
//!   tunable impact, and exhaustive fault lists.
//! * [`spice`] (`castg-spice`) — the built-in MNA circuit simulator
//!   (DC Newton–Raphson, fixed-step transient, AC sweeps; R/C/L,
//!   independent sources, VCVS, Level-1 MOSFETs). Its
//!   Newton loops run allocation-free: circuits compile once into stamp
//!   plans that are replayed per iteration (see the crate docs).
//! * [`dsp`] (`castg-dsp`) — waveform post-processing (Goertzel, THD,
//!   deviation metrics).
//! * [`numeric`] (`castg-numeric`) — dense LU (including the reusable
//!   in-place `LuWorkspace` behind the simulator hot path), the sparse
//!   CSC LU with symbolic-factor reuse behind large-netlist analyses,
//!   Brent and bounded Powell minimization, parameter spaces, sweep
//!   grids. The simulator picks dense or sparse per circuit
//!   (`spice::SolverKind`), and a differential test harness pins the
//!   two paths to 1e-9 relative agreement.
//! * [`serve`] (`castg-serve`) — the multi-tenant campaign daemon:
//!   `castg serve` keeps a process alive answering `POST /v1/campaign`
//!   and `POST /v1/batch` over HTTP/1.1 + JSON (hand-rolled, zero
//!   external deps), with a **content-addressed result cache** (the
//!   request digest hashes the round-trip-canonicalized deck, sorted
//!   config texts, resolved params and post-clamp budgets — see
//!   `serve::digest`) and a **process-wide plan cache** that lifts the
//!   per-`Circuit` stamp-plan/symbolic sharing to the whole daemon.
//!   Responses are byte-identical to `castg generate --json` output and
//!   between cache hits and misses; every request runs under server
//!   budget ceilings and `catch_unwind` isolation. `castg bench-serve`
//!   load-tests the daemon and writes `BENCH_serve.json`; `castg check`
//!   prints a deck's request digest so clients can predict cache keys.
//!
//! The compute-bound pipeline halves — per-fault generation
//! ([`core::Generator::generate`]) and test-set coverage
//! ([`core::evaluate_test_set`]) — both fan their independent faults
//! out over crossbeam worker queues and share one nominal-measurement
//! cache across threads.
//!
//! # Quickstart
//!
//! ```
//! use castg::core::{AnalogMacro, Generator, NominalCache};
//! use castg::core::synthetic::DividerMacro;
//!
//! let mac = DividerMacro::new();
//! let cache = NominalCache::new();
//! let generator = Generator::new(&mac, &cache);
//! let fault = castg::faults::Fault::bridge("out", "0", 10e3);
//! let best = generator.generate_for_fault(&fault)?;
//! assert!(best.detected_at_dictionary);
//! # Ok::<(), castg::core::CoreError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the
//! `castg-bench` crate for the binaries regenerating every table and
//! figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use castg_core as core;
pub use castg_dsp as dsp;
pub use castg_faults as faults;
pub use castg_macros as macros;
pub use castg_netlist as netlist;
pub use castg_numeric as numeric;
pub use castg_serve as serve;
pub use castg_spice as spice;
