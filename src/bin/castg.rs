//! `castg` — run the paper's generate → compact → evaluate pipeline on
//! any SPICE deck, with zero Rust code.
//!
//! ```text
//! castg generate <deck.sp> --configs <dir> [options]
//!     --configs DIR        configuration description files (*.cfg/*.txt)
//!     --faults MODE        bridge derivation: exhaustive (default) | adjacent
//!     --ordering KIND      solver dispatch: auto (default) | natural | amd | btf
//!                          (a forced ordering also forces the sparse solver)
//!     --bridge-ohms R      dictionary bridge resistance   [10e3]
//!     --pinhole-ohms R     dictionary pinhole resistance  [2e3]
//!     --skip-faults N      skip the first N derived faults
//!     --max-faults N       truncate the derived dictionary (after skip)
//!     --param NAME=VALUE   set/override a deck `.param` (repeatable)
//!     --threads N          worker threads                 [all cores]
//!     --max-newton-iters N Newton-iteration allowance per (fault, test)
//!                          coverage work item (deterministic budget)
//!     --budget-ms MS       wall-clock budget per coverage work item
//!                          (machine-dependent; see --max-newton-iters)
//!     --strict             exit 1 when any fault's outcome is
//!                          unconverged, timed out or panicked (default:
//!                          exit 0 with a warning tally on stderr)
//!     --out PATH           write the full text report here (stdout otherwise)
//!     --json PATH          write a machine-readable summary here
//!
//! castg check <deck.sp> [--ordering KIND] [--param NAME=VALUE]...
//!     Parse the deck, print its resolved `.param` values and its
//!     canonical request digest (the `castg serve` cache key for the
//!     default campaign options), solve its DC operating point, print
//!     node voltages and source currents, and report the sparse-factor
//!     fill and block structure under each ordering — so users can see
//!     which solver path their macro will take before running a
//!     campaign.
//!
//! castg serve [--addr HOST:PORT] [--workers N] [--threads N]
//!     [--result-cache N] [--plan-cache N] [--ceiling-faults N]
//!     [--ceiling-newton-iters N] [--ceiling-budget-ms MS]
//!     Run the multi-tenant campaign daemon in the foreground until
//!     SIGINT/SIGTERM or POST /v1/shutdown (see castg_serve docs for
//!     the HTTP protocol and cache-key definition).
//!
//! castg bench-serve [--clients M] [--rounds R] [--workers N]
//!     [--threads N] [--max-faults N] [--out PATH]
//!     Spawn the daemon in-process and load-test it with M concurrent
//!     clients replaying a mixed deck corpus; write throughput, latency
//!     percentiles and cache hit rates to BENCH_serve.json.
//! ```
//!
//! The text report is the same canonical rendering the golden-fixture
//! harness and the bench binaries use
//! (`castg_core::report::render_pipeline_report`); the JSON summary
//! mirrors `BENCH_campaign.json`'s per-workload fields.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use castg::core::report::{render_json_report, render_pipeline_report, PipelineTimings};
use castg::core::{
    compact, evaluate_campaign, test_instances_from_compaction, AnalogMacro, CampaignOptions,
    CompactionOptions, Generator, GeneratorOptions, NominalCache,
};
use castg::faults::{BridgeDerivation, FaultDictionary};
use castg::netlist::{
    canonical_deck_bytes, parse_deck_with_params, parse_number, NetlistMacro, NetlistMacroOptions,
};
use castg::serve::{
    hex, request_digest, run_bench_serve, BenchServeOptions, DigestOptions, ServerConfig,
};
use castg::spice::{sparse_fill_stats, DcAnalysis, OrderingKind, SolverKind};

const USAGE: &str = "\
castg — compact structural test generation for analog macros

USAGE:
    castg generate <deck.sp> --configs <dir> [--faults exhaustive|adjacent]
          [--ordering auto|natural|amd|btf] [--bridge-ohms R] [--pinhole-ohms R]
          [--skip-faults N] [--max-faults N] [--param NAME=VALUE]...
          [--threads N] [--max-newton-iters N] [--budget-ms MS] [--strict]
          [--out PATH] [--json PATH]
    castg check <deck.sp> [--ordering auto|natural|amd|btf] [--param NAME=VALUE]...
    castg serve [--addr HOST:PORT] [--workers N] [--threads N]
          [--result-cache N] [--plan-cache N] [--ceiling-faults N]
          [--ceiling-newton-iters N] [--ceiling-budget-ms MS]
    castg bench-serve [--clients M] [--rounds R] [--workers N] [--threads N]
          [--max-faults N] [--out PATH]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("bench-serve") => bench_serve(&args[1..]),
        Some("-h") | Some("--help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("castg: {e}");
            ExitCode::FAILURE
        }
    }
}

struct GenerateArgs {
    deck: PathBuf,
    configs: PathBuf,
    options: NetlistMacroOptions,
    dispatch: Option<(SolverKind, OrderingKind)>,
    params: Vec<(String, f64)>,
    skip_faults: usize,
    max_faults: Option<usize>,
    threads: usize,
    max_newton_iters: Option<usize>,
    budget_ms: Option<u64>,
    strict: bool,
    out: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn parse_generate_args(args: &[String]) -> Result<GenerateArgs, String> {
    let mut deck: Option<PathBuf> = None;
    let mut configs: Option<PathBuf> = None;
    let mut options = NetlistMacroOptions::default();
    let mut dispatch = None;
    let mut params = Vec::new();
    let mut skip_faults = 0usize;
    let mut max_faults = None;
    let mut threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut max_newton_iters = None;
    let mut budget_ms = None;
    let mut strict = false;
    let mut out = None;
    let mut json = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--configs" => configs = Some(PathBuf::from(value("--configs")?)),
            "--faults" => {
                options.derivation = match value("--faults")?.as_str() {
                    "exhaustive" => BridgeDerivation::Exhaustive,
                    "adjacent" => BridgeDerivation::Adjacent,
                    other => return Err(format!("--faults must be exhaustive or adjacent, got `{other}`")),
                }
            }
            "--ordering" => dispatch = Some(parse_ordering(value("--ordering")?)?),
            "--param" => params.push(parse_param_flag(value("--param")?)?),
            "--bridge-ohms" => {
                options.bridge_ohms =
                    value("--bridge-ohms")?.parse().map_err(|e| format!("--bridge-ohms: {e}"))?
            }
            "--pinhole-ohms" => {
                options.pinhole_ohms =
                    value("--pinhole-ohms")?.parse().map_err(|e| format!("--pinhole-ohms: {e}"))?
            }
            "--skip-faults" => {
                skip_faults =
                    value("--skip-faults")?.parse().map_err(|e| format!("--skip-faults: {e}"))?
            }
            "--max-faults" => {
                max_faults =
                    Some(value("--max-faults")?.parse().map_err(|e| format!("--max-faults: {e}"))?)
            }
            "--threads" => {
                threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--max-newton-iters" => {
                max_newton_iters = Some(
                    value("--max-newton-iters")?
                        .parse()
                        .map_err(|e| format!("--max-newton-iters: {e}"))?,
                )
            }
            "--budget-ms" => {
                budget_ms =
                    Some(value("--budget-ms")?.parse().map_err(|e| format!("--budget-ms: {e}"))?)
            }
            "--strict" => strict = true,
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--json" => json = Some(PathBuf::from(value("--json")?)),
            other if !other.starts_with('-') && deck.is_none() => {
                deck = Some(PathBuf::from(other))
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(GenerateArgs {
        deck: deck.ok_or_else(|| format!("missing deck path\n\n{USAGE}"))?,
        configs: configs.ok_or_else(|| format!("missing --configs <dir>\n\n{USAGE}"))?,
        options,
        dispatch,
        params,
        skip_faults,
        max_faults,
        threads: threads.max(1),
        max_newton_iters,
        budget_ms,
        strict,
        out,
        json,
    })
}

/// Parses a `--param NAME=VALUE` flag into an override pair. The value
/// is a SPICE literal (scale suffixes welcome: `--param rload=2.2k`).
fn parse_param_flag(s: &str) -> Result<(String, f64), String> {
    let Some((name, value)) = s.split_once('=') else {
        return Err(format!("--param expects NAME=VALUE, got `{s}`"));
    };
    let name = name.trim();
    if name.is_empty() {
        return Err(format!("--param expects NAME=VALUE, got `{s}`"));
    }
    let v = parse_number(value)
        .ok_or_else(|| format!("--param {name}: `{value}` is not a number"))?;
    Ok((name.to_string(), v))
}

/// Parses the `--ordering` flag. Forcing a concrete ordering also
/// forces the sparse solver (otherwise the density heuristic could
/// route small macros to dense LU and the flag would silently do
/// nothing); `auto` keeps both heuristics.
fn parse_ordering(s: &str) -> Result<(SolverKind, OrderingKind), String> {
    match s {
        "auto" => Ok((SolverKind::Auto, OrderingKind::Auto)),
        "natural" => Ok((SolverKind::Sparse, OrderingKind::Natural)),
        "amd" => Ok((SolverKind::Sparse, OrderingKind::Amd)),
        "btf" => Ok((SolverKind::Sparse, OrderingKind::Btf)),
        other => Err(format!("--ordering must be auto, natural, amd or btf, got `{other}`")),
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let a = parse_generate_args(args)?;
    let mut mac = NetlistMacro::from_files_with_params(&a.deck, &a.configs, a.options, &a.params)
        .map_err(|e| e.to_string())?;
    if let Some((solver, ordering)) = a.dispatch {
        mac = mac.with_solver(solver, ordering).map_err(|e| e.to_string())?;
    }
    if mac.configurations().is_empty() {
        return Err(format!("no configurations loaded from {}", a.configs.display()));
    }
    let mut dict = mac.fault_dictionary();
    if a.skip_faults > 0 || a.max_faults.is_some() {
        let take = a.max_faults.unwrap_or(usize::MAX);
        dict = FaultDictionary::new(
            dict.iter().skip(a.skip_faults).take(take).cloned().collect(),
        );
    }
    if dict.is_empty() {
        return Err("fault selection (--skip-faults/--max-faults) left no faults".to_string());
    }
    eprintln!(
        "castg: macro `{}` ({}): {} nodes, {} devices, {} faults, {} configurations",
        mac.name(),
        mac.macro_type(),
        mac.circuit().node_count(),
        mac.circuit().devices().len(),
        dict.len(),
        mac.configurations().len(),
    );

    let cache = NominalCache::new();
    let gen_options = GeneratorOptions { threads: a.threads, ..GeneratorOptions::default() };

    let t0 = Instant::now();
    let generation = Generator::with_options(&mac, &cache, gen_options).generate(&dict);
    let generate_s = t0.elapsed().as_secs_f64();
    if !generation.failures.is_empty() {
        for (fault, e) in &generation.failures {
            eprintln!("castg: generation failed for {fault}: {e}");
        }
        return Err(format!("{} of {} faults failed generation", generation.failures.len(), dict.len()));
    }

    let t0 = Instant::now();
    let compaction = compact(&mac, &cache, &generation, &CompactionOptions::default())
        .map_err(|e| e.to_string())?;
    let compact_s = t0.elapsed().as_secs_f64();
    let tests = test_instances_from_compaction(&mac, &compaction).map_err(|e| e.to_string())?;

    let campaign = CampaignOptions {
        threads: a.threads,
        max_newton_iters: a.max_newton_iters,
        budget_ms: a.budget_ms,
        ..CampaignOptions::default()
    };
    let t0 = Instant::now();
    let coverage = evaluate_campaign(&mac, &cache, &tests, &dict, &campaign)
        .map_err(|e| e.to_string())?;
    let evaluate_s = t0.elapsed().as_secs_f64();
    let tally = coverage.tally();

    let report = render_pipeline_report(mac.name(), &generation, &compaction, &coverage);
    match &a.out {
        Some(path) => std::fs::write(path, &report)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{report}"),
    }
    eprintln!(
        "castg: {} tests compacted from {}, coverage {}/{}, generate {:.2}s, compact {:.3}s, \
         evaluate {:.4}s ({:.1} faults/s)",
        compaction.tests.len(),
        compaction.original_count,
        coverage.detected(),
        coverage.total(),
        generate_s,
        compact_s,
        evaluate_s,
        dict.len() as f64 / evaluate_s,
    );
    eprintln!(
        "castg: outcomes: detected {} undetected {} unconverged {} singular {} timed_out {} \
         panicked {} injection_failed {}; ladder: {} solves, {} iterations",
        tally.detected,
        tally.undetected,
        tally.unconverged,
        tally.singular,
        tally.timed_out,
        tally.panicked,
        tally.injection_failed,
        coverage.ladder.solves(),
        coverage.ladder.iterations,
    );
    if tally.suspect() > 0 && !a.strict {
        eprintln!(
            "castg: warning: {} fault(s) have robustness-suspect outcomes \
             (unconverged/timed out/panicked); rerun with --strict to fail on these",
            tally.suspect(),
        );
    }

    if let Some(path) = &a.json {
        // The exact rendering `castg serve` returns for POST
        // /v1/campaign — one JSON shape, pinned by the golden fixture.
        let timings = PipelineTimings { generate_s, compact_s, evaluate_s };
        let s = render_json_report(
            mac.name(),
            mac.macro_type(),
            dict.len(),
            a.threads,
            &timings,
            tests.len(),
            compaction.original_count,
            &coverage,
        );
        std::fs::write(path, s).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if a.strict && tally.suspect() > 0 {
        return Err(format!(
            "--strict: {} fault(s) have robustness-suspect outcomes \
             (unconverged {}, timed out {}, panicked {})",
            tally.suspect(),
            tally.unconverged,
            tally.timed_out,
            tally.panicked,
        ));
    }
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let mut deck_path: Option<&String> = None;
    let mut requested = (SolverKind::Auto, OrderingKind::Auto);
    let mut params = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ordering" => {
                let v = it.next().ok_or("--ordering needs a value")?;
                requested = parse_ordering(v)?;
            }
            "--param" => {
                let v = it.next().ok_or("--param needs a value")?;
                params.push(parse_param_flag(v)?);
            }
            other if !other.starts_with('-') && deck_path.is_none() => deck_path = Some(a),
            other => {
                return Err(format!("unknown argument `{other}`\n\n{USAGE}"));
            }
        }
    }
    let Some(deck_path) = deck_path else {
        return Err(format!(
            "usage: castg check <deck.sp> [--ordering KIND] [--param NAME=VALUE]\n\n{USAGE}"
        ));
    };
    let text = std::fs::read_to_string(deck_path).map_err(|e| format!("{deck_path}: {e}"))?;
    let deck = parse_deck_with_params(&text, &params).map_err(|e| format!("{deck_path}: {e}"))?;
    let c = deck.circuit();
    println!(
        "deck `{}`: {} nodes, {} devices, {} MNA unknowns{}",
        deck_path,
        c.node_count(),
        c.devices().len(),
        c.unknown_count(),
        deck.title.as_deref().map(|t| format!(", title `{t}`")).unwrap_or_default(),
    );
    if !deck.params.is_empty() {
        println!("resolved parameters:");
        for (name, value) in &deck.params {
            println!("  .param {name} = {value:e}");
        }
    }

    // The `castg serve` cache key this deck resolves to under the
    // daemon's default campaign options (name = file stem, no configs):
    // formatting-only edits leave it unchanged, semantic edits move it.
    let canonical =
        canonical_deck_bytes(&deck).unwrap_or_else(|_| text.clone().into_bytes());
    let digest_name = std::path::Path::new(deck_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("netlist");
    let digest =
        request_digest(digest_name, &canonical, &[], &deck.params, &DigestOptions::default());
    println!("request digest (name `{digest_name}`, default options): {}", hex(&digest));

    let sol = DcAnalysis::new(c).solve().map_err(|e| format!("DC operating point: {e}"))?;
    println!("DC operating point ({} Newton iterations):", sol.newton_iterations());
    for node in c.non_ground_nodes() {
        println!("  v({}) = {:.6e}", c.node_name(node), sol.voltage(node));
    }
    for dev in c.devices() {
        if let Some(i) = sol.source_current(dev.name()) {
            println!("  i({}) = {:.6e}", dev.name(), i);
        }
    }

    // Fill/block summary: the factor cost of every ordering on this
    // deck's static (DC) pattern, plus which path the requested
    // dispatch actually resolves to.
    println!("sparse factor fill (static pattern):");
    for ordering in [OrderingKind::Natural, OrderingKind::Amd, OrderingKind::Btf] {
        match sparse_fill_stats(c, ordering) {
            Some(f) => {
                let blocks = if f.blocks > 1 {
                    format!(", {} blocks (largest {})", f.blocks, f.largest_block)
                } else {
                    String::new()
                };
                println!(
                    "  {:8} pattern nnz {:6}, factor nnz {:6}{}{}",
                    format!("{ordering:?}").to_lowercase(),
                    f.pattern_nnz,
                    f.lu_nnz,
                    blocks,
                    if f.resolved != ordering {
                        format!(" (falls back to {:?})", f.resolved)
                    } else {
                        String::new()
                    },
                );
            }
            None => println!("  {ordering:?}: canonical matrix is singular"),
        }
    }
    let (solver, ordering) = requested;
    if let Some(f) = sparse_fill_stats(c, ordering) {
        println!(
            "requested dispatch {:?}/{:?} resolves to ordering {:?} \
             ({} unknowns, factor nnz {})",
            solver, ordering, f.resolved, f.unknowns, f.lu_nnz
        );
    }
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let mut config =
        ServerConfig { addr: "127.0.0.1:7117".to_string(), ..ServerConfig::default() };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--addr" => config.addr = value("--addr")?.clone(),
            "--workers" => {
                config.workers = value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--threads" => {
                config.threads_per_campaign =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--result-cache" => {
                config.result_capacity =
                    value("--result-cache")?.parse().map_err(|e| format!("--result-cache: {e}"))?
            }
            "--plan-cache" => {
                config.plan_capacity =
                    value("--plan-cache")?.parse().map_err(|e| format!("--plan-cache: {e}"))?
            }
            "--ceiling-faults" => {
                config.ceilings.max_faults = value("--ceiling-faults")?
                    .parse()
                    .map_err(|e| format!("--ceiling-faults: {e}"))?
            }
            "--ceiling-newton-iters" => {
                config.ceilings.max_newton_iters = value("--ceiling-newton-iters")?
                    .parse()
                    .map_err(|e| format!("--ceiling-newton-iters: {e}"))?
            }
            "--ceiling-budget-ms" => {
                config.ceilings.budget_ms = value("--ceiling-budget-ms")?
                    .parse()
                    .map_err(|e| format!("--ceiling-budget-ms: {e}"))?
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    castg::serve::serve_forever(config).map_err(|e| format!("serve: {e}"))
}

fn bench_serve(args: &[String]) -> Result<(), String> {
    let mut options = BenchServeOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--clients" => {
                options.clients = value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--rounds" => {
                options.rounds = value("--rounds")?.parse().map_err(|e| format!("--rounds: {e}"))?
            }
            "--workers" => {
                options.workers = value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--threads" => {
                options.threads_per_campaign =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--max-faults" => {
                options.max_faults_heavy =
                    value("--max-faults")?.parse().map_err(|e| format!("--max-faults: {e}"))?
            }
            "--out" => options.out = Some(PathBuf::from(value("--out")?)),
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    let report = run_bench_serve(&options)?;
    let (rh, rm) = report.result_cache;
    let (ph, pm) = report.plan_cache;
    eprintln!(
        "castg: bench-serve: {} clients x {} rounds x {} jobs: {} requests ({} ok), \
         {:.1} campaigns/s, p50 {:.1} ms, p95 {:.1} ms",
        report.clients,
        report.rounds,
        report.corpus,
        report.requests,
        report.ok,
        report.campaigns_per_s,
        report.p50_ms,
        report.p95_ms,
    );
    eprintln!(
        "castg: bench-serve: result cache {rh} hits / {rm} misses, plan cache {ph} hits / \
         {pm} misses, panicked outcomes {}, clean shutdown {}",
        report.panicked, report.clean_shutdown,
    );
    Ok(())
}
