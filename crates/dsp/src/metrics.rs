//! Scalar waveform metrics used as test-configuration return values.
//!
//! The paper's Table 1 defines return values through two helpers: `Δy`
//! (difference between faulty and nominal) and `Max(y_1..y_n)` (maximum
//! over samples). These functions compute the per-waveform quantities
//! those are built from.

use crate::UniformSamples;

/// Root-mean-square of the samples; `0.0` for an empty record.
pub fn rms(s: &UniformSamples) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    (s.values().iter().map(|v| v * v).sum::<f64>() / s.len() as f64).sqrt()
}

/// Largest absolute sample value; `0.0` for an empty record.
pub fn peak(s: &UniformSamples) -> f64 {
    s.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Arithmetic mean; `0.0` for an empty record.
pub fn mean(s: &UniformSamples) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    s.values().iter().sum::<f64>() / s.len() as f64
}

/// `Max_i |a_i − b_i|` over the overlapping prefix of two records — the
/// return value of test configuration #4 (maximum deviation between the
/// faulty and nominal sampled step responses).
pub fn max_abs_deviation(a: &UniformSamples, b: &UniformSamples) -> f64 {
    a.values()
        .iter()
        .zip(b.values())
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// `Σ_i (a_i − b_i)·dt` over the overlapping prefix — the accumulated
/// (signed) deviation of test configuration #5. The paper's Fig. 1
/// describes the sampled output being "accumulated during the test
/// time"; multiplying by `dt` makes the value a time-integral,
/// independent of the sample rate chosen.
pub fn accumulated_deviation(a: &UniformSamples, b: &UniformSamples) -> f64 {
    let dt = a.dt();
    a.values().iter().zip(b.values()).map(|(x, y)| (x - y) * dt).sum()
}

/// Time (relative to the record start) after which the waveform stays
/// within `±tolerance` of its final value. Returns `None` if the record
/// is empty or only the very last sample is within tolerance — a single
/// in-band sample at the end is not credible evidence of settling.
pub fn settling_time(s: &UniformSamples, tolerance: f64) -> Option<f64> {
    let vals = s.values();
    let last = *vals.last()?;
    let mut settle_idx = 0usize;
    for (i, v) in vals.iter().enumerate() {
        if (v - last).abs() > tolerance {
            settle_idx = i + 1;
        }
    }
    if settle_idx + 1 >= vals.len() {
        None
    } else {
        Some(settle_idx as f64 * s.dt())
    }
}

/// Overshoot beyond the final value, as a fraction of the total step
/// swing from the initial to the final value. `None` for records shorter
/// than two samples or zero swing.
pub fn overshoot(s: &UniformSamples) -> Option<f64> {
    let vals = s.values();
    if vals.len() < 2 {
        return None;
    }
    let first = vals[0];
    let last = *vals.last().expect("len >= 2");
    let swing = last - first;
    if swing.abs() < 1e-300 {
        return None;
    }
    let extreme = if swing > 0.0 {
        vals.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v))
    } else {
        vals.iter().fold(f64::INFINITY, |m, v| m.min(*v))
    };
    Some(((extreme - last) / swing).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(vals: &[f64]) -> UniformSamples {
        UniformSamples::new(0.0, 1e-6, vals.to_vec())
    }

    #[test]
    fn rms_of_constant_and_empty() {
        assert_eq!(rms(&samples(&[2.0, 2.0, 2.0])), 2.0);
        assert_eq!(rms(&samples(&[])), 0.0);
    }

    #[test]
    fn rms_of_alternating() {
        assert!((rms(&samples(&[1.0, -1.0, 1.0, -1.0])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peak_and_mean() {
        let s = samples(&[1.0, -3.0, 2.0]);
        assert_eq!(peak(&s), 3.0);
        assert_eq!(mean(&s), 0.0);
        assert_eq!(mean(&samples(&[])), 0.0);
    }

    #[test]
    fn max_abs_deviation_finds_worst_sample() {
        let a = samples(&[1.0, 2.0, 3.0]);
        let b = samples(&[1.0, 2.5, 2.0]);
        assert_eq!(max_abs_deviation(&a, &b), 1.0);
        assert_eq!(max_abs_deviation(&a, &a), 0.0);
    }

    #[test]
    fn accumulated_deviation_is_signed_integral() {
        let a = samples(&[1.0, 1.0, 1.0, 1.0]);
        let b = samples(&[0.0, 0.0, 2.0, 2.0]);
        // Deviations: +1, +1, −1, −1 → zero net integral.
        assert!(accumulated_deviation(&a, &b).abs() < 1e-18);
        let c = samples(&[0.0, 0.0, 0.0, 0.0]);
        assert!((accumulated_deviation(&a, &c) - 4.0 * 1e-6).abs() < 1e-18);
    }

    #[test]
    fn settling_time_of_step() {
        // Settles to 1.0 after the third sample.
        let s = samples(&[0.0, 0.5, 0.9, 1.0, 1.0, 1.0]);
        let t = settling_time(&s, 0.05).unwrap();
        assert!((t - 3e-6).abs() < 1e-12);
    }

    #[test]
    fn settling_time_none_if_never_settles() {
        let s = samples(&[0.0, 1.0, 0.0, 1.0]);
        assert_eq!(settling_time(&s, 0.1), None);
        assert_eq!(settling_time(&samples(&[]), 0.1), None);
    }

    #[test]
    fn overshoot_of_ringing_step() {
        let s = samples(&[0.0, 1.4, 0.8, 1.1, 1.0, 1.0]);
        let o = overshoot(&s).unwrap();
        assert!((o - 0.4).abs() < 1e-12, "overshoot {o}");
    }

    #[test]
    fn overshoot_none_for_flat_or_short() {
        assert_eq!(overshoot(&samples(&[1.0, 1.0])), None);
        assert_eq!(overshoot(&samples(&[1.0])), None);
    }

    #[test]
    fn overshoot_handles_falling_step() {
        let s = samples(&[1.0, -0.2, 0.1, 0.0, 0.0]);
        let o = overshoot(&s).unwrap();
        assert!((o - 0.2).abs() < 1e-12, "overshoot {o}");
    }
}
