//! Waveform post-processing for `castg`.
//!
//! The paper's test configurations turn simulated waveforms into scalar
//! *return values*: a total-harmonic-distortion measurement for the sine
//! configuration, and max/accumulated deviations for the sampled step
//! responses. This crate implements that measurement layer:
//!
//! * [`UniformSamples`] — a uniformly sampled waveform, with linear-
//!   interpolation resampling from arbitrary `(t, v)` traces,
//! * [`goertzel`] — single-bin DFT evaluation at an arbitrary frequency,
//! * [`thd`] / [`harmonic_magnitudes`] — harmonic analysis,
//! * [`metrics`] — RMS, peak, max-deviation, accumulated deviation and
//!   settling-time helpers,
//! * [`window`] — Hann window for non-coherent sampling situations.
//!
//! # Example
//!
//! ```
//! use castg_dsp::{thd, UniformSamples};
//!
//! // A 1 kHz sine with a 5 % third harmonic.
//! let fs = 64_000.0;
//! let samples: Vec<f64> = (0..512)
//!     .map(|n| {
//!         let t = n as f64 / fs;
//!         (2.0 * std::f64::consts::PI * 1_000.0 * t).sin()
//!             + 0.05 * (2.0 * std::f64::consts::PI * 3_000.0 * t).sin()
//!     })
//!     .collect();
//! let wave = UniformSamples::new(0.0, 1.0 / fs, samples);
//! let d = thd(&wave, 1_000.0, 5).unwrap();
//! assert!((d - 5.0).abs() < 0.1); // ≈ 5 % THD
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod goertzel;
pub mod metrics;
mod sample;
mod thd;
pub mod window;

pub use goertzel::{goertzel, GoertzelResult};
pub use sample::UniformSamples;
pub use thd::{harmonic_magnitudes, thd};
