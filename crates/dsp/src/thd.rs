//! Total harmonic distortion — the return value of the paper's test
//! configuration #3 (the tps-graphs of Figs. 2–4 plot sensitivity of a
//! THD measurement).

use crate::{goertzel, UniformSamples};

/// Amplitudes of the fundamental and its first `n_harmonics − 1`
/// overtones: index 0 is the fundamental at `f0`, index 1 the component
/// at `2·f0`, and so on.
///
/// Harmonics at or above Nyquist are reported as `0.0` (they cannot be
/// measured at the given sample rate).
///
/// Returns `None` when the record is empty, `f0` is non-positive, or the
/// fundamental itself is not measurable.
pub fn harmonic_magnitudes(
    samples: &UniformSamples,
    f0: f64,
    n_harmonics: usize,
) -> Option<Vec<f64>> {
    if n_harmonics == 0 {
        return Some(Vec::new());
    }
    let mut out = Vec::with_capacity(n_harmonics);
    for k in 1..=n_harmonics {
        match goertzel(samples, f0 * k as f64) {
            Some(g) => out.push(g.amplitude),
            None if k == 1 => return None,
            None => out.push(0.0),
        }
    }
    Some(out)
}

/// Total harmonic distortion in percent:
/// `100 · sqrt(Σ_{k=2..n} A_k²) / A_1`.
///
/// `n_harmonics` counts the fundamental, so `thd(s, f0, 5)` uses
/// harmonics 2–5. Returns `None` if the fundamental is unmeasurable or
/// its amplitude is numerically zero.
pub fn thd(samples: &UniformSamples, f0: f64, n_harmonics: usize) -> Option<f64> {
    let mags = harmonic_magnitudes(samples, f0, n_harmonics.max(1))?;
    let fund = mags[0];
    if fund <= 0.0 || !fund.is_finite() {
        return None;
    }
    let distortion: f64 = mags[1..].iter().map(|a| a * a).sum::<f64>().sqrt();
    Some(100.0 * distortion / fund)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn record<F: Fn(f64) -> f64>(f: F, fs: f64, n: usize) -> UniformSamples {
        UniformSamples::new(0.0, 1.0 / fs, (0..n).map(|k| f(k as f64 / fs)).collect())
    }

    #[test]
    fn pure_sine_has_negligible_thd() {
        let s = record(|t| (2.0 * PI * 1e3 * t).sin(), 128e3, 1280);
        let d = thd(&s, 1e3, 5).unwrap();
        assert!(d < 1e-6, "thd {d}");
    }

    #[test]
    fn known_harmonic_mix_gives_exact_thd() {
        // 3 % second + 4 % third harmonic → THD = 5 %.
        let s = record(
            |t| {
                (2.0 * PI * 1e3 * t).sin()
                    + 0.03 * (2.0 * PI * 2e3 * t).sin()
                    + 0.04 * (2.0 * PI * 3e3 * t).sin()
            },
            128e3,
            1280,
        );
        let d = thd(&s, 1e3, 5).unwrap();
        assert!((d - 5.0).abs() < 1e-6, "thd {d}");
    }

    #[test]
    fn clipped_sine_has_large_thd() {
        let s = record(|t| (2.0 * PI * 1e3 * t).sin().clamp(-0.5, 0.5), 128e3, 1280);
        let d = thd(&s, 1e3, 7).unwrap();
        assert!(d > 10.0, "thd {d}");
    }

    #[test]
    fn symmetric_clipping_produces_only_odd_harmonics() {
        let s = record(|t| (2.0 * PI * 1e3 * t).sin().clamp(-0.7, 0.7), 128e3, 1280);
        let mags = harmonic_magnitudes(&s, 1e3, 5).unwrap();
        assert!(mags[1] < 1e-9, "even harmonic {}", mags[1]); // 2nd
        assert!(mags[2] > 1e-3, "3rd harmonic {}", mags[2]);
        assert!(mags[3] < 1e-9, "even harmonic {}", mags[3]); // 4th
    }

    #[test]
    fn asymmetric_nonlinearity_produces_even_harmonics() {
        let s = record(
            |t| {
                let x = (2.0 * PI * 1e3 * t).sin();
                x + 0.1 * x * x
            },
            128e3,
            1280,
        );
        let mags = harmonic_magnitudes(&s, 1e3, 3).unwrap();
        assert!(mags[1] > 1e-3, "2nd harmonic {}", mags[1]);
    }

    #[test]
    fn harmonics_above_nyquist_count_as_zero() {
        let s = record(|t| (2.0 * PI * 10e3 * t).sin(), 64e3, 640);
        // 4th harmonic = 40 kHz > 32 kHz Nyquist.
        let mags = harmonic_magnitudes(&s, 10e3, 5).unwrap();
        assert_eq!(mags[3], 0.0);
        assert_eq!(mags[4], 0.0);
        assert!(thd(&s, 10e3, 5).is_some());
    }

    #[test]
    fn zero_signal_yields_none() {
        let s = UniformSamples::new(0.0, 1.0 / 64e3, vec![0.0; 640]);
        assert!(thd(&s, 1e3, 5).is_none());
    }

    #[test]
    fn zero_harmonic_request_is_empty() {
        let s = record(|t| (2.0 * PI * 1e3 * t).sin(), 64e3, 640);
        assert_eq!(harmonic_magnitudes(&s, 1e3, 0).unwrap(), Vec::<f64>::new());
    }
}
