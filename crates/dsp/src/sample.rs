/// A uniformly sampled waveform: `value[n]` was taken at `t0 + n·dt`.
///
/// Test configurations #4/#5 of the paper prescribe sampling `Vout` at
/// 100 MHz for 7.5 µs; this type is that sampled record, and the THD
/// configuration resamples simulator traces through
/// [`UniformSamples::resample`].
#[derive(Debug, Clone, PartialEq)]
pub struct UniformSamples {
    t0: f64,
    dt: f64,
    values: Vec<f64>,
}

impl UniformSamples {
    /// Wraps already-uniform samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or not finite.
    pub fn new(t0: f64, dt: f64, values: Vec<f64>) -> Self {
        assert!(dt.is_finite() && dt > 0.0, "sample interval must be positive, got {dt}");
        UniformSamples { t0, dt, values }
    }

    /// Resamples an arbitrary `(t, v)` trace (sorted by `t`) onto a
    /// uniform grid `t0 + n·dt`, `n = 0..count`, by linear interpolation;
    /// values outside the trace's span clamp to its end values.
    ///
    /// Returns `None` if the trace is empty or `count == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn resample(times: &[f64], values: &[f64], t0: f64, dt: f64, count: usize) -> Option<Self> {
        assert!(dt.is_finite() && dt > 0.0, "sample interval must be positive, got {dt}");
        if times.is_empty() || values.len() != times.len() || count == 0 {
            return None;
        }
        let mut out = Vec::with_capacity(count);
        let mut hint = 0usize;
        for n in 0..count {
            let t = t0 + dt * n as f64;
            out.push(interp(times, values, t, &mut hint));
        }
        Some(UniformSamples { t0, dt, values: out })
    }

    /// Start time of the record.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Sample interval.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Sample rate (`1/dt`).
    pub fn rate(&self) -> f64 {
        1.0 / self.dt
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the record is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A sub-record spanning `[from, from + len)` sample indices (clamped
    /// to the available range).
    pub fn slice(&self, from: usize, len: usize) -> UniformSamples {
        let from = from.min(self.values.len());
        let to = (from + len).min(self.values.len());
        UniformSamples {
            t0: self.t0 + self.dt * from as f64,
            dt: self.dt,
            values: self.values[from..to].to_vec(),
        }
    }
}

/// Linear interpolation with a monotone search hint (amortized O(1) for
/// in-order queries).
fn interp(times: &[f64], values: &[f64], t: f64, hint: &mut usize) -> f64 {
    let n = times.len();
    if t <= times[0] {
        return values[0];
    }
    if t >= times[n - 1] {
        return values[n - 1];
    }
    let mut i = (*hint).min(n - 2);
    // Walk backward if the hint overshot, forward otherwise.
    while i > 0 && times[i] > t {
        i -= 1;
    }
    while i + 1 < n && times[i + 1] <= t {
        i += 1;
    }
    *hint = i;
    let (t0, t1) = (times[i], times[i + 1]);
    let (v0, v1) = (values[i], values[i + 1]);
    if t1 <= t0 {
        v1
    } else {
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_wraps_values() {
        let s = UniformSamples::new(1.0, 0.5, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.t0(), 1.0);
        assert_eq!(s.dt(), 0.5);
        assert_eq!(s.rate(), 2.0);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn new_rejects_bad_dt() {
        UniformSamples::new(0.0, 0.0, vec![]);
    }

    #[test]
    fn resample_identity_grid() {
        let times = [0.0, 1.0, 2.0, 3.0];
        let values = [0.0, 10.0, 20.0, 30.0];
        let s = UniformSamples::resample(&times, &values, 0.0, 1.0, 4).unwrap();
        assert_eq!(s.values(), &values);
    }

    #[test]
    fn resample_interpolates_midpoints() {
        let times = [0.0, 2.0];
        let values = [0.0, 10.0];
        let s = UniformSamples::resample(&times, &values, 0.0, 0.5, 5).unwrap();
        assert_eq!(s.values(), &[0.0, 2.5, 5.0, 7.5, 10.0]);
    }

    #[test]
    fn resample_clamps_outside_span() {
        let times = [1.0, 2.0];
        let values = [5.0, 7.0];
        let s = UniformSamples::resample(&times, &values, 0.0, 1.5, 3).unwrap();
        // Queries at t = 0 (clamps to 5), t = 1.5 (midpoint → 6), t = 3
        // (clamps to 7).
        assert_eq!(s.values(), &[5.0, 6.0, 7.0]);
    }

    #[test]
    fn resample_rejects_empty_or_mismatched() {
        assert!(UniformSamples::resample(&[], &[], 0.0, 1.0, 3).is_none());
        assert!(UniformSamples::resample(&[0.0], &[], 0.0, 1.0, 3).is_none());
        assert!(UniformSamples::resample(&[0.0], &[1.0], 0.0, 1.0, 0).is_none());
    }

    #[test]
    fn resample_handles_nonuniform_input() {
        // Dense early, sparse late (like an adaptive simulator trace).
        let times = [0.0, 0.1, 0.15, 1.0, 4.0];
        let values = [0.0, 1.0, 1.5, 10.0, 40.0];
        let s = UniformSamples::resample(&times, &values, 0.0, 1.0, 5).unwrap();
        assert_eq!(s.values(), &[0.0, 10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn slice_extracts_suffix() {
        let s = UniformSamples::new(0.0, 1.0, vec![0.0, 1.0, 2.0, 3.0]);
        let tail = s.slice(2, 10);
        assert_eq!(tail.values(), &[2.0, 3.0]);
        assert_eq!(tail.t0(), 2.0);
        let empty = s.slice(10, 2);
        assert!(empty.is_empty());
    }
}
