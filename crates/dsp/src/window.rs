//! Window functions for spectral measurements on non-coherent records.
//!
//! The THD configuration arranges coherent sampling (an integer number of
//! stimulus periods), so the rectangular window is exact there; the Hann
//! window is provided for measurements where the record length cannot be
//! matched to the signal period.

use crate::UniformSamples;

/// Hann window coefficients of length `n`.
pub fn hann(n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![1.0],
        _ => (0..n)
            .map(|k| {
                let x = std::f64::consts::PI * k as f64 / (n - 1) as f64;
                x.sin().powi(2)
            })
            .collect(),
    }
}

/// Returns a copy of the record multiplied by the Hann window, scaled by
/// 2 so that the amplitude of a coherent sine is preserved (the Hann
/// window's coherent gain is 0.5).
pub fn apply_hann(s: &UniformSamples) -> UniformSamples {
    let w = hann(s.len());
    let vals = s.values().iter().zip(&w).map(|(v, wk)| 2.0 * v * wk).collect();
    UniformSamples::new(s.t0(), s.dt(), vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goertzel;
    use std::f64::consts::PI;

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let w = hann(101);
        assert!(w[0].abs() < 1e-12);
        assert!(w[100].abs() < 1e-12);
        assert!((w[50] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_degenerate_lengths() {
        assert!(hann(0).is_empty());
        assert_eq!(hann(1), vec![1.0]);
    }

    #[test]
    fn windowing_tames_leakage_for_noncoherent_record() {
        // 1.05 kHz sine in a 10 ms record: 10.5 periods — non-coherent.
        let fs = 64e3;
        let n = 640;
        let vals: Vec<f64> = (0..n).map(|k| (2.0 * PI * 1_050.0 * k as f64 / fs).sin()).collect();
        let s = UniformSamples::new(0.0, 1.0 / fs, vals);
        // Probe a far sidelobe (9.5 bins away from the tone): the
        // rectangular window leaks ~1/(π·9.5) there, Hann almost nothing.
        let raw = goertzel(&s, 2_000.0).unwrap().amplitude;
        let windowed = goertzel(&apply_hann(&s), 2_000.0).unwrap().amplitude;
        assert!(
            windowed < raw / 10.0,
            "window must reduce leakage: {windowed} !< {raw} / 10"
        );
    }

    #[test]
    fn windowed_amplitude_of_coherent_sine_is_preserved() {
        let fs = 64e3;
        let vals: Vec<f64> = (0..640).map(|k| (2.0 * PI * 1e3 * k as f64 / fs).sin()).collect();
        let s = UniformSamples::new(0.0, 1.0 / fs, vals);
        let g = goertzel(&apply_hann(&s), 1e3).unwrap();
        assert!((g.amplitude - 1.0).abs() < 0.01, "amp {}", g.amplitude);
    }
}
