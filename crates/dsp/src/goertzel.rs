//! Single-bin DFT via the (generalized) Goertzel algorithm.

use crate::UniformSamples;

/// Amplitude and phase of one frequency component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoertzelResult {
    /// Peak amplitude of the component (same unit as the samples; a pure
    /// sine `A·sin(2πft)` yields `amplitude ≈ A`).
    pub amplitude: f64,
    /// Phase in radians relative to a cosine at the record start.
    pub phase: f64,
}

/// Evaluates the DFT of `samples` at the (not necessarily bin-centered)
/// frequency `freq`, returning peak amplitude and phase.
///
/// This is the measurement core of the paper's THD test configuration:
/// the sine stimulus frequency is a free test parameter, so an
/// arbitrary-frequency projection is needed rather than an FFT bin.
/// Accuracy is best when the record spans an integer number of periods
/// (the caller arranges this; see [`crate::harmonic_magnitudes`]).
///
/// Returns `None` for an empty record or a non-positive frequency at or
/// above the Nyquist rate.
pub fn goertzel(samples: &UniformSamples, freq: f64) -> Option<GoertzelResult> {
    let n = samples.len();
    if n == 0 || freq <= 0.0 || freq >= 0.5 * samples.rate() {
        return None;
    }
    let omega = 2.0 * std::f64::consts::PI * freq * samples.dt();
    // Direct correlation (generalized Goertzel): numerically transparent
    // and exactly as fast at the record lengths used here.
    let mut re = 0.0;
    let mut im = 0.0;
    for (k, v) in samples.values().iter().enumerate() {
        let ph = omega * k as f64;
        re += v * ph.cos();
        im -= v * ph.sin();
    }
    let scale = 2.0 / n as f64;
    let re = re * scale;
    let im = im * scale;
    Some(GoertzelResult { amplitude: (re * re + im * im).sqrt(), phase: im.atan2(re) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sine_record(freq: f64, amp: f64, fs: f64, n: usize) -> UniformSamples {
        let vals = (0..n).map(|k| amp * (2.0 * PI * freq * k as f64 / fs).sin()).collect();
        UniformSamples::new(0.0, 1.0 / fs, vals)
    }

    #[test]
    fn recovers_amplitude_of_pure_sine() {
        let s = sine_record(1_000.0, 2.5, 64_000.0, 640); // 10 periods
        let g = goertzel(&s, 1_000.0).unwrap();
        assert!((g.amplitude - 2.5).abs() < 1e-9, "amp {}", g.amplitude);
    }

    #[test]
    fn rejects_other_harmonics_with_coherent_record() {
        let s = sine_record(1_000.0, 1.0, 64_000.0, 640);
        let g3 = goertzel(&s, 3_000.0).unwrap();
        assert!(g3.amplitude < 1e-9, "leakage {}", g3.amplitude);
    }

    #[test]
    fn separates_mixed_components() {
        let fs = 64_000.0;
        let n = 640;
        let vals: Vec<f64> = (0..n)
            .map(|k| {
                let t = k as f64 / fs;
                1.0 * (2.0 * PI * 1_000.0 * t).sin() + 0.2 * (2.0 * PI * 2_000.0 * t).sin()
            })
            .collect();
        let s = UniformSamples::new(0.0, 1.0 / fs, vals);
        let g1 = goertzel(&s, 1_000.0).unwrap();
        let g2 = goertzel(&s, 2_000.0).unwrap();
        assert!((g1.amplitude - 1.0).abs() < 1e-9);
        assert!((g2.amplitude - 0.2).abs() < 1e-9);
    }

    #[test]
    fn dc_offset_does_not_bias_coherent_measurement() {
        let fs = 64_000.0;
        let vals: Vec<f64> =
            (0..640).map(|k| 3.0 + (2.0 * PI * 1_000.0 * k as f64 / fs).sin()).collect();
        let s = UniformSamples::new(0.0, 1.0 / fs, vals);
        let g = goertzel(&s, 1_000.0).unwrap();
        assert!((g.amplitude - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phase_of_sine_is_minus_half_pi_from_cosine() {
        let s = sine_record(1_000.0, 1.0, 64_000.0, 640);
        let g = goertzel(&s, 1_000.0).unwrap();
        assert!((g.phase + PI / 2.0).abs() < 1e-6, "phase {}", g.phase);
    }

    #[test]
    fn invalid_inputs_return_none() {
        let s = sine_record(1_000.0, 1.0, 64_000.0, 64);
        assert!(goertzel(&s, 0.0).is_none());
        assert!(goertzel(&s, 32_000.0).is_none()); // at Nyquist
        let empty = UniformSamples::new(0.0, 1.0, vec![]);
        assert!(goertzel(&empty, 0.1).is_none());
    }
}
