//! Property-based tests of the measurement layer.

use castg_dsp::{goertzel, metrics, thd, UniformSamples};
use proptest::prelude::*;
use std::f64::consts::PI;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Goertzel recovers the amplitude and is phase-invariant for any
    /// coherently sampled sine.
    #[test]
    fn goertzel_amplitude_recovery(
        amp in 0.01f64..100.0,
        phase in 0.0f64..(2.0 * PI),
        periods in 2usize..10,
    ) {
        let fs = 64_000.0;
        let f0 = 1_000.0;
        let n = periods * 64; // 64 samples per period
        let vals: Vec<f64> = (0..n)
            .map(|k| amp * (2.0 * PI * f0 * k as f64 / fs + phase).sin())
            .collect();
        let s = UniformSamples::new(0.0, 1.0 / fs, vals);
        let g = goertzel(&s, f0).unwrap();
        prop_assert!((g.amplitude - amp).abs() < 1e-6 * amp, "amp {}", g.amplitude);
    }

    /// THD of a two-tone signal matches the component ratio exactly
    /// under coherent sampling.
    #[test]
    fn thd_matches_component_ratio(h3 in 0.001f64..0.5) {
        let fs = 128_000.0;
        let f0 = 1_000.0;
        let vals: Vec<f64> = (0..1280)
            .map(|k| {
                let t = k as f64 / fs;
                (2.0 * PI * f0 * t).sin() + h3 * (2.0 * PI * 3.0 * f0 * t).sin()
            })
            .collect();
        let s = UniformSamples::new(0.0, 1.0 / fs, vals);
        let d = thd(&s, f0, 5).unwrap();
        prop_assert!((d - 100.0 * h3).abs() < 1e-3, "thd {d}, expected {}", 100.0 * h3);
    }

    /// Scaling a signal scales RMS and peak linearly and leaves THD
    /// unchanged.
    #[test]
    fn scaling_invariants(scale in 0.1f64..10.0) {
        let fs = 64_000.0;
        let base: Vec<f64> = (0..640)
            .map(|k| {
                let t = k as f64 / fs;
                (2.0 * PI * 1_000.0 * t).sin() + 0.1 * (2.0 * PI * 2_000.0 * t).sin()
            })
            .collect();
        let scaled: Vec<f64> = base.iter().map(|v| v * scale).collect();
        let a = UniformSamples::new(0.0, 1.0 / fs, base);
        let b = UniformSamples::new(0.0, 1.0 / fs, scaled);
        prop_assert!((metrics::rms(&b) - scale * metrics::rms(&a)).abs() < 1e-9 * scale);
        prop_assert!((metrics::peak(&b) - scale * metrics::peak(&a)).abs() < 1e-9 * scale);
        let ta = thd(&a, 1_000.0, 5).unwrap();
        let tb = thd(&b, 1_000.0, 5).unwrap();
        prop_assert!((ta - tb).abs() < 1e-6, "thd changed under scaling: {ta} vs {tb}");
    }

    /// max_abs_deviation is a metric-like quantity: symmetric, zero on
    /// identical records, and obeys the triangle inequality.
    #[test]
    fn deviation_is_metric_like(
        a in prop::collection::vec(-10.0f64..10.0, 16),
        b in prop::collection::vec(-10.0f64..10.0, 16),
        c in prop::collection::vec(-10.0f64..10.0, 16),
    ) {
        let sa = UniformSamples::new(0.0, 1.0, a);
        let sb = UniformSamples::new(0.0, 1.0, b);
        let sc = UniformSamples::new(0.0, 1.0, c);
        let dab = metrics::max_abs_deviation(&sa, &sb);
        let dba = metrics::max_abs_deviation(&sb, &sa);
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert_eq!(metrics::max_abs_deviation(&sa, &sa), 0.0);
        let dac = metrics::max_abs_deviation(&sa, &sc);
        let dcb = metrics::max_abs_deviation(&sc, &sb);
        prop_assert!(dab <= dac + dcb + 1e-12);
    }

    /// Resampling a straight line is exact regardless of grids.
    #[test]
    fn resample_line_exact(
        slope in -10.0f64..10.0,
        intercept in -10.0f64..10.0,
        count in 2usize..50,
    ) {
        let times: Vec<f64> = (0..20).map(|i| i as f64 * 0.37).collect();
        let values: Vec<f64> = times.iter().map(|t| slope * t + intercept).collect();
        let dt = times[times.len() - 1] / count as f64;
        let s = UniformSamples::resample(&times, &values, 0.0, dt, count).unwrap();
        for (k, v) in s.values().iter().enumerate() {
            let t = k as f64 * dt;
            prop_assert!((v - (slope * t + intercept)).abs() < 1e-9, "at t={t}");
        }
    }

    /// accumulated_deviation is linear in the deviation.
    #[test]
    fn accumulation_linearity(offset in -5.0f64..5.0) {
        let a = UniformSamples::new(0.0, 0.5, vec![1.0; 10]);
        let b = UniformSamples::new(0.0, 0.5, vec![1.0 + offset; 10]);
        let acc = metrics::accumulated_deviation(&b, &a);
        prop_assert!((acc - offset * 10.0 * 0.5).abs() < 1e-9);
    }
}
