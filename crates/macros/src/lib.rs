//! Analog macro designs under test for `castg`.
//!
//! The paper evaluates its methodology on a CMOS IV-converter macro (a
//! photodiode transimpedance amplifier, the paper’s ref. \[9\]) with an exhaustive fault
//! list of 55 faults and five test configurations (Table 1). The
//! original MESA design is not public; [`IvConverter`] is a
//! representative substitute — a two-stage Miller-compensated CMOS
//! transimpedance amplifier with exactly **10 fault-site nodes** (45
//! bridge pairs) and **10 transistors** (10 pinholes), so the fault
//! universe matches the paper's.
//!
//! The crate also provides:
//!
//! * [`IvConfigKind`] — the five test-configuration implementations of
//!   Table 1 (DC transfer, supply current, THD, step max-deviation,
//!   step accumulated-deviation),
//! * [`ProcessVariation`] — a lot-plus-mismatch process model used to
//!   calibrate tolerance boxes by Monte Carlo,
//! * [`Equipment`] — measurement-accuracy floors folded into the boxes
//!   (§2.2 includes equipment accuracy in the box),
//! * [`BoxGrid`] / [`calibrate_box`] — the paper's *box-functions*:
//!   cheap per-configuration estimators of the tolerance-box value at
//!   any parameter vector,
//! * [`OtaBuffer`] — a second, smaller macro demonstrating that the
//!   framework generalizes beyond the IV-converter,
//! * [`BjtOpAmp`] — a bipolar (diode + BJT) two-stage follower whose
//!   dictionary carries junction pinholes, demonstrating the framework
//!   is not MOS-specific.
//!
//! # Example
//!
//! ```no_run
//! use castg_core::{AnalogMacro, Generator, NominalCache};
//! use castg_macros::IvConverter;
//!
//! let mac = IvConverter::new();
//! let cache = NominalCache::new();
//! let generator = Generator::new(&mac, &cache);
//! let report = generator.generate(&mac.fault_dictionary());
//! println!("{} best tests generated", report.tests.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bjt_opamp;
mod boxes;
mod equipment;
mod iv_configs;
mod iv_converter;
mod ota;
mod process;

pub use bjt_opamp::BjtOpAmp;
pub use boxes::{calibrate_box, BoxGrid, BoxPolicy};
pub use equipment::Equipment;
pub use iv_configs::IvConfigKind;
pub use iv_converter::{IvConverter, IvConverterParams};
pub use ota::OtaBuffer;
pub use process::ProcessVariation;
