//! Box-functions: cheap estimators of the tolerance-box value at any
//! test-parameter vector (§3.4: "for each test configuration so-called
//! box-functions have been determined estimating the (single)
//! tolerance-box value given a test parameter value set within the
//! allowed range").
//!
//! Calibration runs fault-free Monte-Carlo process samples over a coarse
//! parameter grid, records the worst return-value deviation per grid
//! point, and interpolates multilinearly at query time. A safety margin
//! and the equipment-accuracy floor are folded in.

use castg_core::{CoreError, Measurement, TestConfiguration};
use castg_numeric::grid::linspace;
use castg_spice::Circuit;

use crate::ProcessVariation;

/// How a configuration obtains its tolerance box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoxPolicy {
    /// `box = rel · |r_nom| + abs` — no calibration, instant; used by
    /// unit tests and quick experiments.
    Analytic {
        /// Relative part (fraction of the nominal return value).
        rel: f64,
        /// Absolute floor.
        abs: f64,
    },
    /// Monte-Carlo calibrated grid (the paper's box-functions).
    Calibrated {
        /// Grid points per parameter dimension.
        grid_points: usize,
        /// Monte-Carlo samples per grid point.
        mc_samples: usize,
        /// RNG seed for the process samples.
        seed: u64,
        /// Multiplier on the observed spread (safety margin).
        margin: f64,
    },
}

impl BoxPolicy {
    /// The default calibrated policy used by the IV-converter macro.
    pub fn calibrated_default() -> Self {
        BoxPolicy::Calibrated { grid_points: 3, mc_samples: 6, seed: 0xCA57, margin: 1.2 }
    }
}

/// A multilinearly interpolated scalar field over a rectangular
/// parameter grid — the calibrated box-function.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxGrid {
    axes: Vec<Vec<f64>>,
    /// Row-major over the axes (last axis fastest).
    values: Vec<f64>,
    /// Absolute floor added to every query.
    floor: f64,
}

impl BoxGrid {
    /// Builds a grid from axes and values (last axis fastest).
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the grid size or any
    /// axis is empty.
    pub fn new(axes: Vec<Vec<f64>>, values: Vec<f64>, floor: f64) -> Self {
        let expect: usize = axes.iter().map(Vec::len).product();
        assert!(axes.iter().all(|a| !a.is_empty()), "axes must be non-empty");
        assert_eq!(values.len(), expect, "value count must match grid size");
        BoxGrid { axes, values, floor }
    }

    /// Queries the box value at `params` (clamped into the grid).
    ///
    /// # Panics
    ///
    /// Panics if `params` has the wrong dimension.
    pub fn query(&self, params: &[f64]) -> f64 {
        assert_eq!(params.len(), self.axes.len(), "dimension mismatch");
        self.interp(0, 0, params) + self.floor
    }

    /// Recursive multilinear interpolation. `offset` indexes the value
    /// array for the axes already fixed.
    fn interp(&self, dim: usize, offset: usize, params: &[f64]) -> f64 {
        if dim == self.axes.len() {
            return self.values[offset];
        }
        let axis = &self.axes[dim];
        let stride: usize = self.axes[dim + 1..].iter().map(Vec::len).product();
        let x = params[dim].clamp(axis[0], axis[axis.len() - 1]);
        if axis.len() == 1 {
            return self.interp(dim + 1, offset, params);
        }
        let mut i = axis.partition_point(|a| *a <= x).saturating_sub(1);
        i = i.min(axis.len() - 2);
        let (x0, x1) = (axis[i], axis[i + 1]);
        let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
        let v0 = self.interp(dim + 1, offset + i * stride, params);
        let v1 = self.interp(dim + 1, offset + (i + 1) * stride, params);
        v0 + t * (v1 - v0)
    }
}

/// Calibrates a box-function for `config` on the given nominal circuit:
/// runs `mc_samples` fault-free process samples at each grid point and
/// records `margin · max |r_sample − r_nom|` (worst over return values),
/// plus `floor`.
///
/// # Errors
///
/// Propagates nominal-measurement failures; individual process-sample
/// failures are skipped (a sample that refuses to converge everywhere
/// would leave that grid point with just the floor).
#[allow(clippy::too_many_arguments)] // calibration knobs are genuinely independent
pub fn calibrate_box(
    config: &dyn TestConfiguration,
    nominal: &Circuit,
    process: &ProcessVariation,
    grid_points: usize,
    mc_samples: usize,
    seed: u64,
    margin: f64,
    floor: f64,
) -> Result<BoxGrid, CoreError> {
    let space = config.space();
    let axes: Vec<Vec<f64>> = (0..space.dim())
        .map(|d| linspace(space.bounds(d).lo(), space.bounds(d).hi(), grid_points.max(2)))
        .collect();
    let samples = process.samples(nominal, seed, mc_samples);

    let mut values = Vec::new();
    let mut point = vec![0.0; space.dim()];
    fill_grid(config, nominal, &samples, &axes, 0, &mut point, margin, &mut values)?;
    Ok(BoxGrid::new(axes, values, floor))
}

#[allow(clippy::too_many_arguments)]
fn fill_grid(
    config: &dyn TestConfiguration,
    nominal: &Circuit,
    samples: &[Circuit],
    axes: &[Vec<f64>],
    dim: usize,
    point: &mut Vec<f64>,
    margin: f64,
    out: &mut Vec<f64>,
) -> Result<(), CoreError> {
    if dim == axes.len() {
        out.push(margin * spread_at(config, nominal, samples, point)?);
        return Ok(());
    }
    for x in &axes[dim] {
        point[dim] = *x;
        fill_grid(config, nominal, samples, axes, dim + 1, point, margin, out)?;
    }
    Ok(())
}

/// Worst |r_sample − r_nom| over process samples and return values.
fn spread_at(
    config: &dyn TestConfiguration,
    nominal: &Circuit,
    samples: &[Circuit],
    params: &[f64],
) -> Result<f64, CoreError> {
    let m_nom = config.measure(nominal, params)?;
    let r_nom = config.return_values(&m_nom, &m_nom);
    let mut worst = 0.0_f64;
    for s in samples {
        let Ok(m_s) = config.measure(s, params) else {
            continue; // a non-converging process sample is skipped
        };
        let r_s = config.return_values(&m_s, &m_nom);
        for (rs, rn) in r_s.iter().zip(&r_nom) {
            let dev = (rs - rn).abs();
            if dev.is_finite() {
                worst = worst.max(dev);
            }
        }
    }
    Ok(worst)
}

/// Convenience: evaluate a measurement deviation-based [`Measurement`]
/// pair the way the calibration does (exposed for tests).
pub(crate) fn _measurement_deviation(
    config: &dyn TestConfiguration,
    sample: &Measurement,
    nominal: &Measurement,
) -> f64 {
    let r_n = config.return_values(nominal, nominal);
    let r_s = config.return_values(sample, nominal);
    r_s.iter().zip(&r_n).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_1d_interpolates_linearly() {
        let g = BoxGrid::new(vec![vec![0.0, 1.0]], vec![0.0, 10.0], 0.5);
        assert_eq!(g.query(&[0.0]), 0.5);
        assert_eq!(g.query(&[0.5]), 5.5);
        assert_eq!(g.query(&[1.0]), 10.5);
        // Clamped outside.
        assert_eq!(g.query(&[-5.0]), 0.5);
        assert_eq!(g.query(&[5.0]), 10.5);
    }

    #[test]
    fn grid_2d_bilinear() {
        // Values laid out with the last axis fastest: rows over x, cols y.
        let g = BoxGrid::new(
            vec![vec![0.0, 1.0], vec![0.0, 1.0]],
            vec![0.0, 1.0, 2.0, 3.0], // f(x,y) = 2x + y
            0.0,
        );
        assert_eq!(g.query(&[0.0, 0.0]), 0.0);
        assert_eq!(g.query(&[0.0, 1.0]), 1.0);
        assert_eq!(g.query(&[1.0, 0.0]), 2.0);
        assert_eq!(g.query(&[1.0, 1.0]), 3.0);
        assert_eq!(g.query(&[0.5, 0.5]), 1.5);
    }

    #[test]
    fn single_point_axis_is_constant() {
        let g = BoxGrid::new(vec![vec![2.0]], vec![7.0], 1.0);
        assert_eq!(g.query(&[0.0]), 8.0);
        assert_eq!(g.query(&[100.0]), 8.0);
    }

    #[test]
    #[should_panic(expected = "value count")]
    fn grid_validates_sizes() {
        BoxGrid::new(vec![vec![0.0, 1.0]], vec![1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn query_validates_dimension() {
        let g = BoxGrid::new(vec![vec![0.0, 1.0]], vec![0.0, 1.0], 0.0);
        g.query(&[0.0, 0.0]);
    }

    #[test]
    fn calibration_on_synthetic_macro_produces_positive_boxes() {
        use castg_core::synthetic::DividerMacro;
        use castg_core::AnalogMacro;
        let mac = DividerMacro::new();
        let circuit = mac.nominal_circuit();
        let configs = mac.configurations();
        let process = ProcessVariation::default();
        let grid = calibrate_box(
            configs[0].as_ref(),
            &circuit,
            &process,
            3,
            4,
            42,
            1.2,
            1e-3,
        )
        .unwrap();
        // Divider with ±8 % resistors: the output delta spread at 5 V is
        // on the order of tens of millivolts.
        let b = grid.query(&[5.0]);
        assert!(b > 1e-3, "box {b} must exceed the floor");
        assert!(b < 1.0, "box {b} implausibly large");
        // More drive → more spread (monotone within the grid).
        assert!(grid.query(&[8.0]) >= grid.query(&[1.0]));
    }
}
