//! A third macro: a two-stage bipolar op-amp unity-gain follower.
//!
//! Where [`OtaBuffer`](crate::OtaBuffer) proves the pipeline is not
//! IV-converter specific, this macro proves it is not *MOS* specific:
//! every nonlinear device is a pn junction — an NPN diff pair, a PNP
//! second stage, a diode bias chain and an NPN tail sink — so fault
//! simulation exercises the junction-limited Newton path and the
//! dictionary carries junction pinholes instead of gate-oxide ones.

use std::sync::Arc;

use castg_core::{
    check_params, AnalogMacro, ConfigDescription, CoreError, Measurement, ParamSpec, PortAction,
    TestConfiguration,
};
use castg_faults::{exhaustive_bridge_faults, Fault, FaultDictionary, Junction};
use castg_numeric::{Bounds, ParamSpace};
use castg_spice::{BjtParams, BjtPolarity, Circuit, DcAnalysis, DiodeParams, Waveform};

use crate::Equipment;

/// A two-stage bipolar op-amp wired as a unity-gain voltage follower:
/// NPN diff pair (Q1/Q2) with 4 kΩ collector loads, PNP common-emitter
/// second stage (Q3), and a tail current sink (Q4) biased by a
/// two-diode chain (D1/D2). Fault sites: `vcc`, `vin`, `tail`, `c1`,
/// `c2`, `out`, `bias` (21 bridges) plus 10 junction pinholes (D1/D2
/// anode–cathode, Q1–Q4 base–emitter and base–collector) — a 31-fault
/// dictionary.
///
/// # Example
///
/// ```
/// use castg_core::AnalogMacro;
/// use castg_macros::BjtOpAmp;
///
/// let amp = BjtOpAmp::new();
/// assert_eq!(amp.fault_dictionary().len(), 31);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BjtOpAmp {
    _private: (),
}

impl BjtOpAmp {
    /// Creates the follower macro.
    pub fn new() -> Self {
        BjtOpAmp { _private: () }
    }

    /// Builds the netlist.
    pub fn build_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let vin = c.node("vin");
        let tail = c.node("tail");
        let c1 = c.node("c1");
        let c2 = c.node("c2");
        let out = c.node("out");
        let bias = c.node("bias");
        let gnd = Circuit::GROUND;

        c.add_vsource("VCC", vcc, gnd, Waveform::dc(5.0)).expect("fresh netlist");
        c.add_vsource("VIN", vin, gnd, Waveform::dc(2.5)).expect("fresh netlist");

        let npn = BjtParams::signal_default();
        let pnp = BjtParams::signal_default();
        // NPN diff pair: the input rides Q2's base; the feedback wire
        // from `out` closes the loop on Q1's base (the second stage
        // inverts once, the pair's c2 side inverts once — net negative
        // feedback, so the follower tracks the non-inverting Q2 input).
        c.add_bjt("Q1", c1, out, tail, BjtPolarity::Npn, npn).expect("fresh netlist");
        c.add_bjt("Q2", c2, vin, tail, BjtPolarity::Npn, npn).expect("fresh netlist");
        c.add_resistor("RC1", vcc, c1, 4e3).expect("fresh netlist");
        c.add_resistor("RC2", vcc, c2, 4e3).expect("fresh netlist");
        // PNP second stage with emitter degeneration, loaded by ROUT.
        let e3 = c.node("e3");
        c.add_resistor("RE3", vcc, e3, 1e3).expect("fresh netlist");
        c.add_bjt("Q3", out, c2, e3, BjtPolarity::Pnp, pnp).expect("fresh netlist");
        c.add_resistor("ROUT", out, gnd, 2e3).expect("fresh netlist");
        // Two-diode bias chain sets the tail sink Q4 to roughly 1 mA:
        // v(bias) ≈ 2 diode drops, Q4 loses one V_BE, RE4 sees the rest.
        let bmid = c.node("bmid");
        let e4 = c.node("e4");
        c.add_resistor("RB", vcc, bias, 10e3).expect("fresh netlist");
        c.add_diode("D1", bias, bmid, DiodeParams::signal_default()).expect("fresh netlist");
        c.add_diode("D2", bmid, gnd, DiodeParams::signal_default()).expect("fresh netlist");
        c.add_bjt("Q4", tail, bias, e4, BjtPolarity::Npn, npn).expect("fresh netlist");
        c.add_resistor("RE4", e4, gnd, 600.0).expect("fresh netlist");
        c.add_capacitor("CL", out, gnd, 2e-12).expect("fresh netlist");
        c
    }
}

impl AnalogMacro for BjtOpAmp {
    fn name(&self) -> &str {
        "bjt_opamp"
    }

    fn macro_type(&self) -> &str {
        "BJT-opamp"
    }

    fn nominal_circuit(&self) -> Circuit {
        self.build_circuit()
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        ["vcc", "vin", "tail", "c1", "c2", "out", "bias"].iter().map(|s| s.to_string()).collect()
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        let mut dict = FaultDictionary::new(exhaustive_bridge_faults(&refs, 10e3));
        // Junction pinholes: one per diode, two per BJT.
        dict.extend(vec![
            Fault::junction_pinhole("D1", Junction::AnodeCathode, 2e3),
            Fault::junction_pinhole("D2", Junction::AnodeCathode, 2e3),
        ]);
        let mut bjt = Vec::new();
        for q in ["Q1", "Q2", "Q3", "Q4"] {
            bjt.push(Fault::junction_pinhole(q, Junction::BaseEmitter, 2e3));
            bjt.push(Fault::junction_pinhole(q, Junction::BaseCollector, 2e3));
        }
        dict.extend(bjt);
        dict
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![
            Arc::new(BjtConfig { kind: BjtConfigKind::DcFollow }),
            Arc::new(BjtConfig { kind: BjtConfigKind::SupplyCurrent }),
        ]
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum BjtConfigKind {
    DcFollow,
    SupplyCurrent,
}

struct BjtConfig {
    kind: BjtConfigKind,
}

impl TestConfiguration for BjtConfig {
    fn id(&self) -> usize {
        match self.kind {
            BjtConfigKind::DcFollow => 1,
            BjtConfigKind::SupplyCurrent => 2,
        }
    }

    fn name(&self) -> &str {
        match self.kind {
            BjtConfigKind::DcFollow => "dc_follow",
            BjtConfigKind::SupplyCurrent => "supply_current",
        }
    }

    fn param_names(&self) -> Vec<String> {
        vec!["vin".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(1.5, 3.5).expect("static bounds")])
    }

    fn seed(&self) -> Vec<f64> {
        vec![2.5]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let mut c = circuit.clone();
        c.set_stimulus("VIN", Waveform::dc(params[0]))?;
        let sol = DcAnalysis::new(&c).solve()?;
        match self.kind {
            BjtConfigKind::DcFollow => {
                let out = c.find_node("out").ok_or_else(|| CoreError::Configuration {
                    config: self.name().to_string(),
                    reason: "no `out` node".to_string(),
                })?;
                Ok(Measurement::scalar(sol.voltage(out)))
            }
            BjtConfigKind::SupplyCurrent => Ok(Measurement::scalar(
                sol.source_current("VCC").ok_or_else(|| CoreError::Configuration {
                    config: self.name().to_string(),
                    reason: "no `VCC` source".to_string(),
                })?,
            )),
        }
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], nominal_returns: &[f64]) -> Vec<f64> {
        let e = Equipment::default();
        let r_nom = nominal_returns.first().copied().unwrap_or(0.0);
        let v = match self.kind {
            BjtConfigKind::DcFollow => 0.02 * params[0] + e.voltage_floor,
            BjtConfigKind::SupplyCurrent => 10e-6 + e.current_floor,
        };
        vec![v + e.relative * r_nom.abs()]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "BJT-opamp".into(),
            title: match self.kind {
                BjtConfigKind::DcFollow => "DC follow".into(),
                BjtConfigKind::SupplyCurrent => "Supply current".into(),
            },
            controls: vec![PortAction { node: "vin".into(), action: "dc(vin)".into() }],
            observes: vec![PortAction {
                node: match self.kind {
                    BjtConfigKind::DcFollow => "out".into(),
                    BjtConfigKind::SupplyCurrent => "VCC".into(),
                },
                action: "dc()".into(),
            }],
            return_value: match self.kind {
                BjtConfigKind::DcFollow => "dV(out)".into(),
                BjtConfigKind::SupplyCurrent => "dI(VCC)".into(),
            },
            parameters: vec![ParamSpec { name: "vin".into(), lo: 1.5, hi: 3.5 }],
            variables: vec![],
            seed: vec![("vin".into(), 2.5)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follower_tracks_its_input() {
        let amp = BjtOpAmp::new();
        let mut c = amp.build_circuit();
        for vin in [1.8, 2.5, 3.2] {
            c.set_stimulus("VIN", Waveform::dc(vin)).unwrap();
            let sol = DcAnalysis::new(&c).solve().unwrap();
            let out = sol.voltage(c.find_node("out").unwrap());
            assert!((out - vin).abs() < 0.1, "vin {vin} → out {out}");
        }
    }

    #[test]
    fn dictionary_has_thirty_one_faults() {
        let amp = BjtOpAmp::new();
        let dict = amp.fault_dictionary();
        assert_eq!(dict.len(), 31);
        assert_eq!(dict.count(castg_faults::FaultKind::Bridge), 21);
        assert_eq!(dict.count(castg_faults::FaultKind::Pinhole), 10);
        let c = amp.build_circuit();
        for f in dict.iter() {
            f.inject(&c).unwrap();
        }
    }

    #[test]
    fn generation_works_on_the_bipolar_macro() {
        // End-to-end proof that nothing in the pipeline assumes MOS.
        let amp = BjtOpAmp::new();
        let cache = castg_core::NominalCache::new();
        let gen = castg_core::Generator::new(&amp, &cache);
        let fault = Fault::junction_pinhole("Q2", Junction::BaseEmitter, 2e3);
        let best = gen.generate_for_fault(&fault).unwrap();
        assert!(best.config_id == 1 || best.config_id == 2);
        assert!(!best.params.is_empty());
    }
}
