//! A second macro: a five-transistor OTA unity-gain buffer.
//!
//! The paper's framework is macro-type oriented; this small buffer
//! demonstrates (and tests) that nothing in the generation pipeline is
//! specific to the IV-converter. It reuses the DC-transfer and
//! supply-current configuration shapes with voltage stimulus.

use std::sync::Arc;

use castg_core::{
    check_params, AnalogMacro, ConfigDescription, CoreError, Measurement, ParamSpec, PortAction,
    TestConfiguration,
};
use castg_faults::{
    exhaustive_bridge_faults, exhaustive_pinhole_faults, FaultDictionary,
};
use castg_numeric::{Bounds, ParamSpace};
use castg_spice::{Circuit, DcAnalysis, MosParams, MosPolarity, Waveform};

use crate::Equipment;

/// A five-transistor NMOS-input OTA wired as a unity-gain voltage
/// follower. Fault sites: `vdd`, `vin`, `tail`, `nmir`, `out` (10
/// bridges) plus 5 pinholes — a 15-fault dictionary.
///
/// # Example
///
/// ```
/// use castg_core::AnalogMacro;
/// use castg_macros::OtaBuffer;
///
/// let ota = OtaBuffer::new();
/// assert_eq!(ota.fault_dictionary().len(), 15);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OtaBuffer {
    _private: (),
}

impl OtaBuffer {
    /// Creates the buffer macro.
    pub fn new() -> Self {
        OtaBuffer { _private: () }
    }

    /// Builds the netlist.
    pub fn build_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("vin");
        let tail = c.node("tail");
        let nmir = c.node("nmir");
        let out = c.node("out");
        let gnd = Circuit::GROUND;

        c.add_vsource("VDD", vdd, gnd, Waveform::dc(5.0)).expect("fresh netlist");
        c.add_vsource("VIN", vin, gnd, Waveform::dc(2.5)).expect("fresh netlist");
        // NMOS diff pair, PMOS mirror load, NMOS tail sink biased by a
        // resistor-set mirror.
        let n = MosParams::nmos_default(40e-6, 2e-6);
        let p = MosParams::pmos_default(80e-6, 2e-6);
        c.add_mosfet("M1", nmir, vin, tail, gnd, MosPolarity::Nmos, n).expect("fresh netlist");
        // Feedback: gate of M2 is the output (unity follower).
        c.add_mosfet("M2", out, out, tail, gnd, MosPolarity::Nmos, n).expect("fresh netlist");
        c.add_mosfet("M3", nmir, nmir, vdd, vdd, MosPolarity::Pmos, p).expect("fresh netlist");
        c.add_mosfet("M4", out, nmir, vdd, vdd, MosPolarity::Pmos, p).expect("fresh netlist");
        // Tail current sink: diode-connected reference through RB.
        let bias = c.node("bias");
        c.add_resistor("RB", vdd, bias, 120e3).expect("fresh netlist");
        c.add_mosfet(
            "M5B",
            bias,
            bias,
            gnd,
            gnd,
            MosPolarity::Nmos,
            MosParams::nmos_default(20e-6, 2e-6),
        )
        .expect("fresh netlist");
        c.add_mosfet(
            "M5",
            tail,
            bias,
            gnd,
            gnd,
            MosPolarity::Nmos,
            MosParams::nmos_default(40e-6, 2e-6),
        )
        .expect("fresh netlist");
        c.add_capacitor("CL", out, gnd, 2e-12).expect("fresh netlist");
        c
    }
}

impl AnalogMacro for OtaBuffer {
    fn name(&self) -> &str {
        "ota_buffer"
    }

    fn macro_type(&self) -> &str {
        "OTA-buffer"
    }

    fn nominal_circuit(&self) -> Circuit {
        self.build_circuit()
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        ["vdd", "vin", "tail", "nmir", "out"].iter().map(|s| s.to_string()).collect()
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        let mut dict = FaultDictionary::new(exhaustive_bridge_faults(&refs, 10e3));
        // Pinholes on the five signal-path transistors.
        let names: Vec<String> =
            ["M1", "M2", "M3", "M4", "M5"].iter().map(|s| s.to_string()).collect();
        dict.extend(exhaustive_pinhole_faults(&names, 2e3));
        dict
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![
            Arc::new(OtaConfig { kind: OtaConfigKind::DcFollow }),
            Arc::new(OtaConfig { kind: OtaConfigKind::SupplyCurrent }),
        ]
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum OtaConfigKind {
    DcFollow,
    SupplyCurrent,
}

struct OtaConfig {
    kind: OtaConfigKind,
}

impl TestConfiguration for OtaConfig {
    fn id(&self) -> usize {
        match self.kind {
            OtaConfigKind::DcFollow => 1,
            OtaConfigKind::SupplyCurrent => 2,
        }
    }

    fn name(&self) -> &str {
        match self.kind {
            OtaConfigKind::DcFollow => "dc_follow",
            OtaConfigKind::SupplyCurrent => "supply_current",
        }
    }

    fn param_names(&self) -> Vec<String> {
        vec!["vin".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(1.2, 4.0).expect("static bounds")])
    }

    fn seed(&self) -> Vec<f64> {
        vec![2.5]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let mut c = circuit.clone();
        c.set_stimulus("VIN", Waveform::dc(params[0]))?;
        let sol = DcAnalysis::new(&c).solve()?;
        match self.kind {
            OtaConfigKind::DcFollow => {
                let out = c.find_node("out").ok_or_else(|| CoreError::Configuration {
                    config: self.name().to_string(),
                    reason: "no `out` node".to_string(),
                })?;
                Ok(Measurement::scalar(sol.voltage(out)))
            }
            OtaConfigKind::SupplyCurrent => Ok(Measurement::scalar(
                sol.source_current("VDD").ok_or_else(|| CoreError::Configuration {
                    config: self.name().to_string(),
                    reason: "no `VDD` source".to_string(),
                })?,
            )),
        }
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], nominal_returns: &[f64]) -> Vec<f64> {
        let e = Equipment::default();
        let r_nom = nominal_returns.first().copied().unwrap_or(0.0);
        let v = match self.kind {
            OtaConfigKind::DcFollow => 0.02 * params[0] + e.voltage_floor,
            OtaConfigKind::SupplyCurrent => 8e-6 + e.current_floor,
        };
        vec![v + e.relative * r_nom.abs()]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "OTA-buffer".into(),
            title: match self.kind {
                OtaConfigKind::DcFollow => "DC follow".into(),
                OtaConfigKind::SupplyCurrent => "Supply current".into(),
            },
            controls: vec![PortAction { node: "vin".into(), action: "dc(vin)".into() }],
            observes: vec![PortAction {
                node: match self.kind {
                    OtaConfigKind::DcFollow => "out".into(),
                    OtaConfigKind::SupplyCurrent => "VDD".into(),
                },
                action: "dc()".into(),
            }],
            return_value: match self.kind {
                OtaConfigKind::DcFollow => "dV(out)".into(),
                OtaConfigKind::SupplyCurrent => "dI(VDD)".into(),
            },
            parameters: vec![ParamSpec { name: "vin".into(), lo: 1.2, hi: 4.0 }],
            variables: vec![],
            seed: vec![("vin".into(), 2.5)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_follows_input() {
        let ota = OtaBuffer::new();
        let mut c = ota.build_circuit();
        for vin in [1.8, 2.5, 3.2] {
            c.set_stimulus("VIN", Waveform::dc(vin)).unwrap();
            let sol = DcAnalysis::new(&c).solve().unwrap();
            let out = sol.voltage(c.find_node("out").unwrap());
            assert!((out - vin).abs() < 0.1, "vin {vin} → out {out}");
        }
    }

    #[test]
    fn dictionary_has_fifteen_faults() {
        let ota = OtaBuffer::new();
        let dict = ota.fault_dictionary();
        assert_eq!(dict.len(), 15);
        let c = ota.build_circuit();
        for f in dict.iter() {
            f.inject(&c).unwrap();
        }
    }

    #[test]
    fn generation_works_on_the_second_macro() {
        // End-to-end proof that the pipeline is macro-agnostic.
        let ota = OtaBuffer::new();
        let cache = castg_core::NominalCache::new();
        let gen = castg_core::Generator::new(&ota, &cache);
        let fault = castg_faults::Fault::bridge("out", "tail", 10e3);
        let best = gen.generate_for_fault(&fault).unwrap();
        assert!(best.config_id == 1 || best.config_id == 2);
        assert!(!best.params.is_empty());
    }
}
