//! The paper's five test-configuration implementations for the
//! IV-converter (Table 1).
//!
//! | # | name            | stimulus at `IIN`                  | parameters      | return value        |
//! |---|-----------------|------------------------------------|-----------------|---------------------|
//! | 1 | `dc_transfer`   | DC level `lev`                     | `lev`           | `ΔV(out)`           |
//! | 2 | `supply_current`| DC level `lev`                     | `lev`           | `ΔI(VDD)`           |
//! | 3 | `thd`           | sine, 5 µA amplitude, offset/freq  | `iindc`, `freq` | `THD(V(out))`       |
//! | 4 | `step_max_dev`  | step `base → base+elev`, 10 ns ramp| `base`, `elev`  | `Max(ΔV(out))`      |
//! | 5 | `step_acc_dev`  | same step                          | `base`, `elev`  | `Σ ΔV(out)·Δt`      |
//!
//! Configurations #4/#5 sample `V(out)` at 100 MHz for 7.5 µs exactly as
//! §3.4 prescribes. Two configurations have one parameter, three have
//! two — matching the paper. The scanned Table 1 is partially garbled;
//! the reconstruction choices are documented in `DESIGN.md` §6.

use std::sync::{Arc, OnceLock};

use castg_core::{
    check_params, ConfigDescription, CoreError, Measurement, ParamSpec, PortAction,
    TestConfiguration,
};
use castg_dsp::{metrics, thd, UniformSamples};
use castg_numeric::{Bounds, ParamSpace};
use castg_spice::{
    AnalysisOptions, Circuit, DcAnalysis, IntegrationMethod, Probe, TranAnalysis, Waveform,
};

use crate::boxes::{calibrate_box, BoxGrid, BoxPolicy};
use crate::iv_converter::IvConverterParams;
use crate::{Equipment, ProcessVariation};

/// Sine amplitude of the THD configuration (the paper's 5 µA).
pub const THD_AMPLITUDE: f64 = 5e-6;
/// THD measurement: harmonics 2..=5 are accumulated.
pub const THD_HARMONICS: usize = 5;
/// THD reported when the output has no measurable fundamental (a stuck
/// or dead output is maximally distorted).
pub const THD_STUCK: f64 = 999.0;
/// Step-response sample rate (100 MHz, §3.4).
pub const STEP_SAMPLE_RATE: f64 = 100e6;
/// Step-response record length (7.5 µs, §3.4).
pub const STEP_TEST_TIME: f64 = 7.5e-6;
/// Step stimulus ramp time (Table 1: base → base+elev over 10 ns).
pub const STEP_RISE: f64 = 10e-9;
/// Step stimulus start time.
pub const STEP_T0: f64 = 0.5e-6;

const THD_POINTS_PER_PERIOD: usize = 128;
const THD_SETTLE_PERIODS: usize = 2;
const THD_MEASURE_PERIODS: usize = 4;

/// The five IV-converter configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IvConfigKind {
    /// #1 — DC transfer: `ΔV(out)` under a DC input current.
    DcTransfer,
    /// #2 — supply current: `ΔI(VDD)` under a DC input current
    /// (Eckersall-style supply-current monitoring).
    SupplyCurrent,
    /// #3 — THD of `V(out)` under a DC-offset sine input current.
    Thd,
    /// #4 — maximum deviation of the sampled step response.
    StepMaxDev,
    /// #5 — accumulated (integrated) deviation of the sampled step
    /// response.
    StepAccDev,
}

impl IvConfigKind {
    /// All five kinds in paper order.
    pub fn all() -> [IvConfigKind; 5] {
        [
            IvConfigKind::DcTransfer,
            IvConfigKind::SupplyCurrent,
            IvConfigKind::Thd,
            IvConfigKind::StepMaxDev,
            IvConfigKind::StepAccDev,
        ]
    }

    fn index(&self) -> usize {
        match self {
            IvConfigKind::DcTransfer => 0,
            IvConfigKind::SupplyCurrent => 1,
            IvConfigKind::Thd => 2,
            IvConfigKind::StepMaxDev => 3,
            IvConfigKind::StepAccDev => 4,
        }
    }
}

/// State shared by the five configuration objects of one macro instance.
pub(crate) struct IvShared {
    nominal: Circuit,
    #[allow(dead_code)]
    params: IvConverterParams,
    rf: f64,
    process: ProcessVariation,
    equipment: Equipment,
    policy: BoxPolicy,
    box_grids: [OnceLock<BoxGrid>; 5],
}

impl IvShared {
    pub(crate) fn new(
        nominal: Circuit,
        params: IvConverterParams,
        process: ProcessVariation,
        equipment: Equipment,
        policy: BoxPolicy,
    ) -> Self {
        IvShared {
            rf: params.rf,
            nominal,
            params,
            process,
            equipment,
            policy,
            box_grids: Default::default(),
        }
    }
}

/// Builds the five configurations sharing one [`IvShared`].
pub(crate) fn make_iv_configs(shared: Arc<IvShared>) -> Vec<Arc<dyn TestConfiguration>> {
    IvConfigKind::all()
        .into_iter()
        .map(|kind| {
            Arc::new(IvConfig { kind, shared: Arc::clone(&shared) }) as Arc<dyn TestConfiguration>
        })
        .collect()
}

/// One of the five IV-converter test configurations.
pub(crate) struct IvConfig {
    kind: IvConfigKind,
    shared: Arc<IvShared>,
}

impl IvConfig {
    fn out_node(&self, c: &Circuit) -> Result<castg_spice::NodeId, CoreError> {
        c.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "circuit has no `out` node".to_string(),
        })
    }

    /// Loosened tolerances for the long transient runs: the measurement
    /// layer (THD ratio / deviation maxima) dominates the error budget.
    fn tran_options() -> AnalysisOptions {
        AnalysisOptions { reltol: 1e-4, ..AnalysisOptions::default() }
    }

    /// Equipment floor appropriate to this configuration's return value.
    fn equipment_floor(&self) -> f64 {
        let e = &self.shared.equipment;
        match self.kind {
            IvConfigKind::DcTransfer | IvConfigKind::StepMaxDev => e.voltage_floor,
            IvConfigKind::SupplyCurrent => e.current_floor,
            IvConfigKind::Thd => e.thd_floor,
            IvConfigKind::StepAccDev => e.voltage_floor * STEP_TEST_TIME,
        }
    }

    /// Expected response magnitude at `params`, used by the analytic box
    /// policy (an engineer's estimate; the calibrated policy measures
    /// the real spread instead).
    ///
    /// Every voltage-type estimate includes a constant ~0.5 V term: a
    /// fault-free but process-shifted device shows an output *offset*
    /// spread (tens of millivolts after the 5 % policy factor) even with
    /// zero stimulus, so the box must never collapse to the bare
    /// equipment floor at the origin of the parameter space — otherwise
    /// a degenerate zero-amplitude "step" would look like a perfect
    /// test.
    fn expected_magnitude(&self, params: &[f64]) -> f64 {
        let rf = self.shared.rf;
        const OFFSET_SPREAD_EQ: f64 = 0.5; // volts, before the policy factor
        match self.kind {
            IvConfigKind::DcTransfer => params[0].abs() * rf + OFFSET_SPREAD_EQ,
            // The ±8 % lot spread of the class-A quiescent (~130 µA)
            // dominates any signal steering; size the estimate so a 3σ
            // fault-free sample stays inside the analytic box.
            IvConfigKind::SupplyCurrent => 400e-6 + 2.0 * params[0].abs(),
            // Percent-scale; good-device distortion spread grows toward
            // the clipping corner at Iin_dc → 40 µA.
            IvConfigKind::Thd => 2.0 + 2.0 * (params[0] / 40e-6).abs(),
            IvConfigKind::StepMaxDev => {
                (params[0].abs() + params[1].abs()) * rf + OFFSET_SPREAD_EQ
            }
            IvConfigKind::StepAccDev => {
                // The signal contribution integrates over roughly the
                // post-step window (T/4 equivalent), but a good-device
                // *offset* integrates over the whole record — weigh it
                // with the full test time (×3 headroom) so a zero-
                // elevation "step" cannot masquerade as a perfect test.
                (params[0].abs() + params[1].abs()) * rf * (STEP_TEST_TIME / 4.0)
                    + 3.0 * OFFSET_SPREAD_EQ * STEP_TEST_TIME
            }
        }
    }
}

impl TestConfiguration for IvConfig {
    fn id(&self) -> usize {
        self.kind.index() + 1
    }

    fn name(&self) -> &str {
        match self.kind {
            IvConfigKind::DcTransfer => "dc_transfer",
            IvConfigKind::SupplyCurrent => "supply_current",
            IvConfigKind::Thd => "thd",
            IvConfigKind::StepMaxDev => "step_max_dev",
            IvConfigKind::StepAccDev => "step_acc_dev",
        }
    }

    fn param_names(&self) -> Vec<String> {
        match self.kind {
            IvConfigKind::DcTransfer | IvConfigKind::SupplyCurrent => vec!["lev".into()],
            IvConfigKind::Thd => vec!["iindc".into(), "freq".into()],
            IvConfigKind::StepMaxDev | IvConfigKind::StepAccDev => {
                vec!["base".into(), "elev".into()]
            }
        }
    }

    fn space(&self) -> ParamSpace {
        let b = |lo, hi| Bounds::new(lo, hi).expect("static bounds");
        match self.kind {
            IvConfigKind::DcTransfer | IvConfigKind::SupplyCurrent => {
                ParamSpace::new(vec![b(-40e-6, 40e-6)])
            }
            // The paper's Figs. 2–4 axes: Iin_dc ∈ [0, 40 µA]; the
            // frequency axis is bounded by the equipment (1–100 kHz).
            IvConfigKind::Thd => ParamSpace::new(vec![b(0.0, 40e-6), b(1e3, 100e3)]),
            IvConfigKind::StepMaxDev | IvConfigKind::StepAccDev => {
                ParamSpace::new(vec![b(-20e-6, 20e-6), b(-40e-6, 40e-6)])
            }
        }
    }

    fn seed(&self) -> Vec<f64> {
        match self.kind {
            IvConfigKind::DcTransfer => vec![20e-6],
            IvConfigKind::SupplyCurrent => vec![-20e-6],
            IvConfigKind::Thd => vec![20e-6, 10e3],
            IvConfigKind::StepMaxDev => vec![0.0, 20e-6],
            IvConfigKind::StepAccDev => vec![0.0, -20e-6],
        }
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        match self.kind {
            IvConfigKind::DcTransfer => {
                let sol = DcAnalysis::new(circuit)
                    .override_stimulus("IIN", Waveform::dc(params[0]))
                    .solve()?;
                let out = self.out_node(circuit)?;
                Ok(Measurement::scalar(sol.voltage(out)))
            }
            IvConfigKind::SupplyCurrent => {
                let sol = DcAnalysis::new(circuit)
                    .override_stimulus("IIN", Waveform::dc(params[0]))
                    .solve()?;
                let idd = sol.source_current("VDD").ok_or_else(|| CoreError::Configuration {
                    config: self.name().to_string(),
                    reason: "circuit has no `VDD` source".to_string(),
                })?;
                Ok(Measurement::scalar(idd))
            }
            IvConfigKind::Thd => {
                let (iindc, freq) = (params[0], params[1]);
                let out = self.out_node(circuit)?;
                let period = 1.0 / freq;
                let dt = period / THD_POINTS_PER_PERIOD as f64;
                let periods = THD_SETTLE_PERIODS + THD_MEASURE_PERIODS;
                // Backward Euler: L-stable across the macro's wide
                // spread of time constants at low stimulus frequencies.
                let trace = TranAnalysis::with_options(
                    circuit,
                    Self::tran_options(),
                    IntegrationMethod::BackwardEuler,
                )
                .override_stimulus("IIN", Waveform::sine(iindc, THD_AMPLITUDE, freq))
                .run(periods as f64 * period, dt, &[Probe::NodeVoltage(out)])?;
                let skip = THD_SETTLE_PERIODS * THD_POINTS_PER_PERIOD;
                let count = THD_MEASURE_PERIODS * THD_POINTS_PER_PERIOD;
                let column = trace.column(0);
                let vals = column[skip..(skip + count).min(column.len())].to_vec();
                let samples = UniformSamples::new(0.0, dt, vals);
                let d = thd(&samples, freq, THD_HARMONICS).unwrap_or(THD_STUCK);
                Ok(Measurement::scalar(d))
            }
            IvConfigKind::StepMaxDev | IvConfigKind::StepAccDev => {
                let (base, elev) = (params[0], params[1]);
                let out = self.out_node(circuit)?;
                let dt = 1.0 / STEP_SAMPLE_RATE;
                let trace = TranAnalysis::with_options(
                    circuit,
                    Self::tran_options(),
                    IntegrationMethod::Trapezoidal,
                )
                .override_stimulus("IIN", Waveform::step(base, elev, STEP_T0, STEP_RISE))
                .run(STEP_TEST_TIME, dt, &[Probe::NodeVoltage(out)])?;
                Ok(Measurement::Waveform(UniformSamples::new(0.0, dt, trace.column(0).to_vec())))
            }
        }
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match self.kind {
            // Δ-type scalar returns (Table 1's Δy).
            IvConfigKind::DcTransfer | IvConfigKind::SupplyCurrent => {
                match (measured.as_scalars(), nominal.as_scalars()) {
                    (Some(m), Some(n)) => vec![m[0] - n[0]],
                    _ => vec![f64::NAN],
                }
            }
            // Absolute THD value.
            IvConfigKind::Thd => match measured.as_scalars() {
                Some(m) => vec![m[0]],
                None => vec![f64::NAN],
            },
            IvConfigKind::StepMaxDev => match (measured.as_waveform(), nominal.as_waveform()) {
                (Some(m), Some(n)) => vec![metrics::max_abs_deviation(m, n)],
                _ => vec![f64::NAN],
            },
            IvConfigKind::StepAccDev => match (measured.as_waveform(), nominal.as_waveform()) {
                (Some(m), Some(n)) => vec![metrics::accumulated_deviation(m, n)],
                _ => vec![f64::NAN],
            },
        }
    }

    fn tolerance_box(&self, params: &[f64], nominal_returns: &[f64]) -> Vec<f64> {
        let r_nom = nominal_returns.first().copied().unwrap_or(0.0);
        // Relative spread on the nominal reading itself. Distortion is a
        // ratio of small harmonics and spreads by tens of percent across
        // a fault-free process lot — especially near the clipping corner
        // where the nominal THD is large — so the THD box must track the
        // nominal value much more aggressively than a DC meter reading.
        let rel_on_nominal = match self.kind {
            IvConfigKind::Thd => 0.25,
            _ => self.shared.equipment.relative,
        };
        let value = match self.shared.policy {
            BoxPolicy::Analytic { rel, abs } => {
                rel * self.expected_magnitude(params)
                    + abs
                    + self.equipment_floor()
                    + rel_on_nominal * r_nom.abs()
            }
            BoxPolicy::Calibrated { grid_points, mc_samples, seed, margin } => {
                let grid = self.shared.box_grids[self.kind.index()].get_or_init(|| {
                    calibrate_box(
                        self,
                        &self.shared.nominal,
                        &self.shared.process,
                        grid_points,
                        mc_samples,
                        seed,
                        margin,
                        self.equipment_floor(),
                    )
                    .unwrap_or_else(|_| {
                        // Calibration failure: fall back to a generous
                        // analytic box so generation can proceed.
                        BoxGrid::new(
                            vec![vec![0.0]; params.len()],
                            vec![0.1 * self.expected_magnitude(params)],
                            self.equipment_floor(),
                        )
                    })
                });
                grid.query(params) + rel_on_nominal * r_nom.abs()
            }
        };
        vec![value]
    }

    fn description(&self) -> ConfigDescription {
        let space = self.space();
        let parameters: Vec<ParamSpec> = self
            .param_names()
            .into_iter()
            .enumerate()
            .map(|(i, name)| ParamSpec {
                name,
                lo: space.bounds(i).lo(),
                hi: space.bounds(i).hi(),
            })
            .collect();
        let seed = self
            .param_names()
            .into_iter()
            .zip(self.seed())
            .collect::<Vec<(String, f64)>>();
        let (title, control, observe, ret, variables) = match self.kind {
            IvConfigKind::DcTransfer => (
                "DC transfer",
                "dc(lev)",
                "dc()",
                "dV(Vout)",
                vec![],
            ),
            IvConfigKind::SupplyCurrent => (
                "Supply current",
                "dc(lev)",
                "idd()",
                "dI(VDD)",
                vec![],
            ),
            IvConfigKind::Thd => (
                "Harmonic distortion",
                "sine(iindc, amp, freq)",
                "sample(rate=sa, time=t)",
                "THD(V(Vout))",
                vec![("amp".to_string(), THD_AMPLITUDE)],
            ),
            IvConfigKind::StepMaxDev => (
                "Step response 1",
                "step(base, elev, slew_rate=sl)",
                "sample(rate=sa, time=t)",
                "Max(dV(Vout))",
                vec![
                    ("sl".to_string(), STEP_RISE),
                    ("sa".to_string(), STEP_SAMPLE_RATE),
                    ("t".to_string(), STEP_TEST_TIME),
                ],
            ),
            IvConfigKind::StepAccDev => (
                "Step response 2",
                "step(base, elev, slew_rate=sl)",
                "sample(rate=sa, time=t)",
                "acc(dV(Vout))",
                vec![
                    ("sl".to_string(), STEP_RISE),
                    ("sa".to_string(), STEP_SAMPLE_RATE),
                    ("t".to_string(), STEP_TEST_TIME),
                ],
            ),
        };
        ConfigDescription {
            macro_type: "IV-converter".into(),
            title: title.into(),
            controls: vec![PortAction { node: "Iin".into(), action: control.into() }],
            observes: vec![PortAction { node: "Vout".into(), action: observe.into() }],
            return_value: ret.into(),
            parameters,
            variables,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IvConverter;
    use castg_core::AnalogMacro;

    fn fast_macro() -> IvConverter {
        IvConverter::with_analytic_boxes()
    }

    #[test]
    fn five_configs_with_paper_arities() {
        let mac = fast_macro();
        let configs = mac.configurations();
        assert_eq!(configs.len(), 5);
        let arities: Vec<usize> = configs.iter().map(|c| c.space().dim()).collect();
        // Two one-parameter, three two-parameter configurations (§3.4).
        assert_eq!(arities.iter().filter(|&&a| a == 1).count(), 2);
        assert_eq!(arities.iter().filter(|&&a| a == 2).count(), 3);
        // Ids are #1..#5 and names unique.
        let ids: Vec<usize> = configs.iter().map(|c| c.id()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn seeds_are_inside_bounds() {
        for c in fast_macro().configurations() {
            assert!(c.space().contains(&c.seed()), "seed of {} out of bounds", c.name());
        }
    }

    #[test]
    fn dc_transfer_tracks_rf() {
        let mac = fast_macro();
        let circuit = mac.nominal_circuit();
        let configs = mac.configurations();
        let c1 = &configs[0];
        let m0 = c1.measure(&circuit, &[0.0]).unwrap();
        let m1 = c1.measure(&circuit, &[10e-6]).unwrap();
        let v0 = m0.as_scalars().unwrap()[0];
        let v1 = m1.as_scalars().unwrap()[0];
        assert!(((v1 - v0) / 10e-6 - 39e3).abs() < 2e3, "gain {}", (v1 - v0) / 10e-6);
    }

    #[test]
    fn supply_current_measures_vdd_branch() {
        let mac = fast_macro();
        let circuit = mac.nominal_circuit();
        let configs = mac.configurations();
        let m = configs[1].measure(&circuit, &[0.0]).unwrap();
        let idd = m.as_scalars().unwrap()[0];
        assert!(idd < -50e-6 && idd > -400e-6, "idd {idd}");
    }

    #[test]
    fn thd_is_small_mid_range_and_larger_near_clipping() {
        let mac = fast_macro();
        let circuit = mac.nominal_circuit();
        let configs = mac.configurations();
        let thd_cfg = &configs[2];
        let mid = thd_cfg.measure(&circuit, &[10e-6, 10e3]).unwrap().as_scalars().unwrap()[0];
        let edge = thd_cfg.measure(&circuit, &[40e-6, 10e3]).unwrap().as_scalars().unwrap()[0];
        assert!((0.0..10.0).contains(&mid), "mid-range THD {mid}");
        assert!(edge > mid, "clipping must raise THD: {edge} !> {mid}");
    }

    #[test]
    fn step_config_samples_at_100mhz_for_7us5() {
        let mac = fast_macro();
        let circuit = mac.nominal_circuit();
        let configs = mac.configurations();
        let m = configs[3].measure(&circuit, &[0.0, 20e-6]).unwrap();
        let w = m.as_waveform().unwrap();
        assert_eq!(w.dt(), 1.0 / STEP_SAMPLE_RATE);
        assert_eq!(w.len(), 751); // t = 0 plus 750 samples
        // Step of 20 µA over 39 kΩ ≈ 0.78 V swing.
        let swing = w.values().last().unwrap() - w.values()[0];
        assert!((swing - 0.78).abs() < 0.08, "swing {swing}");
    }

    #[test]
    fn step_acc_dev_is_zero_for_nominal_vs_nominal() {
        let mac = fast_macro();
        let circuit = mac.nominal_circuit();
        let configs = mac.configurations();
        let m = configs[4].measure(&circuit, &[0.0, 10e-6]).unwrap();
        let r = configs[4].return_values(&m, &m);
        assert_eq!(r, vec![0.0]);
    }

    #[test]
    fn boxes_are_positive_everywhere() {
        let mac = fast_macro();
        for c in mac.configurations() {
            let space = c.space();
            let probe_points: Vec<Vec<f64>> =
                vec![space.center(), space.clamp(&c.seed())];
            for p in probe_points {
                let b = c.tolerance_box(&p, &[0.0]);
                assert!(b[0] > 0.0, "box of {} at {:?} is {}", c.name(), p, b[0]);
            }
        }
    }

    #[test]
    fn descriptions_have_table1_structure() {
        let mac = fast_macro();
        for c in mac.configurations() {
            let d = c.description();
            assert_eq!(d.macro_type, "IV-converter");
            assert_eq!(d.controls.len(), 1);
            assert_eq!(d.controls[0].node, "Iin");
            assert_eq!(d.observes[0].node, "Vout");
            assert_eq!(d.parameters.len(), c.space().dim());
            // Round-trip through the Fig.-1 text format.
            let parsed = ConfigDescription::parse(&d.to_string()).unwrap();
            assert_eq!(parsed, d);
        }
    }

    #[test]
    fn calibrated_box_policy_measures_real_spread() {
        use crate::BoxPolicy;
        // Small calibration (3 grid points × 3 Monte-Carlo samples) on
        // the two DC-based configurations: the calibrated box must
        // exceed the bare equipment floor (process spread is real) and
        // stay finite.
        let mac = crate::IvConverter::new().with_box_policy(BoxPolicy::Calibrated {
            grid_points: 3,
            mc_samples: 3,
            seed: 11,
            margin: 1.2,
        });
        for c in mac.configurations().iter().filter(|c| c.id() <= 2) {
            let b = c.tolerance_box(&c.seed(), &[0.0])[0];
            let floor = if c.id() == 1 { 1e-3 } else { 50e-9 };
            assert!(b > floor, "config {} calibrated box {b} not above floor", c.name());
            assert!(b.is_finite() && b < 1.0, "config {} box {b} implausible", c.name());
        }
    }

    #[test]
    fn strong_bridge_detected_by_dc_transfer() {
        let mac = fast_macro();
        let circuit = mac.nominal_circuit();
        let configs = mac.configurations();
        let cache = castg_core::NominalCache::new();
        let ev = castg_core::Evaluator::new(configs[0].as_ref(), &circuit, &cache);
        // Bridge the output to the input node: destroys the closed loop.
        let fault = castg_faults::Fault::bridge("out", "inn", 10e3);
        let rep = ev.evaluate(&fault, &[20e-6]).unwrap();
        assert!(rep.sensitivity < 0.0, "S = {}", rep.sensitivity);
    }
}
