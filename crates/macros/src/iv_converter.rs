//! The CMOS IV-converter macro — the device under test of the paper's
//! evaluation (§3.4).
//!
//! The original design is a photodetector transimpedance amplifier from
//! MESA [9] and is not public; this is a representative substitute with
//! the same structural signature: a two-stage Miller-compensated CMOS
//! op-amp with a resistive feedback network converting an input current
//! into an output voltage, with exactly **10 fault-site nodes** (so the
//! exhaustive bridge list has C(10,2) = 45 members) and **10
//! transistors** (10 pinhole faults) — the paper's 55-fault dictionary.
//!
//! Topology (single 5 V supply):
//!
//! * `M1/M2` — PMOS input pair (gates: `vref` / `inn`), `M5` PMOS tail
//!   source from `vdd`, `M3/M4` NMOS current-mirror load (`nmir`, `na`).
//! * `M6` — NMOS common-source output device, `M7` PMOS current-source
//!   load (`out`).
//! * `M8` (PMOS diode) / `M9` / `M10` (NMOS mirror) — bias chain fed by
//!   `IBIAS`, producing `biasp` / `biasn`.
//! * `Rz`+`Cc` — Miller compensation through `nz`; `RF`∥`CF` — the
//!   transimpedance feedback from `out` to `inn`.
//! * `R1/R2` + `Cref` — the `vref` mid-supply divider.
//! * `IIN` — the photodiode stimulus: a current source pulling `Iin`
//!   out of `inn`, so `V(out) = V(vref) + Iin · RF`.
//!
//! The linear output range is bounded by the class-A output stage: `M7`
//! can source ≈ 40 µA, so the macro clips for `Iin` approaching +40 µA —
//! which is exactly why the paper's THD configuration sweeps
//! `Iin_dc ∈ [0, 40 µA]`.

use castg_core::{AnalogMacro, TestConfiguration};
use castg_faults::{
    exhaustive_bridge_faults, exhaustive_pinhole_faults, FaultDictionary,
};
use castg_spice::{Circuit, MosParams, MosPolarity, Waveform};
use std::sync::Arc;

use crate::iv_configs::{make_iv_configs, IvShared};
use crate::{BoxPolicy, Equipment, ProcessVariation};

/// Electrical parameters of the IV-converter design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvConverterParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Feedback (transimpedance) resistance (Ω).
    pub rf: f64,
    /// Feedback capacitance (F).
    pub cf: f64,
    /// Bias reference current (A).
    pub ibias: f64,
    /// Miller compensation capacitance (F).
    pub cc: f64,
    /// Compensation zero-nulling resistance (Ω).
    pub rz: f64,
}

impl Default for IvConverterParams {
    fn default() -> Self {
        IvConverterParams {
            vdd: 5.0,
            rf: 39e3,
            cf: 1.5e-12,
            ibias: 20e-6,
            cc: 4e-12,
            rz: 2e3,
        }
    }
}

/// The IV-converter macro (see the module docs for the topology).
#[derive(Debug, Clone)]
pub struct IvConverter {
    params: IvConverterParams,
    process: ProcessVariation,
    equipment: Equipment,
    box_policy: BoxPolicy,
}

impl IvConverter {
    /// Dictionary impact of bridge faults (10 kΩ, §3.4).
    pub const BRIDGE_R0: f64 = 10e3;
    /// Dictionary impact of pinhole faults (2 kΩ, §3.4).
    pub const PINHOLE_R0: f64 = 2e3;

    /// Creates the macro with default parameters and Monte-Carlo
    /// calibrated box-functions.
    pub fn new() -> Self {
        IvConverter {
            params: IvConverterParams::default(),
            process: ProcessVariation::default(),
            equipment: Equipment::default(),
            box_policy: BoxPolicy::calibrated_default(),
        }
    }

    /// Creates the macro with analytic (uncalibrated) box-functions —
    /// much faster to start up; used by unit tests and quick demos.
    pub fn with_analytic_boxes() -> Self {
        IvConverter { box_policy: BoxPolicy::Analytic { rel: 0.05, abs: 0.0 }, ..Self::new() }
    }

    /// Overrides the electrical design parameters.
    pub fn with_params(mut self, params: IvConverterParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the process-variation model used for box calibration.
    pub fn with_process(mut self, process: ProcessVariation) -> Self {
        self.process = process;
        self
    }

    /// Overrides the equipment-accuracy model.
    pub fn with_equipment(mut self, equipment: Equipment) -> Self {
        self.equipment = equipment;
        self
    }

    /// Overrides the box policy.
    pub fn with_box_policy(mut self, policy: BoxPolicy) -> Self {
        self.box_policy = policy;
        self
    }

    /// The design parameters.
    pub fn params(&self) -> &IvConverterParams {
        &self.params
    }

    /// Builds the netlist.
    pub fn build_circuit(&self) -> Circuit {
        let p = &self.params;
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vref = c.node("vref");
        let inn = c.node("inn");
        let tail = c.node("tail");
        let nmir = c.node("nmir");
        let na = c.node("na");
        let nz = c.node("nz");
        let out = c.node("out");
        let biasp = c.node("biasp");
        let biasn = c.node("biasn");
        let gnd = Circuit::GROUND;

        // Supply and stimulus.
        c.add_vsource("VDD", vdd, gnd, Waveform::dc(p.vdd)).expect("fresh netlist");
        c.add_isource("IIN", inn, gnd, Waveform::dc(0.0)).expect("fresh netlist");

        // Reference divider.
        c.add_resistor("R1", vdd, vref, 200e3).expect("fresh netlist");
        c.add_resistor("R2", vref, gnd, 200e3).expect("fresh netlist");
        c.add_capacitor("CREF", vref, gnd, 5e-12).expect("fresh netlist");

        // Bias chain: IBIAS into the NMOS diode M10; M9 mirrors it into
        // the PMOS diode M8, generating biasp.
        c.add_isource("IBIAS", vdd, biasn, Waveform::dc(p.ibias)).expect("fresh netlist");
        c.add_mosfet(
            "M10",
            biasn,
            biasn,
            gnd,
            gnd,
            MosPolarity::Nmos,
            MosParams::nmos_default(20e-6, 2e-6),
        )
        .expect("fresh netlist");
        c.add_mosfet(
            "M9",
            biasp,
            biasn,
            gnd,
            gnd,
            MosPolarity::Nmos,
            MosParams::nmos_default(20e-6, 2e-6),
        )
        .expect("fresh netlist");
        c.add_mosfet(
            "M8",
            biasp,
            biasp,
            vdd,
            vdd,
            MosPolarity::Pmos,
            MosParams::pmos_default(40e-6, 2e-6),
        )
        .expect("fresh netlist");

        // First stage: PMOS pair with NMOS mirror load.
        c.add_mosfet(
            "M5",
            tail,
            biasp,
            vdd,
            vdd,
            MosPolarity::Pmos,
            MosParams::pmos_default(40e-6, 2e-6),
        )
        .expect("fresh netlist");
        // The mirror-diode branch (M1 → M3) is the *inverting* input:
        // raising M1's gate reduces the mirrored pull-down on `na`,
        // raising `na`... — worked through the two stages, the output
        // falls. Feedback RF therefore closes from `out` to M1's gate.
        c.add_mosfet(
            "M1",
            nmir,
            inn,
            tail,
            vdd,
            MosPolarity::Pmos,
            MosParams::pmos_default(60e-6, 2e-6),
        )
        .expect("fresh netlist");
        c.add_mosfet(
            "M2",
            na,
            vref,
            tail,
            vdd,
            MosPolarity::Pmos,
            MosParams::pmos_default(60e-6, 2e-6),
        )
        .expect("fresh netlist");
        c.add_mosfet(
            "M3",
            nmir,
            nmir,
            gnd,
            gnd,
            MosPolarity::Nmos,
            MosParams::nmos_default(20e-6, 2e-6),
        )
        .expect("fresh netlist");
        c.add_mosfet(
            "M4",
            na,
            nmir,
            gnd,
            gnd,
            MosPolarity::Nmos,
            MosParams::nmos_default(20e-6, 2e-6),
        )
        .expect("fresh netlist");

        // Output stage.
        c.add_mosfet(
            "M6",
            out,
            na,
            gnd,
            gnd,
            MosPolarity::Nmos,
            MosParams::nmos_default(80e-6, 1e-6),
        )
        .expect("fresh netlist");
        c.add_mosfet(
            "M7",
            out,
            biasp,
            vdd,
            vdd,
            MosPolarity::Pmos,
            MosParams::pmos_default(80e-6, 2e-6),
        )
        .expect("fresh netlist");

        // Compensation and feedback.
        c.add_resistor("RZ", na, nz, p.rz).expect("fresh netlist");
        c.add_capacitor("CC", nz, out, p.cc).expect("fresh netlist");
        c.add_resistor("RF", out, inn, p.rf).expect("fresh netlist");
        c.add_capacitor("CF", out, inn, p.cf).expect("fresh netlist");
        c
    }

    pub(crate) fn shared(&self) -> Arc<IvShared> {
        Arc::new(IvShared::new(
            self.build_circuit(),
            self.params,
            self.process,
            self.equipment,
            self.box_policy,
        ))
    }
}

impl Default for IvConverter {
    fn default() -> Self {
        IvConverter::new()
    }
}

impl AnalogMacro for IvConverter {
    fn name(&self) -> &str {
        "iv_converter"
    }

    fn macro_type(&self) -> &str {
        "IV-converter"
    }

    fn nominal_circuit(&self) -> Circuit {
        self.build_circuit()
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        ["vdd", "vref", "inn", "tail", "nmir", "na", "nz", "out", "biasp", "biasn"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        let mut dict = FaultDictionary::new(exhaustive_bridge_faults(&refs, Self::BRIDGE_R0));
        let circuit = self.build_circuit();
        dict.extend(exhaustive_pinhole_faults(&circuit.mosfet_names(), Self::PINHOLE_R0));
        dict
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        make_iv_configs(self.shared())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castg_spice::{DcAnalysis, NodeId};

    fn solve(c: &Circuit) -> castg_spice::DcSolution {
        DcAnalysis::new(c).solve().expect("IV-converter operating point must converge")
    }

    fn node(c: &Circuit, name: &str) -> NodeId {
        c.find_node(name).unwrap()
    }

    #[test]
    fn operating_point_is_sane() {
        let iv = IvConverter::new();
        let c = iv.build_circuit();
        let sol = solve(&c);
        let v = |n: &str| sol.voltage(node(c_ref(&c), n));
        fn c_ref(c: &Circuit) -> &Circuit {
            c
        }
        assert!((v("vref") - 2.5).abs() < 0.05, "vref = {}", v("vref"));
        // Virtual ground: inn tracks vref through feedback.
        assert!((v("inn") - v("vref")).abs() < 0.05, "inn = {}, vref = {}", v("inn"), v("vref"));
        // Output sits at vref with zero input current.
        assert!((v("out") - v("vref")).abs() < 0.1, "out = {}", v("out"));
        // Bias nodes in plausible ranges.
        assert!(v("biasn") > 0.7 && v("biasn") < 1.5, "biasn = {}", v("biasn"));
        assert!(v("biasp") > 3.0 && v("biasp") < 4.5, "biasp = {}", v("biasp"));
        assert!(v("tail") > v("vref"), "tail = {}", v("tail"));
    }

    #[test]
    fn transimpedance_gain_matches_rf() {
        let iv = IvConverter::new();
        let mut c = iv.build_circuit();
        let out = node(&c, "out");
        let v0 = solve(&c).voltage(out);
        c.set_stimulus("IIN", Waveform::dc(10e-6)).unwrap();
        let v1 = solve(&c).voltage(out);
        let gain = (v1 - v0) / 10e-6;
        assert!(
            (gain - iv.params().rf).abs() / iv.params().rf < 0.03,
            "transimpedance {gain} vs RF {}",
            iv.params().rf
        );
    }

    #[test]
    fn negative_input_current_swings_down() {
        let iv = IvConverter::new();
        let mut c = iv.build_circuit();
        c.set_stimulus("IIN", Waveform::dc(-30e-6)).unwrap();
        let sol = solve(&c);
        let vout = sol.voltage(node(&c, "out"));
        assert!((vout - (2.5 - 30e-6 * 39e3)).abs() < 0.15, "vout = {vout}");
    }

    #[test]
    fn output_clips_when_source_limited() {
        // Beyond M7's drive the feedback loop loses control: the output
        // should fall visibly short of the ideal vref + Iin·RF.
        let iv = IvConverter::new();
        let mut c = iv.build_circuit();
        c.set_stimulus("IIN", Waveform::dc(60e-6)).unwrap();
        let sol = solve(&c);
        let vout = sol.voltage(node(&c, "out"));
        let ideal = 2.5 + 60e-6 * 39e3; // 4.84 V
        assert!(vout < ideal - 0.2, "vout = {vout}, ideal = {ideal}");
    }

    #[test]
    fn fault_universe_matches_paper() {
        let iv = IvConverter::new();
        let dict = iv.fault_dictionary();
        assert_eq!(dict.len(), 55, "the paper's fault list has 55 members");
        assert_eq!(dict.count(castg_faults::FaultKind::Bridge), 45);
        assert_eq!(dict.count(castg_faults::FaultKind::Pinhole), 10);
        // Every fault injects into the nominal circuit.
        let c = iv.build_circuit();
        for f in dict.iter() {
            f.inject(&c).unwrap();
        }
    }

    #[test]
    fn all_faulty_circuits_have_dc_operating_points() {
        // The generation loop relies on faulted circuits being solvable
        // (or detectably non-convergent). Check the whole dictionary at
        // dictionary impact solves or fails gracefully.
        let iv = IvConverter::new();
        let c = iv.build_circuit();
        let mut solved = 0usize;
        for f in iv.fault_dictionary().iter() {
            let fc = f.inject(&c).unwrap();
            if DcAnalysis::new(&fc).solve().is_ok() {
                solved += 1;
            }
        }
        // At these impact levels every bridge/pinhole circuit should
        // still converge (they are resistive perturbations).
        assert!(solved >= 50, "only {solved}/55 faulty circuits solved");
    }

    #[test]
    fn supply_current_is_class_a_quiescent() {
        let iv = IvConverter::new();
        let c = iv.build_circuit();
        let sol = solve(&c);
        let idd = sol.source_current("VDD").unwrap();
        // Tail (20 µA) + output (40 µA) + bias (2×20 µA) + divider
        // (12.5 µA) ≈ 110–140 µA flowing out of VDD (negative in SPICE
        // convention).
        assert!(idd < -60e-6 && idd > -300e-6, "idd = {idd}");
    }
}
