//! Test-equipment accuracy model.
//!
//! §2.2: "In this paper we also include the accuracy specifications of
//! test equipment, as it would be useful to construct an envelope which
//! boxes in an area where fault-detection can not be guaranteed." These
//! floors are added to the Monte-Carlo process spread when the
//! box-functions are calibrated.

/// Measurement-accuracy floors of the (virtual) test equipment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Equipment {
    /// Absolute voltage accuracy (V).
    pub voltage_floor: f64,
    /// Absolute current accuracy (A).
    pub current_floor: f64,
    /// Absolute THD accuracy (percentage points).
    pub thd_floor: f64,
    /// Relative accuracy applied to any reading.
    pub relative: f64,
}

impl Default for Equipment {
    fn default() -> Self {
        // A mid-1990s mixed-signal tester: mV-class DC accuracy, tens of
        // nA current resolution, ~0.05 % THD floor.
        Equipment {
            voltage_floor: 1e-3,
            current_floor: 50e-9,
            thd_floor: 0.05,
            relative: 0.005,
        }
    }
}

impl Equipment {
    /// Accuracy floor for a voltage reading of magnitude `v`.
    pub fn voltage_accuracy(&self, v: f64) -> f64 {
        self.voltage_floor + self.relative * v.abs()
    }

    /// Accuracy floor for a current reading of magnitude `i`.
    pub fn current_accuracy(&self, i: f64) -> f64 {
        self.current_floor + self.relative * i.abs()
    }

    /// Accuracy floor for a THD reading (percent) of magnitude `d`.
    pub fn thd_accuracy(&self, d: f64) -> f64 {
        self.thd_floor + self.relative * d.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floors_are_positive_and_monotone() {
        let e = Equipment::default();
        assert!(e.voltage_accuracy(0.0) > 0.0);
        assert!(e.voltage_accuracy(5.0) > e.voltage_accuracy(0.1));
        assert!(e.current_accuracy(1e-3) > e.current_accuracy(0.0));
        assert!(e.thd_accuracy(10.0) > e.thd_accuracy(0.0));
    }

    #[test]
    fn accuracy_is_symmetric_in_sign() {
        let e = Equipment::default();
        assert_eq!(e.voltage_accuracy(-2.0), e.voltage_accuracy(2.0));
    }
}
