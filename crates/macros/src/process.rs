//! Process-variation model for tolerance-box calibration.
//!
//! The paper's tolerance boxes "box in expectable response values based
//! on known variations on process parameters" (§2.2). This model applies
//! a correlated lot-level shift plus uncorrelated per-device mismatch to
//! every MOSFET, resistor and capacitor of a netlist, producing the
//! fault-free circuit population whose response spread defines the box.

use castg_spice::{Circuit, DeviceKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gaussian-ish (sum of uniforms) sampler in ±3σ, avoiding extreme tails
/// that would blow up the boxes.
fn noise(rng: &mut StdRng, sigma: f64) -> f64 {
    // Irwin–Hall with n = 12 approximates a unit normal well.
    let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    (sum - 6.0).clamp(-3.0, 3.0) * sigma
}

/// Lot-plus-mismatch variation magnitudes (1σ each).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessVariation {
    /// Lot-level threshold-voltage shift (V), common to all devices of a
    /// polarity.
    pub vt0_lot_sigma: f64,
    /// Per-device threshold mismatch (V).
    pub vt0_mismatch_sigma: f64,
    /// Lot-level relative KP variation.
    pub kp_lot_sigma: f64,
    /// Per-device relative KP mismatch.
    pub kp_mismatch_sigma: f64,
    /// Lot-level relative sheet-resistance variation (applies to all
    /// resistors together).
    pub r_lot_sigma: f64,
    /// Per-resistor relative mismatch.
    pub r_mismatch_sigma: f64,
    /// Lot-level relative capacitance variation.
    pub c_lot_sigma: f64,
}

impl Default for ProcessVariation {
    fn default() -> Self {
        ProcessVariation {
            vt0_lot_sigma: 0.030,
            vt0_mismatch_sigma: 0.005,
            kp_lot_sigma: 0.05,
            kp_mismatch_sigma: 0.01,
            r_lot_sigma: 0.08,
            r_mismatch_sigma: 0.01,
            c_lot_sigma: 0.08,
        }
    }
}

impl ProcessVariation {
    /// Produces one process-perturbed copy of `circuit`. Deterministic in
    /// `seed`.
    pub fn sample(&self, circuit: &Circuit, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        // Lot-level (correlated) shifts drawn once per sample.
        let vt_lot_n = noise(&mut rng, self.vt0_lot_sigma);
        let vt_lot_p = noise(&mut rng, self.vt0_lot_sigma);
        let kp_lot_n = noise(&mut rng, self.kp_lot_sigma);
        let kp_lot_p = noise(&mut rng, self.kp_lot_sigma);
        let r_lot = noise(&mut rng, self.r_lot_sigma);
        let c_lot = noise(&mut rng, self.c_lot_sigma);

        let mut out = circuit.clone();
        let names: Vec<String> =
            circuit.devices().iter().map(|d| d.name().to_string()).collect();
        for name in names {
            let Some(dev) = out.device_mut(&name) else { continue };
            match dev.kind_mut() {
                DeviceKind::Mosfet { polarity, params, .. } => {
                    let (vt_lot, kp_lot) = match polarity {
                        castg_spice::MosPolarity::Nmos => (vt_lot_n, kp_lot_n),
                        castg_spice::MosPolarity::Pmos => (vt_lot_p, kp_lot_p),
                    };
                    // NMOS vt0 > 0 shifts up; PMOS vt0 < 0 shifts down in
                    // magnitude with the same lot draw.
                    let shift = vt_lot + noise(&mut rng, self.vt0_mismatch_sigma);
                    params.vt0 += shift * params.vt0.signum();
                    let kp_rel = kp_lot + noise(&mut rng, self.kp_mismatch_sigma);
                    params.kp *= (1.0 + kp_rel).max(0.5);
                }
                DeviceKind::Resistor { ohms, .. } => {
                    let rel = r_lot + noise(&mut rng, self.r_mismatch_sigma);
                    *ohms *= (1.0 + rel).max(0.5);
                }
                DeviceKind::Capacitor { farads, .. } => {
                    *farads *= (1.0 + c_lot).max(0.5);
                }
                _ => {}
            }
        }
        out
    }

    /// Produces `n` perturbed copies with seeds `base_seed..base_seed+n`.
    pub fn samples(&self, circuit: &Circuit, base_seed: u64, n: usize) -> Vec<Circuit> {
        (0..n).map(|i| self.sample(circuit, base_seed + i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castg_spice::{MosParams, MosPolarity, Waveform};

    fn test_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
        c.add_mosfet(
            "M1",
            b,
            a,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_default(10e-6, 2e-6),
        )
        .unwrap();
        c
    }

    fn resistance(c: &Circuit, name: &str) -> f64 {
        match c.device(name).unwrap().kind() {
            DeviceKind::Resistor { ohms, .. } => *ohms,
            _ => panic!("not a resistor"),
        }
    }

    fn vt0(c: &Circuit, name: &str) -> f64 {
        match c.device(name).unwrap().kind() {
            DeviceKind::Mosfet { params, .. } => params.vt0,
            _ => panic!("not a mosfet"),
        }
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let c = test_circuit();
        let p = ProcessVariation::default();
        let a = p.sample(&c, 7);
        let b = p.sample(&c, 7);
        assert_eq!(a, b);
        let d = p.sample(&c, 8);
        assert_ne!(a, d);
    }

    #[test]
    fn perturbations_are_bounded() {
        let c = test_circuit();
        let p = ProcessVariation::default();
        for seed in 0..50 {
            let s = p.sample(&c, seed);
            let r = resistance(&s, "R1");
            assert!((r / 1e3 - 1.0).abs() < 0.35, "resistor drifted too far: {r}");
            let v = vt0(&s, "M1");
            assert!((v - 0.75).abs() < 0.15, "vt0 drifted too far: {v}");
            assert!(v > 0.0, "NMOS threshold must stay positive");
        }
    }

    #[test]
    fn variation_actually_varies() {
        let c = test_circuit();
        let p = ProcessVariation::default();
        let rs: Vec<f64> = (0..20).map(|s| resistance(&p.sample(&c, s), "R1")).collect();
        let spread = rs.iter().cloned().fold(f64::MIN, f64::max)
            - rs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 10.0, "spread {spread} too small for 8 % lot sigma");
    }

    #[test]
    fn zero_sigma_is_identity() {
        let c = test_circuit();
        let p = ProcessVariation {
            vt0_lot_sigma: 0.0,
            vt0_mismatch_sigma: 0.0,
            kp_lot_sigma: 0.0,
            kp_mismatch_sigma: 0.0,
            r_lot_sigma: 0.0,
            r_mismatch_sigma: 0.0,
            c_lot_sigma: 0.0,
        };
        assert_eq!(p.sample(&c, 3), c);
    }

    #[test]
    fn samples_produces_n_distinct_circuits() {
        let c = test_circuit();
        let p = ProcessVariation::default();
        let v = p.samples(&c, 100, 4);
        assert_eq!(v.len(), 4);
        assert_ne!(v[0], v[1]);
    }
}
