//! Compact structural test generation for analog macros.
//!
//! This crate implements the methodology of Kaal & Kerkhoff, *"Compact
//! Structural Test Generation for Analog Macros"* (ED&TC 1997): fault-
//! model driven, automatically *tailored* test generation for analog
//! circuit blocks, followed by compaction of the per-fault optimal tests
//! into a small high-quality test set.
//!
//! # Pipeline
//!
//! 1. Describe the device under test as an [`AnalogMacro`]: a netlist,
//!    fault sites, a fault dictionary, and a set of
//!    [`TestConfiguration`]s (stimulus templates with free parameters,
//!    bounds, seeds and tolerance-box functions).
//! 2. [`Generator::generate`] produces one optimal test per fault
//!    (§3.3, Fig. 6): parameters are optimized against a softened fault
//!    model (Brent/Powell minimizing the sensitivity [`sensitivity`]),
//!    then the best configuration is selected by relaxing/intensifying
//!    the fault impact until exactly one test survives.
//! 3. [`compact`] collapses the per-fault tests into a compact set
//!    (§4.1), screening every collapse with the δ-criterion.
//! 4. [`evaluate_test_set`] / [`compare_with_baseline`] quantify the
//!    resulting quality against the fault dictionary and against the
//!    fixed-seed selection baseline the paper argues against.
//!
//! tps-graphs ([`tps_graph`]) visualize the sensitivity landscape the
//! optimizer works in (the paper's Figs. 2–4), and
//! [`ConfigDescription`] parses/serializes the textual configuration
//! description format of Fig. 1.
//!
//! # Fault-campaign engine
//!
//! Coverage evaluation runs as a structure-sharing campaign
//! ([`evaluate_campaign`], the engine under [`evaluate_test_set`] and
//! [`evaluate_test_set_with_threads`]): the nominal circuit's compiled
//! plan is shared immutably by every worker, each dictionary fault is
//! injected exactly once — by default through the delta path, where
//! bridge variants patch the nominal plan instead of recompiling
//! (see [`InjectionMode`]) — and workers pull `(fault, test)` work
//! items from one queue over a sharded [`NominalCache`]. Reports are
//! bit-identical at any worker count and under either injection mode;
//! `tests/campaign_differential.rs` pins that for the IV-converter and
//! ladder-n=256 dictionaries on both solver paths.
//!
//! # Convergence resilience: campaigns that never die
//!
//! Real dictionaries inject pathological variants — bridges that
//! collapse the faulted matrix, near-shorts that destroy its
//! conditioning — and one such variant must not abort thousands of
//! healthy work items. The campaign engine therefore treats every
//! faulted `(fault, test)` item as fallible in a typed way:
//!
//! * Each work item runs inside `catch_unwind` plus a per-item solve
//!   budget ([`CampaignOptions::max_newton_iters`] / `budget_ms`,
//!   installed through `castg_spice::with_solve_budget`), so panics,
//!   runaway solves and singular factorizations are contained to the
//!   item that caused them.
//! * Every fault's row in the [`CoverageReport`] carries a
//!   [`FaultOutcome`]: `Detected` / `Undetected` for healthy variants,
//!   `Unconverged`, `Singular` (naming the offending MNA unknown),
//!   `TimedOut`, `Panicked`, or `InjectionFailed` for broken ones.
//!   [`CoverageReport::tally`] aggregates the counts into an
//!   [`OutcomeTally`]; its `suspect()` subset (unconverged, timed out,
//!   panicked) is what `castg generate --strict` gates on.
//! * *Nominal* simulation failures remain hard errors — a macro whose
//!   fault-free circuit does not solve is a configuration bug, not a
//!   fault property — and are surfaced by a pre-warm pass before any
//!   worker fans out.
//! * The report's `ladder` field sums the Newton strategy-ladder
//!   statistics (`castg_spice::LadderStats`) over all faulted solves,
//!   so campaign reports show which rescue rungs earned their keep.
//!
//! Iteration-allowance outcomes are bit-identical at any worker count;
//! wall-clock budgets (`budget_ms`) are inherently machine-dependent
//! and left out of determinism guarantees.
//! `tests/campaign_robustness.rs` pins the contract with deliberately
//! singular, deliberately non-converging and degenerate-injection
//! variants, serial and parallel.
//!
//! # Example (synthetic macro; see `castg-macros` for the real one)
//!
//! ```
//! use castg_core::synthetic::DividerMacro;
//! use castg_core::{AnalogMacro, Generator, NominalCache};
//!
//! let mac = DividerMacro::new();
//! let cache = NominalCache::new();
//! let generator = Generator::new(&mac, &cache);
//! let fault = castg_faults::Fault::bridge("out", "0", 10e3);
//! let best = generator.generate_for_fault(&fault)?;
//! assert!(best.detected_at_dictionary);
//! # Ok::<(), castg_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod cache;
mod compact;
mod config;
mod descr;
mod error;
mod evaluate;
mod generate;
mod interp;
mod macro_def;
pub mod report;
mod sensitivity;
pub mod synthetic;
mod tps;

pub use baseline::{compare_with_baseline, seed_test_set, BaselineComparison};
pub use cache::NominalCache;
pub use compact::{compact, CompactTest, CompactionOptions, CompactionReport, ImpactLevel};
pub use config::{check_params, Measurement, TestConfiguration};
pub use descr::{ConfigDescription, ParamSpec, PortAction};
pub use error::CoreError;
pub use evaluate::{
    evaluate_campaign, evaluate_test_set, evaluate_test_set_with_threads,
    test_instances_from_compaction, CampaignOptions, CoverageReport, FaultCoverage, FaultOutcome,
    InjectionMode, OutcomeTally, TestInstance,
};
pub use generate::{
    BestTest, DistributionRow, GenerationReport, Generator, GeneratorOptions, SelectionMethod,
};
pub use interp::DescribedConfig;
pub use macro_def::AnalogMacro;
pub use sensitivity::{
    is_detected, sensitivity, Evaluator, SensitivityReport, SimFailure,
    SENSITIVITY_SIM_FAILURE,
};
pub use tps::{tps_graph, tps_profile, TpsGraph};
