use std::error::Error;
use std::fmt;

use castg_faults::FaultError;
use castg_numeric::NumericError;
use castg_spice::SpiceError;

/// Errors produced by the test-generation layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A circuit simulation failed (the error carries which analysis).
    Simulation(SpiceError),
    /// Fault injection failed (fault does not apply to the macro).
    Fault(FaultError),
    /// A numeric routine failed.
    Numeric(NumericError),
    /// A test configuration was queried with the wrong parameter count
    /// or otherwise inconsistent data.
    Configuration {
        /// Name of the configuration.
        config: String,
        /// What was inconsistent.
        reason: String,
    },
    /// Invalid generator or compaction options.
    InvalidOptions {
        /// What was invalid.
        reason: String,
    },
    /// Parsing a test-configuration description failed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Simulation(e) => write!(f, "simulation failed: {e}"),
            CoreError::Fault(e) => write!(f, "fault injection failed: {e}"),
            CoreError::Numeric(e) => write!(f, "numeric failure: {e}"),
            CoreError::Configuration { config, reason } => {
                write!(f, "configuration `{config}`: {reason}")
            }
            CoreError::InvalidOptions { reason } => write!(f, "invalid options: {reason}"),
            CoreError::Parse { line, reason } => {
                write!(f, "description parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Simulation(e) => Some(e),
            CoreError::Fault(e) => Some(e),
            CoreError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for CoreError {
    fn from(e: SpiceError) -> Self {
        CoreError::Simulation(e)
    }
}

impl From<FaultError> for CoreError {
    fn from(e: FaultError) -> Self {
        CoreError::Fault(e)
    }
}

impl From<NumericError> for CoreError {
    fn from(e: NumericError) -> Self {
        CoreError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = SpiceError::UnknownDevice { name: "X".into() }.into();
        assert!(matches!(e, CoreError::Simulation(_)));
        assert!(Error::source(&e).is_some());
        let e: CoreError = FaultError::UnknownNode { name: "n".into() }.into();
        assert!(matches!(e, CoreError::Fault(_)));
        let e: CoreError = NumericError::SingularMatrix { pivot: 0 }.into();
        assert!(matches!(e, CoreError::Numeric(_)));
    }

    #[test]
    fn display_is_meaningful() {
        let e = CoreError::Parse { line: 3, reason: "missing colon".into() };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
