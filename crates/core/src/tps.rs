//! Test-parameter-sensitivity graphs (the paper's Figs. 2–4).
//!
//! A tps-graph plots `S_f(T_tc)` over a configuration's parameter space
//! for one modeled fault: positive regions are undetectable, negative
//! regions detect. Shifting the fault model from high to low impact
//! morphs the graph from the erratic *hard-fault* shape (Fig. 2) to the
//! stable *soft-fault* shape (Figs. 3–4) whose minimum location stops
//! moving — the observation the efficient generation algorithm rests on.

use castg_faults::Fault;
use castg_numeric::grid::{linspace, Grid2d};

use crate::sensitivity::Evaluator;
use crate::CoreError;

/// A computed tps-graph over a two-parameter configuration.
#[derive(Debug, Clone)]
pub struct TpsGraph {
    /// Name of the fault the graph belongs to.
    pub fault_name: String,
    /// Effective model resistance the fault was evaluated at.
    pub fault_resistance: f64,
    /// Configuration id.
    pub config_id: usize,
    /// Parameter names for the two axes.
    pub axes: [String; 2],
    /// The sensitivity values on the sweep grid.
    pub grid: Grid2d,
}

/// Sweeps `S_f` of a 2-parameter configuration over an `nx × ny` grid.
///
/// # Errors
///
/// [`CoreError::Configuration`] if the configuration does not have
/// exactly two parameters; simulation errors propagate (faulty
/// non-convergence is folded into the sensitivity, not an error).
pub fn tps_graph(
    evaluator: &Evaluator<'_>,
    fault: &Fault,
    nx: usize,
    ny: usize,
) -> Result<TpsGraph, CoreError> {
    let config = evaluator.config();
    let space = config.space();
    if space.dim() != 2 {
        return Err(CoreError::Configuration {
            config: config.name().to_string(),
            reason: format!("tps_graph needs 2 parameters, config has {}", space.dim()),
        });
    }
    let xs = linspace(space.bounds(0).lo(), space.bounds(0).hi(), nx);
    let ys = linspace(space.bounds(1).lo(), space.bounds(1).hi(), ny);
    let faulty = evaluator.inject(fault)?;
    let mut values = Vec::with_capacity(nx * ny);
    for y in &ys {
        for x in &xs {
            let s = evaluator.sensitivity_of(&faulty, &[*x, *y])?;
            values.push(s);
        }
    }
    let names = config.param_names();
    Ok(TpsGraph {
        fault_name: fault.name(),
        fault_resistance: fault.effective_resistance(),
        config_id: config.id(),
        axes: [names[0].clone(), names[1].clone()],
        grid: Grid2d::from_values(xs, ys, values),
    })
}

/// Sweeps `S_f` of a 1-parameter configuration over `n` points,
/// returning `(parameter, sensitivity)` pairs.
///
/// # Errors
///
/// [`CoreError::Configuration`] if the configuration is not
/// 1-parameter.
pub fn tps_profile(
    evaluator: &Evaluator<'_>,
    fault: &Fault,
    n: usize,
) -> Result<Vec<(f64, f64)>, CoreError> {
    let config = evaluator.config();
    let space = config.space();
    if space.dim() != 1 {
        return Err(CoreError::Configuration {
            config: config.name().to_string(),
            reason: format!("tps_profile needs 1 parameter, config has {}", space.dim()),
        });
    }
    let xs = linspace(space.bounds(0).lo(), space.bounds(0).hi(), n);
    let faulty = evaluator.inject(fault)?;
    let mut out = Vec::with_capacity(n);
    for x in xs {
        out.push((x, evaluator.sensitivity_of(&faulty, &[x])?));
    }
    Ok(out)
}

impl TpsGraph {
    /// The grid minimum: `(x, y, S)` of the most sensitive parameter
    /// combination, or `None` for an empty grid.
    pub fn optimum(&self) -> Option<(f64, f64, f64)> {
        self.grid.min()
    }

    /// Fraction of grid cells that detect the fault (`S < 0`).
    pub fn detecting_fraction(&self) -> f64 {
        let total = self.grid.xs().len() * self.grid.ys().len();
        if total == 0 {
            return 0.0;
        }
        let detecting = self.grid.iter().filter(|(_, _, s)| *s < 0.0).count();
        detecting as f64 / total as f64
    }

    /// Renders the graph as an ASCII heat map in the spirit of the
    /// paper's gray-level legends. Rows are printed top-to-bottom in
    /// descending y. The legend maps characters to sensitivity bands.
    pub fn render_ascii(&self) -> String {
        const BANDS: &[(f64, char)] = &[
            (0.5, ' '),  // deeply insensitive
            (0.0, '.'),  // inside the box
            (-0.5, '+'), // detected, shallow
            (-1.0, 'o'), // detected
            (-2.0, 'x'), // strongly detected
        ];
        let classify = |s: f64| -> char {
            if s.is_nan() {
                return '?';
            }
            for (threshold, ch) in BANDS {
                if s >= *threshold {
                    return *ch;
                }
            }
            '#'
        };
        let mut out = String::new();
        out.push_str(&format!(
            "tps-graph: {} | config #{} | R = {:.3e} Ω\n",
            self.fault_name, self.config_id, self.fault_resistance
        ));
        out.push_str(&format!("y-axis: {} (top = max), x-axis: {}\n", self.axes[1], self.axes[0]));
        for iy in (0..self.grid.ys().len()).rev() {
            for ix in 0..self.grid.xs().len() {
                out.push(classify(self.grid.value(ix, iy)));
            }
            out.push('\n');
        }
        out.push_str("legend: ' '≥0.5  '.'≥0  '+'≥-0.5  'o'≥-1  'x'≥-2  '#'<-2  '?'=nan\n");
        out
    }

    /// Serializes the graph as CSV (`x,y,sensitivity` rows with header).
    pub fn to_csv(&self) -> String {
        let mut out = format!("{},{},sensitivity\n", self.axes[0], self.axes[1]);
        for (x, y, s) in self.grid.iter() {
            out.push_str(&format!("{x:.9e},{y:.9e},{s:.9e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::NominalCache;
    use crate::synthetic::DividerMacro;
    use crate::AnalogMacro;

    #[test]
    fn profile_of_divider_dc_config() {
        let mac = DividerMacro::new();
        let circuit = mac.nominal_circuit();
        let cache = NominalCache::new();
        let configs = mac.configurations();
        let ev = Evaluator::new(configs[0].as_ref(), &circuit, &cache);
        let fault = castg_faults::Fault::bridge("out", "0", 2e3);
        let profile = tps_profile(&ev, &fault, 9).unwrap();
        assert_eq!(profile.len(), 9);
        // Larger drive level → larger absolute deviation → lower S:
        // sensitivity should (weakly) improve with the level.
        assert!(profile.last().unwrap().1 <= profile.first().unwrap().1 + 1e-9);
    }

    #[test]
    fn graph_of_divider_step_config() {
        let mac = DividerMacro::new();
        let circuit = mac.nominal_circuit();
        let cache = NominalCache::new();
        let configs = mac.configurations();
        let ev = Evaluator::new(configs[1].as_ref(), &circuit, &cache);
        let fault = castg_faults::Fault::bridge("out", "0", 2e3);
        let g = tps_graph(&ev, &fault, 5, 5).unwrap();
        assert_eq!(g.grid.xs().len(), 5);
        assert_eq!(g.grid.ys().len(), 5);
        let (_, _, s_min) = g.optimum().unwrap();
        assert!(s_min < 1.0);
        let ascii = g.render_ascii();
        assert!(ascii.contains("tps-graph"));
        assert!(ascii.lines().count() >= 8);
        let csv = g.to_csv();
        assert_eq!(csv.lines().count(), 26); // header + 25 cells
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mac = DividerMacro::new();
        let circuit = mac.nominal_circuit();
        let cache = NominalCache::new();
        let configs = mac.configurations();
        let ev0 = Evaluator::new(configs[0].as_ref(), &circuit, &cache);
        let ev1 = Evaluator::new(configs[1].as_ref(), &circuit, &cache);
        let fault = castg_faults::Fault::bridge("out", "0", 2e3);
        assert!(tps_graph(&ev0, &fault, 3, 3).is_err());
        assert!(tps_profile(&ev1, &fault, 3).is_err());
    }

    #[test]
    fn soft_fault_region_stability_on_divider() {
        // The paper's §3.2 observation at toy scale: weakening the fault
        // must not move the optimum's grid location once soft.
        let mac = DividerMacro::new();
        let circuit = mac.nominal_circuit();
        let cache = NominalCache::new();
        let configs = mac.configurations();
        let ev = Evaluator::new(configs[0].as_ref(), &circuit, &cache);
        let soft1 = castg_faults::Fault::bridge("out", "0", 10e3).weakened(4.0);
        let soft2 = castg_faults::Fault::bridge("out", "0", 10e3).weakened(8.0);
        let p1 = tps_profile(&ev, &soft1, 15).unwrap();
        let p2 = tps_profile(&ev, &soft2, 15).unwrap();
        let argmin = |p: &[(f64, f64)]| {
            p.iter()
                .enumerate()
                .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_eq!(argmin(&p1), argmin(&p2), "soft-fault optimum location must be stable");
    }
}
