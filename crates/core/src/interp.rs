//! Description-driven test configurations: an interpreter that turns a
//! textual [`ConfigDescription`] (the paper's Fig. 1 exchange format)
//! into a live, executable [`TestConfiguration`].
//!
//! The hand-coded macros implement their configurations in Rust; a
//! macro that arrives as a *parsed netlist* (the `castg-netlist`
//! frontend) has no Rust code, so its configurations are description
//! files on disk interpreted by [`DescribedConfig`]. The interpreter
//! covers the template vocabulary of the paper's Table 1:
//!
//! * **control** — `dc(lev)`, `step(base, elev, slew_rate=sl)`,
//!   `sine(offset, amp, freq)`; arguments name attached parameters,
//!   declared variables, or numeric literals.
//! * **observe** — `dc()` (DC node voltage), `i()` (DC branch current
//!   of the device the observe line names), `sample(rate=sa, time=t)`
//!   (transient node-voltage record), `thd(freq)` (the paper's
//!   harmonic-distortion recipe: settle + measure periods of a sampled
//!   sine response).
//! * **return** — `dV(..)` / `dI(..)` (Δ against nominal),
//!   `Max(dV(..))`, `acc(dV(..))`, `THD(..)`.
//!
//! Tolerance boxes are the analytic formula every hand-coded macro's
//! analytic policy uses, with its constants read from `variable` lines:
//!
//! ```text
//! box = box_rel·(Σᵢ gainᵢ·|pᵢ| + box_offset) + box_abs + box_floor
//!       + box_rel_nom·|r_nominal|
//! ```
//!
//! where `gainᵢ` is `box_gain_<param>` (falling back to `box_gain`,
//! default 0). Simulation knobs (`reltol`, `euler`, `t0`, `thd_*`) are
//! also plain variables, so a description file fully determines the
//! measurement — see `tests/fixtures/iv_configs/` for the five Table-1
//! configurations expressed this way.

use std::path::Path;
use std::sync::Arc;

use castg_dsp::{metrics, thd, UniformSamples};
use castg_numeric::{Bounds, ParamSpace};
use castg_spice::{
    AnalysisOptions, Circuit, DcAnalysis, DeviceKind, IntegrationMethod, NodeId, OrderingKind,
    Probe, SolverKind, TranAnalysis, Waveform,
};

use crate::config::{check_params, Measurement};
use crate::descr::ConfigDescription;
use crate::{CoreError, TestConfiguration};

/// A template argument: a numeric literal, an attached parameter
/// (resolved by vector index), or a declared variable (inlined).
#[derive(Debug, Clone, Copy)]
enum Expr {
    Lit(f64),
    Param(usize),
}

impl Expr {
    fn eval(&self, params: &[f64]) -> f64 {
        match self {
            Expr::Lit(v) => *v,
            Expr::Param(i) => params[*i],
        }
    }
}

/// Parsed stimulus template of the single `control` line.
#[derive(Debug, Clone)]
enum ControlKind {
    Dc { level: Expr },
    Step { base: Expr, elev: Expr, t0: f64, rise: f64 },
    Sine { offset: Expr, amp: Expr, freq: Expr },
}

/// Parsed measurement template of the single `observe` line.
#[derive(Debug, Clone)]
enum ObserveKind {
    /// DC voltage of the observe node.
    Dc,
    /// DC branch current of the device the observe line names.
    BranchCurrent,
    /// Transient node-voltage record sampled at `rate` for `time`.
    Sample { rate: Expr, time: Expr },
    /// The THD recipe: sampled sine response, settle then measure.
    Thd { freq: Expr },
}

/// Parsed return-value template.
#[derive(Debug, Clone, Copy)]
enum ReturnKind {
    /// `dV(..)` / `dI(..)`: measured − nominal scalar.
    Delta,
    /// `THD(..)`: the measured scalar itself.
    Absolute,
    /// `Max(dV(..))`: maximum absolute waveform deviation.
    MaxDeviation,
    /// `acc(dV(..))`: accumulated (integrated) waveform deviation.
    AccumulatedDeviation,
}

/// One template call `name(arg, arg, key=arg)` split into pieces.
struct Call {
    name: String,
    positional: Vec<String>,
    named: Vec<(String, String)>,
}

fn parse_call(text: &str) -> Result<Call, String> {
    let text = text.trim();
    let open = text.find('(').ok_or_else(|| format!("expected `name(...)`, got `{text}`"))?;
    if !text.ends_with(')') {
        return Err(format!("unterminated template call `{text}`"));
    }
    let name = text[..open].trim().to_ascii_lowercase();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("bad template name in `{text}`"));
    }
    let inner = &text[open + 1..text.len() - 1];
    let mut positional = Vec::new();
    let mut named = Vec::new();
    for raw in inner.split(',') {
        let arg = raw.trim();
        if arg.is_empty() {
            continue;
        }
        match arg.split_once('=') {
            Some((k, v)) => named.push((k.trim().to_ascii_lowercase(), v.trim().to_string())),
            None => positional.push(arg.to_string()),
        }
    }
    Ok(Call { name, positional, named })
}

/// A live test configuration interpreted from a textual description.
///
/// # Example
///
/// ```
/// use castg_core::{ConfigDescription, DescribedConfig, TestConfiguration};
/// use castg_core::synthetic::DividerMacro;
/// use castg_core::AnalogMacro;
///
/// let text = "\
/// macro type: R-divider
/// test configuration: DC output
/// control vin: dc(lev)
/// observe out: dc()
/// return: dV(out)
/// parameter lev: 1 .. 8
/// variable box_rel: 0.05
/// variable box_gain: 0.5
/// seed lev: 5
/// ";
/// let config = DescribedConfig::new(1, ConfigDescription::parse(text)?)?;
/// let circuit = DividerMacro::new().nominal_circuit();
/// let m = config.measure(&circuit, &[5.0])?;
/// assert!(m.as_scalars().is_some());
/// # Ok::<(), castg_core::CoreError>(())
/// ```
pub struct DescribedConfig {
    id: usize,
    name: String,
    descr: ConfigDescription,
    param_names: Vec<String>,
    space: ParamSpace,
    seed: Vec<f64>,
    /// The `control` line's node field: an independent-source device
    /// name or a node driven by one (resolved against the circuit at
    /// measure time).
    control_target: String,
    control: ControlKind,
    /// The `observe` line's node field: a node name, or a device name
    /// for `i()`.
    observe_target: String,
    observe: ObserveKind,
    ret: ReturnKind,
    // Tolerance-box model (see the module docs).
    box_rel: f64,
    box_offset: f64,
    box_abs: f64,
    box_floor: f64,
    box_rel_nom: f64,
    box_gains: Vec<f64>,
    // Simulation knobs.
    reltol: Option<f64>,
    euler: bool,
    thd_points: usize,
    thd_settle: usize,
    thd_measure: usize,
    thd_harmonics: usize,
    thd_stuck: f64,
    // Solver dispatch (see [`DescribedConfig::with_solver`]).
    solver: SolverKind,
    ordering: OrderingKind,
}

impl DescribedConfig {
    /// Interprets a parsed description into an executable configuration
    /// with the given id (the paper numbers configurations #1…#5).
    ///
    /// # Errors
    ///
    /// [`CoreError::Configuration`] when the description is not
    /// interpretable: no/too many control or observe lines, an unknown
    /// template, an argument naming neither a parameter, a variable nor
    /// a literal, or invalid parameter bounds.
    pub fn new(id: usize, descr: ConfigDescription) -> Result<Self, CoreError> {
        let name = slug(&descr.title);
        let err = |reason: String| CoreError::Configuration { config: name.clone(), reason };

        let param_names: Vec<String> =
            descr.parameters.iter().map(|p| p.name.clone()).collect();
        let mut bounds = Vec::with_capacity(descr.parameters.len());
        for p in &descr.parameters {
            bounds.push(Bounds::new(p.lo, p.hi).map_err(|e| {
                err(format!("parameter `{}`: invalid interval: {e}", p.name))
            })?);
        }
        let space = ParamSpace::new(bounds);
        let seed = descr.seed_vector();

        let var = |key: &str| -> Option<f64> {
            descr.variables.iter().find(|(n, _)| n.eq_ignore_ascii_case(key)).map(|(_, v)| *v)
        };
        let resolve = |arg: &str| -> Result<Expr, CoreError> {
            if let Some(i) = param_names.iter().position(|p| p == arg) {
                return Ok(Expr::Param(i));
            }
            if let Some(v) = var(arg) {
                return Ok(Expr::Lit(v));
            }
            arg.parse::<f64>().map(Expr::Lit).map_err(|_| {
                err(format!("argument `{arg}` is neither a parameter, a variable nor a number"))
            })
        };

        if descr.controls.len() != 1 {
            return Err(err(format!(
                "need exactly one control line, got {}",
                descr.controls.len()
            )));
        }
        if descr.observes.len() != 1 {
            return Err(err(format!(
                "need exactly one observe line, got {}",
                descr.observes.len()
            )));
        }
        let control_line = &descr.controls[0];
        let observe_line = &descr.observes[0];

        let ccall = parse_call(&control_line.action).map_err(&err)?;
        let pos = |call: &Call, i: usize, what: &str| -> Result<Expr, CoreError> {
            let arg = call
                .positional
                .get(i)
                .ok_or_else(|| err(format!("`{}` needs a `{what}` argument", call.name)))?;
            resolve(arg)
        };
        let named_or = |call: &Call, key: &str, default: f64| -> Result<f64, CoreError> {
            match call.named.iter().find(|(k, _)| k == key) {
                // Named args must be constants (variables or literals):
                // they shape the stimulus template, not the test point.
                Some((_, v)) => match resolve(v)? {
                    Expr::Lit(c) => Ok(c),
                    Expr::Param(_) => {
                        Err(err(format!("`{key}` must be a variable or literal, not a parameter")))
                    }
                },
                None => Ok(default),
            }
        };
        let control = match ccall.name.as_str() {
            "dc" => ControlKind::Dc { level: pos(&ccall, 0, "level")? },
            "step" => ControlKind::Step {
                base: pos(&ccall, 0, "base")?,
                elev: pos(&ccall, 1, "elev")?,
                t0: var("t0").unwrap_or(0.0),
                rise: named_or(&ccall, "slew_rate", var("sl").unwrap_or(0.0))?,
            },
            "sine" => ControlKind::Sine {
                offset: pos(&ccall, 0, "offset")?,
                amp: pos(&ccall, 1, "amp")?,
                freq: pos(&ccall, 2, "freq")?,
            },
            other => return Err(err(format!("unknown control template `{other}`"))),
        };

        let ocall = parse_call(&observe_line.action).map_err(&err)?;
        let observe = match ocall.name.as_str() {
            "dc" => ObserveKind::Dc,
            "i" | "idd" => ObserveKind::BranchCurrent,
            "sample" => {
                let rate = match ocall.named.iter().find(|(k, _)| k == "rate") {
                    Some((_, v)) => resolve(v)?,
                    None => pos(&ocall, 0, "rate")?,
                };
                let time = match ocall.named.iter().find(|(k, _)| k == "time") {
                    Some((_, v)) => resolve(v)?,
                    None => pos(&ocall, 1, "time")?,
                };
                ObserveKind::Sample { rate, time }
            }
            "thd" => ObserveKind::Thd { freq: pos(&ocall, 0, "freq")? },
            other => return Err(err(format!("unknown observe template `{other}`"))),
        };

        let ret_text = descr.return_value.trim().to_ascii_lowercase();
        let ret = if ret_text.starts_with("max(") {
            ReturnKind::MaxDeviation
        } else if ret_text.starts_with("acc(") {
            ReturnKind::AccumulatedDeviation
        } else if ret_text.starts_with("thd(") {
            ReturnKind::Absolute
        } else if ret_text.starts_with("dv(") || ret_text.starts_with("di(") {
            ReturnKind::Delta
        } else {
            return Err(err(format!("unknown return template `{}`", descr.return_value)));
        };
        match (&observe, ret) {
            (ObserveKind::Sample { .. }, ReturnKind::MaxDeviation)
            | (ObserveKind::Sample { .. }, ReturnKind::AccumulatedDeviation)
            | (ObserveKind::Dc, ReturnKind::Delta)
            | (ObserveKind::BranchCurrent, ReturnKind::Delta)
            | (ObserveKind::Thd { .. }, ReturnKind::Absolute) => {}
            _ => {
                return Err(err(format!(
                    "return `{}` does not fit observe `{}`",
                    descr.return_value, observe_line.action
                )))
            }
        }

        let box_gain_default = var("box_gain").unwrap_or(0.0);
        let box_gains = param_names
            .iter()
            .map(|p| var(&format!("box_gain_{p}")).unwrap_or(box_gain_default))
            .collect();

        Ok(DescribedConfig {
            id,
            control_target: control_line.node.clone(),
            observe_target: observe_line.node.clone(),
            control,
            observe,
            ret,
            box_rel: var("box_rel").unwrap_or(0.05),
            box_offset: var("box_offset").unwrap_or(0.0),
            box_abs: var("box_abs").unwrap_or(0.0),
            box_floor: var("box_floor").unwrap_or(0.0),
            box_rel_nom: var("box_rel_nom").unwrap_or(0.0),
            box_gains,
            reltol: var("reltol"),
            euler: var("euler").is_some_and(|v| v != 0.0),
            thd_points: var("thd_points").unwrap_or(128.0) as usize,
            thd_settle: var("thd_settle").unwrap_or(2.0) as usize,
            thd_measure: var("thd_measure").unwrap_or(4.0) as usize,
            thd_harmonics: var("thd_harmonics").unwrap_or(5.0) as usize,
            thd_stuck: var("thd_stuck").unwrap_or(999.0),
            solver: SolverKind::Auto,
            ordering: OrderingKind::Auto,
            name,
            descr,
            param_names,
            space,
            seed,
        })
    }

    /// Forces the solver path every measurement of this configuration
    /// dispatches through — `Auto`/`Auto` (the default) lets the
    /// density and fill heuristics decide per circuit; forcing
    /// `Sparse` + `Btf`/`Amd`/`Natural` pins one arm, the way the
    /// differential harnesses and the `castg --ordering` flag do.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverKind, ordering: OrderingKind) -> Self {
        self.solver = solver;
        self.ordering = ordering;
        self
    }

    /// Loads every description file (`*.cfg` or `*.txt`, sorted by file
    /// name) in a directory into executable configurations, ids assigned
    /// 1… in order.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidOptions`] when the directory is unreadable or
    /// holds no description files; parse and interpretation errors are
    /// reported with the offending file name.
    pub fn load_dir(dir: &Path) -> Result<Vec<Arc<dyn TestConfiguration>>, CoreError> {
        let io_err = |reason: String| CoreError::InvalidOptions { reason };
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| io_err(format!("cannot read config dir {}: {e}", dir.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("cfg") | Some("txt")
                )
            })
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(io_err(format!(
                "no configuration descriptions (*.cfg / *.txt) in {}",
                dir.display()
            )));
        }
        let mut configs: Vec<Arc<dyn TestConfiguration>> = Vec::with_capacity(files.len());
        for (i, path) in files.iter().enumerate() {
            let text = std::fs::read_to_string(path)
                .map_err(|e| io_err(format!("cannot read {}: {e}", path.display())))?;
            let descr = ConfigDescription::parse(&text).map_err(|e| {
                io_err(format!("{}: {e}", path.display()))
            })?;
            let config = DescribedConfig::new(i + 1, descr).map_err(|e| {
                io_err(format!("{}: {e}", path.display()))
            })?;
            configs.push(Arc::new(config));
        }
        Ok(configs)
    }

    fn cfg_err(&self, reason: String) -> CoreError {
        CoreError::Configuration { config: self.name.clone(), reason }
    }

    /// Resolves the control line's target to an independent-source
    /// device name: first a (case-insensitive) device-name match, then
    /// the first independent source touching a node of that name.
    fn stimulus_device<'c>(&self, circuit: &'c Circuit) -> Result<&'c str, CoreError> {
        let is_source =
            |k: &DeviceKind| matches!(k, DeviceKind::Vsource { .. } | DeviceKind::Isource { .. });
        for dev in circuit.devices() {
            if is_source(dev.kind()) && dev.name().eq_ignore_ascii_case(&self.control_target) {
                return Ok(dev.name());
            }
        }
        if let Some(node) = find_node_ci(circuit, &self.control_target) {
            for dev in circuit.devices() {
                if is_source(dev.kind()) && dev.nodes().contains(&node) {
                    return Ok(dev.name());
                }
            }
        }
        Err(self.cfg_err(format!(
            "control target `{}` matches no independent source",
            self.control_target
        )))
    }

    fn observe_node(&self, circuit: &Circuit) -> Result<NodeId, CoreError> {
        find_node_ci(circuit, &self.observe_target).ok_or_else(|| {
            self.cfg_err(format!("circuit has no `{}` node", self.observe_target))
        })
    }

    fn waveform(&self, params: &[f64]) -> Waveform {
        match &self.control {
            ControlKind::Dc { level } => Waveform::dc(level.eval(params)),
            ControlKind::Step { base, elev, t0, rise } => {
                Waveform::step(base.eval(params), elev.eval(params), *t0, *rise)
            }
            ControlKind::Sine { offset, amp, freq } => {
                Waveform::sine(offset.eval(params), amp.eval(params), freq.eval(params))
            }
        }
    }

    /// Options for the DC solves: defaults plus the configuration's
    /// solver/ordering dispatch.
    fn dc_options(&self) -> AnalysisOptions {
        AnalysisOptions {
            solver: self.solver,
            ordering: self.ordering,
            ..AnalysisOptions::default()
        }
    }

    /// Transient options: the description's `reltol` (when declared)
    /// loosened onto the defaults, exactly like the hand-coded macros'
    /// long-transient configurations, plus the solver/ordering dispatch.
    fn tran_options(&self) -> AnalysisOptions {
        let mut opts = self.dc_options();
        if let Some(reltol) = self.reltol {
            opts.reltol = reltol;
        }
        opts
    }

    fn method(&self) -> IntegrationMethod {
        if self.euler {
            IntegrationMethod::BackwardEuler
        } else {
            IntegrationMethod::Trapezoidal
        }
    }
}

/// Case-insensitive node lookup (exact match wins).
fn find_node_ci(circuit: &Circuit, name: &str) -> Option<NodeId> {
    if let Some(id) = circuit.find_node(name) {
        return Some(id);
    }
    circuit.non_ground_nodes().find(|id| circuit.node_name(*id).eq_ignore_ascii_case(name))
}

/// Lowercase identifier slug of a configuration title
/// (`"DC transfer"` → `"dc_transfer"`).
fn slug(title: &str) -> String {
    let mut s: String = title
        .trim()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect();
    while s.contains("__") {
        s = s.replace("__", "_");
    }
    let s = s.trim_matches('_').to_string();
    if s.is_empty() {
        "config".to_string()
    } else {
        s
    }
}

impl TestConfiguration for DescribedConfig {
    fn id(&self) -> usize {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn param_names(&self) -> Vec<String> {
        self.param_names.clone()
    }

    fn space(&self) -> ParamSpace {
        self.space.clone()
    }

    fn seed(&self) -> Vec<f64> {
        self.seed.clone()
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let stimulus = self.stimulus_device(circuit)?.to_string();
        let wave = self.waveform(params);
        match &self.observe {
            ObserveKind::Dc => {
                let sol = DcAnalysis::with_options(circuit, self.dc_options())
                    .override_stimulus(&stimulus, wave)
                    .solve()?;
                Ok(Measurement::scalar(sol.voltage(self.observe_node(circuit)?)))
            }
            ObserveKind::BranchCurrent => {
                let sol = DcAnalysis::with_options(circuit, self.dc_options())
                    .override_stimulus(&stimulus, wave)
                    .solve()?;
                // Device identifiers are case-insensitive like every
                // other lookup in this interpreter; source_current
                // itself matches exactly, so resolve the real name.
                let device = circuit
                    .devices()
                    .iter()
                    .map(|d| d.name())
                    .find(|n| n.eq_ignore_ascii_case(&self.observe_target))
                    .unwrap_or(self.observe_target.as_str());
                let i = sol.source_current(device).ok_or_else(|| {
                    self.cfg_err(format!(
                        "circuit has no `{}` branch device to probe",
                        self.observe_target
                    ))
                })?;
                Ok(Measurement::scalar(i))
            }
            ObserveKind::Sample { rate, time } => {
                let out = self.observe_node(circuit)?;
                let dt = 1.0 / rate.eval(params);
                let trace =
                    TranAnalysis::with_options(circuit, self.tran_options(), self.method())
                        .override_stimulus(&stimulus, wave)
                        .run(time.eval(params), dt, &[Probe::NodeVoltage(out)])?;
                Ok(Measurement::Waveform(UniformSamples::new(
                    0.0,
                    dt,
                    trace.column(0).to_vec(),
                )))
            }
            ObserveKind::Thd { freq } => {
                let out = self.observe_node(circuit)?;
                let f0 = freq.eval(params);
                if !(f0 > 0.0 && f0.is_finite()) {
                    return Err(self.cfg_err(format!("thd needs a positive frequency, got {f0}")));
                }
                let period = 1.0 / f0;
                let dt = period / self.thd_points as f64;
                let periods = self.thd_settle + self.thd_measure;
                // Backward Euler: L-stable across wide time-constant
                // spreads, matching the hand-coded THD configuration.
                let trace = TranAnalysis::with_options(
                    circuit,
                    self.tran_options(),
                    IntegrationMethod::BackwardEuler,
                )
                .override_stimulus(&stimulus, wave)
                .run(periods as f64 * period, dt, &[Probe::NodeVoltage(out)])?;
                let skip = self.thd_settle * self.thd_points;
                let count = self.thd_measure * self.thd_points;
                let column = trace.column(0);
                let vals = column[skip.min(column.len())..(skip + count).min(column.len())]
                    .to_vec();
                let samples = UniformSamples::new(0.0, dt, vals);
                let d = thd(&samples, f0, self.thd_harmonics).unwrap_or(self.thd_stuck);
                Ok(Measurement::scalar(d))
            }
        }
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match self.ret {
            ReturnKind::Delta => match (measured.as_scalars(), nominal.as_scalars()) {
                (Some(m), Some(n)) => vec![m[0] - n[0]],
                _ => vec![f64::NAN],
            },
            ReturnKind::Absolute => match measured.as_scalars() {
                Some(m) => vec![m[0]],
                None => vec![f64::NAN],
            },
            ReturnKind::MaxDeviation => match (measured.as_waveform(), nominal.as_waveform()) {
                (Some(m), Some(n)) => vec![metrics::max_abs_deviation(m, n)],
                _ => vec![f64::NAN],
            },
            ReturnKind::AccumulatedDeviation => {
                match (measured.as_waveform(), nominal.as_waveform()) {
                    (Some(m), Some(n)) => vec![metrics::accumulated_deviation(m, n)],
                    _ => vec![f64::NAN],
                }
            }
        }
    }

    fn tolerance_box(&self, params: &[f64], nominal_returns: &[f64]) -> Vec<f64> {
        let r_nom = nominal_returns.first().copied().unwrap_or(0.0);
        let mut magnitude = self.box_offset;
        for (gain, p) in self.box_gains.iter().zip(params) {
            magnitude += gain * p.abs();
        }
        vec![
            self.box_rel * magnitude
                + self.box_abs
                + self.box_floor
                + self.box_rel_nom * r_nom.abs(),
        ]
    }

    fn description(&self) -> ConfigDescription {
        self.descr.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::DividerMacro;
    use crate::AnalogMacro;

    fn divider_circuit() -> Circuit {
        DividerMacro::new().nominal_circuit()
    }

    fn build(text: &str) -> DescribedConfig {
        DescribedConfig::new(1, ConfigDescription::parse(text).unwrap()).unwrap()
    }

    const DC_CFG: &str = "\
macro type: R-divider
test configuration: DC output
control vin: dc(lev)
observe out: dc()
return: dV(out)
parameter lev: 1 .. 8
variable box_rel: 0.05
variable box_gain: 0.5
variable box_floor: 1e-3
seed lev: 5
";

    #[test]
    fn dc_template_measures_node_voltage() {
        let cfg = build(DC_CFG);
        let c = divider_circuit();
        // Divider: out = vin / 2.
        let m = cfg.measure(&c, &[6.0]).unwrap();
        let v = m.as_scalars().unwrap()[0];
        assert!((v - 3.0).abs() < 1e-6, "v = {v}");
        // Δ return against a different nominal level.
        let n = cfg.measure(&c, &[6.0]).unwrap();
        assert_eq!(cfg.return_values(&m, &n), vec![0.0]);
        assert_eq!(cfg.id(), 1);
        assert_eq!(cfg.name(), "dc_output");
        assert_eq!(cfg.param_names(), vec!["lev".to_string()]);
        assert_eq!(cfg.seed(), vec![5.0]);
    }

    #[test]
    fn control_resolves_device_by_node_or_name() {
        let cfg = build(DC_CFG);
        let c = divider_circuit();
        // `vin` is a node driven by V1.
        assert_eq!(cfg.stimulus_device(&c).unwrap(), "V1");
        // Direct (case-insensitive) device naming also works.
        let by_name = build(&DC_CFG.replace("control vin:", "control v1:"));
        assert_eq!(by_name.stimulus_device(&c).unwrap(), "V1");
    }

    #[test]
    fn step_template_matches_hand_coded_config() {
        let text = "\
macro type: R-divider
test configuration: Step response
control vin: step(base, elev, slew_rate=sl)
observe out: sample(rate=sa, time=t)
return: Max(dV(out))
parameter base: 0 .. 4
parameter elev: -4 .. 4
variable sl: 1e-7
variable t0: 1e-6
variable sa: 5e6
variable t: 1e-5
seed base: 1
seed elev: 2
";
        let cfg = build(text);
        let c = divider_circuit();
        let m = cfg.measure(&c, &[1.0, 2.0]).unwrap();
        let w = m.as_waveform().unwrap();
        assert_eq!(w.dt(), 1.0 / 5e6);
        // The divider settles to (base+elev)/2 = 1.5 at the record end.
        let v_end = *w.values().last().unwrap();
        assert!((v_end - 1.5).abs() < 0.01, "v_end = {v_end}");
        // Max deviation against itself is zero.
        assert_eq!(cfg.return_values(&m, &m), vec![0.0]);
    }

    #[test]
    fn branch_current_template_probes_sources() {
        let text = "\
macro type: R-divider
test configuration: Supply current
control vin: dc(lev)
observe V1: i()
return: dI(V1)
parameter lev: 1 .. 8
seed lev: 5
";
        let cfg = build(text);
        let c = divider_circuit();
        let m = cfg.measure(&c, &[4.0]).unwrap();
        // 4 V over 4 kΩ total: 1 mA out of the source (negative).
        let i = m.as_scalars().unwrap()[0];
        assert!((i + 1e-3).abs() < 1e-6, "i = {i}");
    }

    #[test]
    fn tolerance_box_follows_the_declared_formula() {
        let cfg = build(DC_CFG);
        // box = 0.05·(0.5·|6| + 0) + 0 + 1e-3 + 0.
        let b = cfg.tolerance_box(&[6.0], &[0.0]);
        assert!((b[0] - (0.05 * 3.0 + 1e-3)).abs() < 1e-15, "box = {}", b[0]);
    }

    #[test]
    fn per_param_gain_overrides_apply() {
        let text = "\
macro type: X
test configuration: T
control vin: dc(a)
observe out: dc()
return: dV(out)
parameter a: 0 .. 1
parameter b: 0 .. 1
variable box_rel: 1
variable box_gain: 2
variable box_gain_b: 7
";
        let cfg = build(text);
        let b = cfg.tolerance_box(&[1.0, 1.0], &[0.0]);
        assert!((b[0] - 9.0).abs() < 1e-15, "box = {}", b[0]);
    }

    #[test]
    fn rejects_uninterpretable_descriptions() {
        let bad = [
            // No control line.
            "macro type: X\ntest configuration: T\nobserve out: dc()\nreturn: dV(out)\nparameter a: 0 .. 1\n",
            // Unknown control template.
            "macro type: X\ntest configuration: T\ncontrol vin: chirp(a)\nobserve out: dc()\nreturn: dV(out)\nparameter a: 0 .. 1\n",
            // Unknown return shape.
            "macro type: X\ntest configuration: T\ncontrol vin: dc(a)\nobserve out: dc()\nreturn: rms(out)\nparameter a: 0 .. 1\n",
            // Return/observe mismatch: Max() needs a waveform.
            "macro type: X\ntest configuration: T\ncontrol vin: dc(a)\nobserve out: dc()\nreturn: Max(dV(out))\nparameter a: 0 .. 1\n",
            // Argument resolving to nothing.
            "macro type: X\ntest configuration: T\ncontrol vin: dc(zz)\nobserve out: dc()\nreturn: dV(out)\nparameter a: 0 .. 1\n",
        ];
        for text in bad {
            let descr = ConfigDescription::parse(text).unwrap();
            assert!(
                DescribedConfig::new(1, descr).is_err(),
                "should reject: {text}"
            );
        }
    }

    #[test]
    fn measure_errors_name_missing_targets() {
        let cfg = build(&DC_CFG.replace("observe out:", "observe nope:"));
        let c = divider_circuit();
        let e = cfg.measure(&c, &[5.0]).unwrap_err();
        assert!(e.to_string().contains("nope"), "{e}");
        let cfg = build(&DC_CFG.replace("control vin:", "control nowhere:"));
        let e = cfg.measure(&c, &[5.0]).unwrap_err();
        assert!(e.to_string().contains("nowhere"), "{e}");
    }

    #[test]
    fn slugs_are_identifier_shaped() {
        assert_eq!(slug("DC transfer"), "dc_transfer");
        assert_eq!(slug("Step response 1"), "step_response_1");
        assert_eq!(slug("  ++  "), "config");
    }

    #[test]
    fn description_round_trips() {
        let cfg = build(DC_CFG);
        let d = cfg.description();
        let re = ConfigDescription::parse(&d.to_string()).unwrap();
        assert_eq!(re, d);
    }
}
