//! Test-set compaction — the paper's §4 collapse algorithm.
//!
//! The per-fault generation of §3 produces one test per fault (55 tests
//! for the IV-converter), which is proportional to the fault count and
//! therefore undesirable. The collapse algorithm exploits that optimized
//! tests cluster in each configuration's parameter space (Fig. 8): tests
//! in a group are replaced by their parameter *average*, and the
//! replacement is screened per member fault `f_x` with
//!
//! ```text
//! S_fx(T_c) ≤ S_fx(T_opt) + δ·(1 − S_fx(T_opt))
//! ```
//!
//! where δ bounds the acceptable percentile shift of `S_fx` toward the
//! insensitivity level 1. Members failing the screen keep their own
//! optimal test.

use castg_faults::Fault;

use crate::cache::NominalCache;
use crate::generate::{BestTest, GenerationReport};
use crate::sensitivity::Evaluator;
use crate::{AnalogMacro, CoreError, TestConfiguration};

/// At which fault impact the compaction screen evaluates sensitivities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImpactLevel {
    /// The dictionary impact (scale 1) — the fault as modeled.
    #[default]
    Dictionary,
    /// Each fault's critical impact level (the boundary of detection for
    /// its optimal test) — the strictest meaningful screen.
    Critical,
}

/// Options for [`compact`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionOptions {
    /// δ: the maximal allowed fractional shift of `S_f` toward
    /// insensitivity (cost 1) caused by collapsing.
    pub delta: f64,
    /// Grouping radius in the normalized (unit-cube) parameter space of
    /// each configuration.
    pub radius: f64,
    /// Impact level at which the screen evaluates.
    pub impact: ImpactLevel,
}

impl Default for CompactionOptions {
    fn default() -> Self {
        CompactionOptions { delta: 0.25, radius: 0.15, impact: ImpactLevel::default() }
    }
}

/// A collapsed test: one configuration + parameter vector covering one or
/// more dictionary faults.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactTest {
    /// Configuration id.
    pub config_id: usize,
    /// Configuration name.
    pub config_name: String,
    /// The (averaged) test parameter values.
    pub params: Vec<f64>,
    /// Names of the faults this test covers.
    pub covered_faults: Vec<String>,
}

/// Outcome of a compaction run.
#[derive(Debug, Clone, Default)]
pub struct CompactionReport {
    /// The collapsed test set.
    pub tests: Vec<CompactTest>,
    /// Size of the input (one test per fault).
    pub original_count: usize,
    /// Number of group members ejected by the δ-screen (they appear as
    /// singleton tests in `tests`).
    pub screen_rejections: usize,
    /// δ used.
    pub delta: f64,
}

impl CompactionReport {
    /// Compaction ratio `original / collapsed` (≥ 1).
    pub fn ratio(&self) -> f64 {
        if self.tests.is_empty() {
            1.0
        } else {
            self.original_count as f64 / self.tests.len() as f64
        }
    }
}

/// Collapses a generation report's per-fault tests into a compact test
/// set (§4.1).
///
/// # Errors
///
/// [`CoreError::InvalidOptions`] for non-positive radius or a δ outside
/// `[0, 1)`; simulation errors from the screen evaluations propagate.
pub fn compact(
    macro_def: &dyn AnalogMacro,
    cache: &NominalCache,
    report: &GenerationReport,
    options: &CompactionOptions,
) -> Result<CompactionReport, CoreError> {
    if !(options.delta >= 0.0 && options.delta < 1.0) {
        return Err(CoreError::InvalidOptions {
            reason: format!("delta must be in [0, 1), got {}", options.delta),
        });
    }
    if options.radius <= 0.0 || options.radius.is_nan() {
        return Err(CoreError::InvalidOptions {
            reason: format!("radius must be positive, got {}", options.radius),
        });
    }

    let nominal = macro_def.nominal_circuit();
    let configs = macro_def.configurations();
    let mut out = CompactionReport {
        original_count: report.tests.len(),
        delta: options.delta,
        ..Default::default()
    };

    for config in &configs {
        let tests: Vec<&BestTest> =
            report.tests.iter().filter(|t| t.config_id == config.id()).collect();
        if tests.is_empty() {
            continue;
        }
        let clusters = cluster(config.as_ref(), &tests, options.radius);
        let ev = Evaluator::new(config.as_ref(), &nominal, cache);

        for cluster_members in clusters {
            collapse_cluster(
                &ev,
                config.as_ref(),
                &tests,
                cluster_members,
                options,
                &mut out,
            )?;
        }
    }
    // Deterministic output order: by configuration, then by first
    // covered fault name.
    out.tests.sort_by(|a, b| {
        (a.config_id, a.covered_faults.first()).cmp(&(b.config_id, b.covered_faults.first()))
    });
    Ok(out)
}

/// Greedy radius clustering in normalized parameter space. Returns
/// clusters as index lists into `tests`.
fn cluster(
    config: &dyn TestConfiguration,
    tests: &[&BestTest],
    radius: f64,
) -> Vec<Vec<usize>> {
    let space = config.space();
    let points: Vec<Vec<f64>> = tests.iter().map(|t| space.normalize(&t.params)).collect();
    let mut clusters: Vec<(Vec<f64>, Vec<usize>)> = Vec::new(); // (centroid, members)
    for (i, p) in points.iter().enumerate() {
        let found = clusters.iter_mut().find(|(centroid, _)| dist(centroid, p) <= radius);
        match found {
            Some((centroid, members)) => {
                members.push(i);
                // Incremental centroid update.
                let k = members.len() as f64;
                for (c, x) in centroid.iter_mut().zip(p) {
                    *c += (x - *c) / k;
                }
            }
            None => clusters.push((p.clone(), vec![i])),
        }
    }
    clusters.into_iter().map(|(_, members)| members).collect()
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Collapses one cluster: averages parameters, screens every member,
/// ejects members that fail, and emits the resulting tests.
fn collapse_cluster(
    ev: &Evaluator<'_>,
    config: &dyn TestConfiguration,
    tests: &[&BestTest],
    members: Vec<usize>,
    options: &CompactionOptions,
    out: &mut CompactionReport,
) -> Result<(), CoreError> {
    if members.len() == 1 {
        let t = tests[members[0]];
        out.tests.push(CompactTest {
            config_id: config.id(),
            config_name: config.name().to_string(),
            params: t.params.clone(),
            covered_faults: vec![t.fault.name()],
        });
        return Ok(());
    }

    let mut survivors = members;
    loop {
        // Centroid in physical parameter space.
        let dim = config.space().dim();
        let mut centroid = vec![0.0; dim];
        for &m in &survivors {
            for (c, p) in centroid.iter_mut().zip(&tests[m].params) {
                *c += p;
            }
        }
        for c in &mut centroid {
            *c /= survivors.len() as f64;
        }
        let centroid = config.space().clamp(&centroid);

        // Screen every member at the requested impact level.
        let mut kept = Vec::with_capacity(survivors.len());
        let mut ejected = Vec::new();
        for &m in &survivors {
            let t = tests[m];
            let fault = fault_at_level(&t.fault, t, options.impact);
            let circuit = ev.inject(&fault)?;
            let s_collapsed = ev.sensitivity_of(&circuit, &centroid)?;
            let s_opt = match options.impact {
                ImpactLevel::Dictionary => t.sensitivity_at_dictionary,
                ImpactLevel::Critical => ev.sensitivity_of(&circuit, &t.params)?,
            };
            if s_collapsed <= s_opt + options.delta * (1.0 - s_opt) {
                kept.push(m);
            } else {
                ejected.push(m);
            }
        }

        if ejected.is_empty() || kept.len() <= 1 {
            // Emit the collapsed test for the kept members (or, if the
            // screen scattered everyone, emit them all as singletons).
            if kept.len() >= 2 {
                out.tests.push(CompactTest {
                    config_id: config.id(),
                    config_name: config.name().to_string(),
                    params: centroid,
                    covered_faults: kept.iter().map(|&m| tests[m].fault.name()).collect(),
                });
            } else {
                for &m in &kept {
                    out.tests.push(singleton(config, tests[m]));
                }
            }
            out.screen_rejections += ejected.len();
            for &m in &ejected {
                out.tests.push(singleton(config, tests[m]));
            }
            return Ok(());
        }
        // Some members were ejected: re-center on the survivors and
        // re-screen (one-shot convergence is typical; the loop is bounded
        // because the survivor set strictly shrinks).
        out.screen_rejections += ejected.len();
        for &m in &ejected {
            out.tests.push(singleton(config, tests[m]));
        }
        survivors = kept;
    }
}

fn singleton(config: &dyn TestConfiguration, t: &BestTest) -> CompactTest {
    CompactTest {
        config_id: config.id(),
        config_name: config.name().to_string(),
        params: t.params.clone(),
        covered_faults: vec![t.fault.name()],
    }
}

fn fault_at_level(fault: &Fault, test: &BestTest, level: ImpactLevel) -> Fault {
    match level {
        ImpactLevel::Dictionary => fault.with_impact_scale(1.0),
        ImpactLevel::Critical => fault.with_impact_scale(test.critical_scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{Generator, GeneratorOptions};
    use crate::synthetic::DividerMacro;
    use castg_numeric::{BrentOptions, PowellOptions};

    fn quick_options() -> GeneratorOptions {
        GeneratorOptions {
            threads: 2,
            powell: PowellOptions {
                ftol: 1e-3,
                max_iter: 6,
                line: BrentOptions { tol: 5e-3, max_iter: 10 },
            },
            brent: BrentOptions { tol: 1e-3, max_iter: 20 },
            ..GeneratorOptions::default()
        }
    }

    fn generation() -> (DividerMacro, NominalCache, GenerationReport) {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let report =
            Generator::with_options(&mac, &cache, quick_options()).generate(&mac.fault_dictionary());
        (mac, cache, report)
    }

    #[test]
    fn compaction_never_grows_the_set_and_covers_every_fault() {
        let (mac, cache, report) = generation();
        let comp = compact(&mac, &cache, &report, &CompactionOptions::default()).unwrap();
        assert!(comp.tests.len() <= report.tests.len());
        assert!(comp.ratio() >= 1.0);
        let covered: usize = comp.tests.iter().map(|t| t.covered_faults.len()).sum();
        assert_eq!(covered, report.tests.len(), "every fault appears exactly once");
    }

    #[test]
    fn zero_delta_is_strictest() {
        let (mac, cache, report) = generation();
        let strict = compact(
            &mac,
            &cache,
            &report,
            &CompactionOptions { delta: 0.0, ..CompactionOptions::default() },
        )
        .unwrap();
        let loose = compact(
            &mac,
            &cache,
            &report,
            &CompactionOptions { delta: 1.0, ..CompactionOptions::default() },
        )
        .unwrap_err();
        // delta must be strictly below 1.
        assert!(matches!(loose, CoreError::InvalidOptions { .. }));
        let relaxed = compact(
            &mac,
            &cache,
            &report,
            &CompactionOptions { delta: 0.5, ..CompactionOptions::default() },
        )
        .unwrap();
        assert!(strict.tests.len() >= relaxed.tests.len());
    }

    #[test]
    fn options_are_validated() {
        let (mac, cache, report) = generation();
        assert!(compact(
            &mac,
            &cache,
            &report,
            &CompactionOptions { delta: -0.1, ..CompactionOptions::default() }
        )
        .is_err());
        assert!(compact(
            &mac,
            &cache,
            &report,
            &CompactionOptions { radius: 0.0, ..CompactionOptions::default() }
        )
        .is_err());
    }

    #[test]
    fn large_radius_forces_grouping_screen_still_protects() {
        let (mac, cache, report) = generation();
        let comp = compact(
            &mac,
            &cache,
            &report,
            &CompactionOptions { radius: 10.0, delta: 0.3, impact: ImpactLevel::Dictionary },
        )
        .unwrap();
        // With an all-encompassing radius, groups form per config; the
        // screen may eject members but coverage accounting must hold.
        let covered: usize = comp.tests.iter().map(|t| t.covered_faults.len()).sum();
        assert_eq!(covered, report.tests.len());
    }

    #[test]
    fn critical_impact_screen_runs() {
        let (mac, cache, report) = generation();
        let comp = compact(
            &mac,
            &cache,
            &report,
            &CompactionOptions { impact: ImpactLevel::Critical, ..CompactionOptions::default() },
        )
        .unwrap();
        let covered: usize = comp.tests.iter().map(|t| t.covered_faults.len()).sum();
        assert_eq!(covered, report.tests.len());
    }
}
