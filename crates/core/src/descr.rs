//! Textual test-configuration descriptions (the paper's Fig. 1).
//!
//! The paper expresses test configurations as structured text naming the
//! controlled and observed nodes, the waveform templates, the return
//! value, and the attached parameters/variables, so that a test
//! engineer's work is reusable across macros of a type. This module
//! provides that exchange format: a [`ConfigDescription`] data structure,
//! a line-oriented parser ([`ConfigDescription::parse`]), and a
//! serializer (`Display`) that round-trips.
//!
//! ```text
//! macro type: IV-converter
//! test configuration: Step response 1
//! control Iin: step(base, elev, slew_rate=sl)
//! observe Vout: sample(rate=sa, time=t)
//! return: acc(dV(Vout))
//! parameter base: -2e-5 .. 2e-5
//! parameter elev: -4e-5 .. 4e-5
//! variable sl: 1e-8
//! seed base: 0
//! seed elev: 2e-5
//! ```

use std::fmt;

use crate::CoreError;

/// An action applied at (or observed from) a named node, with a template
/// expression such as `step(base, elev, slew_rate=sl)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PortAction {
    /// Standardized node name (e.g. `Iin`, `Vout`).
    pub node: String,
    /// Waveform or measurement template text.
    pub action: String,
}

/// A named test parameter with its constraint interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name (e.g. `base`).
    pub name: String,
    /// Lower constraint value.
    pub lo: f64,
    /// Upper constraint value.
    pub hi: f64,
}

/// A structured test-configuration description (Fig. 1 of the paper).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConfigDescription {
    /// The macro type sharing this description (e.g. `IV-converter`).
    pub macro_type: String,
    /// Title of the configuration (e.g. `Step response 1`).
    pub title: String,
    /// Controlled nodes with their stimulus templates.
    pub controls: Vec<PortAction>,
    /// Observed nodes with their measurement templates.
    pub observes: Vec<PortAction>,
    /// Return-value expression (e.g. `Max(dV(Vout))`).
    pub return_value: String,
    /// Attached test parameters with constraint values.
    pub parameters: Vec<ParamSpec>,
    /// Fixed variables (sample rates, test times, slew rates).
    pub variables: Vec<(String, f64)>,
    /// Seed parameter values, by parameter name.
    pub seed: Vec<(String, f64)>,
}

impl ConfigDescription {
    /// Parses the textual format shown in the module documentation.
    ///
    /// Blank lines and lines starting with `#` are ignored. Keys are
    /// case-insensitive. `parameter` lines use `name: lo .. hi`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Parse`] with a 1-based line number for malformed
    /// lines, unknown keys, duplicate parameters, seeds naming unknown
    /// parameters, or inverted intervals.
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        let mut d = ConfigDescription::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once(':').ok_or_else(|| CoreError::Parse {
                line: line_no,
                reason: format!("expected `key: value`, got `{line}`"),
            })?;
            let key = key.trim();
            // Only the keyword is case-insensitive; names (second token)
            // keep their case — node names are standardized identifiers.
            let keyword = key.split_whitespace().next().unwrap_or("").to_ascii_lowercase();
            let value = value.trim().to_string();
            let err = |reason: String| CoreError::Parse { line: line_no, reason };

            match keyword.as_str() {
                "macro" => d.macro_type = value,
                "test" => d.title = value,
                "return" => d.return_value = value,
                "control" | "observe" => {
                    let node = key
                        .split_whitespace()
                        .nth(1)
                        .ok_or_else(|| err("missing node name".to_string()))?
                        .to_string();
                    let pa = PortAction { node, action: value };
                    if keyword == "control" {
                        d.controls.push(pa);
                    } else {
                        d.observes.push(pa);
                    }
                }
                "parameter" => {
                    let name = key
                        .split_whitespace()
                        .nth(1)
                        .ok_or_else(|| err("missing parameter name".to_string()))?
                        .to_string();
                    if d.parameters.iter().any(|p| p.name == name) {
                        return Err(err(format!("duplicate parameter `{name}`")));
                    }
                    let (lo, hi) = value
                        .split_once("..")
                        .ok_or_else(|| err(format!("expected `lo .. hi`, got `{value}`")))?;
                    let lo: f64 = lo
                        .trim()
                        .parse()
                        .map_err(|_| err(format!("bad lower bound `{}`", lo.trim())))?;
                    let hi: f64 = hi
                        .trim()
                        .parse()
                        .map_err(|_| err(format!("bad upper bound `{}`", hi.trim())))?;
                    if lo > hi {
                        return Err(err(format!("inverted interval {lo} .. {hi}")));
                    }
                    d.parameters.push(ParamSpec { name, lo, hi });
                }
                "variable" => {
                    let name = key
                        .split_whitespace()
                        .nth(1)
                        .ok_or_else(|| err("missing variable name".to_string()))?
                        .to_string();
                    let v: f64 =
                        value.parse().map_err(|_| err(format!("bad value `{value}`")))?;
                    d.variables.push((name, v));
                }
                "seed" => {
                    let name = key
                        .split_whitespace()
                        .nth(1)
                        .ok_or_else(|| err("missing seed parameter name".to_string()))?
                        .to_string();
                    if !d.parameters.iter().any(|p| p.name == name) {
                        return Err(err(format!("seed names unknown parameter `{name}`")));
                    }
                    let v: f64 =
                        value.parse().map_err(|_| err(format!("bad value `{value}`")))?;
                    d.seed.push((name, v));
                }
                other => return Err(err(format!("unknown key `{other}`"))),
            }
        }
        Ok(d)
    }

    /// The seed as a vector ordered like [`ConfigDescription::parameters`]
    /// (missing entries default to the interval midpoint).
    pub fn seed_vector(&self) -> Vec<f64> {
        self.parameters
            .iter()
            .map(|p| {
                self.seed
                    .iter()
                    .find(|(n, _)| n == &p.name)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.5 * (p.lo + p.hi))
            })
            .collect()
    }
}

impl fmt::Display for ConfigDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "macro type: {}", self.macro_type)?;
        writeln!(f, "test configuration: {}", self.title)?;
        for c in &self.controls {
            writeln!(f, "control {}: {}", c.node, c.action)?;
        }
        for o in &self.observes {
            writeln!(f, "observe {}: {}", o.node, o.action)?;
        }
        writeln!(f, "return: {}", self.return_value)?;
        for p in &self.parameters {
            writeln!(f, "parameter {}: {:e} .. {:e}", p.name, p.lo, p.hi)?;
        }
        for (n, v) in &self.variables {
            writeln!(f, "variable {n}: {v:e}")?;
        }
        for (n, v) in &self.seed {
            writeln!(f, "seed {n}: {v:e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "\
# The paper's Fig. 1, in this crate's textual form.
macro type: IV-converter
test configuration: Step response 1
control Iin: step(base, elev, slew_rate=sl)
observe Vout: sample(rate=sa, time=t)
return: acc(dV(Vout))
parameter base: -2e-5 .. 2e-5
parameter elev: -4e-5 .. 4e-5
variable sl: 1e-8
variable sa: 1e8
variable t: 7.5e-6
seed base: 0
seed elev: 2e-5
";

    #[test]
    fn parses_the_fig1_example() {
        let d = ConfigDescription::parse(EXAMPLE).unwrap();
        assert_eq!(d.macro_type, "IV-converter");
        assert_eq!(d.title, "Step response 1");
        assert_eq!(d.controls.len(), 1);
        assert_eq!(d.controls[0].node, "Iin"); // names keep their case
        assert_eq!(d.observes[0].action, "sample(rate=sa, time=t)");
        assert_eq!(d.return_value, "acc(dV(Vout))");
        assert_eq!(d.parameters.len(), 2);
        assert_eq!(d.parameters[1].hi, 4e-5);
        assert_eq!(d.variables.len(), 3);
        assert_eq!(d.seed_vector(), vec![0.0, 2e-5]);
    }

    #[test]
    fn roundtrips_through_display() {
        let d = ConfigDescription::parse(EXAMPLE).unwrap();
        let text = d.to_string();
        let d2 = ConfigDescription::parse(&text).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn seed_defaults_to_midpoint() {
        let d = ConfigDescription::parse(
            "macro type: X\ntest configuration: T\nreturn: y\nparameter a: 0 .. 10\n",
        )
        .unwrap();
        assert_eq!(d.seed_vector(), vec![5.0]);
    }

    #[test]
    fn rejects_malformed_lines() {
        let bad = [
            ("no colon here", "expected"),
            ("parameter: 0 .. 1", "missing parameter name"),
            ("parameter a: 0", "expected `lo .. hi`"),
            ("parameter a: 5 .. 1", "inverted"),
            ("variable v: abc", "bad value"),
            ("bogus key: 1", "unknown key"),
            ("seed q: 1", "unknown parameter"),
        ];
        for (text, needle) in bad {
            let err = ConfigDescription::parse(text).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "`{text}` → `{msg}` (wanted `{needle}`)");
            assert!(msg.contains("line 1"), "line number missing in `{msg}`");
        }
    }

    #[test]
    fn duplicate_parameter_rejected() {
        let text = "parameter a: 0 .. 1\nparameter a: 0 .. 2\n";
        let err = ConfigDescription::parse(text).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let d = ConfigDescription::parse("\n# comment\nreturn: x\n\n").unwrap();
        assert_eq!(d.return_value, "x");
    }
}
