//! Test-set quality evaluation: fault coverage of an arbitrary test set
//! against a fault dictionary.

use std::sync::Arc;

use castg_faults::FaultDictionary;

use crate::cache::NominalCache;
use crate::compact::CompactionReport;
use crate::sensitivity::{is_detected, Evaluator};
use crate::{AnalogMacro, CoreError, TestConfiguration};

/// A concrete test: configuration plus parameter values.
#[derive(Clone)]
pub struct TestInstance {
    /// The configuration the test uses.
    pub config: Arc<dyn TestConfiguration>,
    /// The parameter values.
    pub params: Vec<f64>,
}

impl std::fmt::Debug for TestInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestInstance")
            .field("config", &self.config.name())
            .field("params", &self.params)
            .finish()
    }
}

/// Per-fault outcome of a coverage evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCoverage {
    /// Fault name.
    pub fault: String,
    /// The most negative sensitivity any test in the set achieved.
    pub best_sensitivity: f64,
    /// Index (into the test set) of the test achieving it.
    pub best_test: usize,
    /// Whether the fault is detected by the set.
    pub detected: bool,
}

/// Coverage of a test set over a dictionary.
#[derive(Debug, Clone, Default)]
pub struct CoverageReport {
    /// Per-fault outcomes, in dictionary order.
    pub per_fault: Vec<FaultCoverage>,
    /// Number of tests in the evaluated set.
    pub test_count: usize,
}

impl CoverageReport {
    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.per_fault.iter().filter(|f| f.detected).count()
    }

    /// Total number of faults evaluated.
    pub fn total(&self) -> usize {
        self.per_fault.len()
    }

    /// Fault coverage as a fraction in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 0.0;
        }
        self.detected() as f64 / self.total() as f64
    }

    /// Names of undetected faults (test escapes).
    pub fn escapes(&self) -> Vec<&str> {
        self.per_fault.iter().filter(|f| !f.detected).map(|f| f.fault.as_str()).collect()
    }

    /// Mean of the per-fault best sensitivities (lower = more margin).
    pub fn mean_best_sensitivity(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 0.0;
        }
        self.per_fault.iter().map(|f| f.best_sensitivity).sum::<f64>()
            / self.per_fault.len() as f64
    }
}

/// Evaluates a test set's coverage of `dictionary` (faults at their
/// dictionary impact).
///
/// # Errors
///
/// Fault-injection and nominal-simulation failures propagate; faulty
/// non-convergence counts as detection per the sensitivity convention.
pub fn evaluate_test_set(
    macro_def: &dyn AnalogMacro,
    cache: &NominalCache,
    tests: &[TestInstance],
    dictionary: &FaultDictionary,
) -> Result<CoverageReport, CoreError> {
    let nominal = macro_def.nominal_circuit();
    let mut report = CoverageReport { test_count: tests.len(), ..Default::default() };
    for fault in dictionary.iter() {
        let mut best = (0usize, f64::INFINITY);
        for (i, t) in tests.iter().enumerate() {
            let ev = Evaluator::new(t.config.as_ref(), &nominal, cache);
            let circuit = ev.inject(fault)?;
            let s = ev.sensitivity_of(&circuit, &t.params)?;
            if s < best.1 {
                best = (i, s);
            }
        }
        report.per_fault.push(FaultCoverage {
            fault: fault.name(),
            best_sensitivity: best.1,
            best_test: best.0,
            detected: is_detected(best.1),
        });
    }
    Ok(report)
}

/// Materializes the tests of a [`CompactionReport`] as [`TestInstance`]s
/// using the macro's configuration set.
///
/// # Errors
///
/// [`CoreError::Configuration`] if a compact test references a
/// configuration id the macro does not provide.
pub fn test_instances_from_compaction(
    macro_def: &dyn AnalogMacro,
    compaction: &CompactionReport,
) -> Result<Vec<TestInstance>, CoreError> {
    let configs = macro_def.configurations();
    compaction
        .tests
        .iter()
        .map(|t| {
            let config = configs
                .iter()
                .find(|c| c.id() == t.config_id)
                .ok_or_else(|| CoreError::Configuration {
                    config: t.config_name.clone(),
                    reason: format!("macro has no configuration with id {}", t.config_id),
                })?;
            Ok(TestInstance { config: Arc::clone(config), params: t.params.clone() })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::{compact, CompactionOptions};
    use crate::generate::{Generator, GeneratorOptions};
    use crate::synthetic::DividerMacro;
    use castg_numeric::{BrentOptions, PowellOptions};

    fn quick_options() -> GeneratorOptions {
        GeneratorOptions {
            threads: 2,
            powell: PowellOptions {
                ftol: 1e-3,
                max_iter: 6,
                line: BrentOptions { tol: 5e-3, max_iter: 10 },
            },
            brent: BrentOptions { tol: 1e-3, max_iter: 20 },
            ..GeneratorOptions::default()
        }
    }

    #[test]
    fn full_pipeline_coverage_on_divider() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let gen = Generator::with_options(&mac, &cache, quick_options());
        let dict = mac.fault_dictionary();
        let report = gen.generate(&dict);
        let comp = compact(&mac, &cache, &report, &CompactionOptions::default()).unwrap();
        let tests = test_instances_from_compaction(&mac, &comp).unwrap();
        let coverage = evaluate_test_set(&mac, &cache, &tests, &dict).unwrap();
        assert_eq!(coverage.total(), dict.len());
        // All three 10 kΩ divider bridges are detectable; the compacted
        // set must keep detecting each of them.
        assert_eq!(coverage.detected(), dict.len(), "escapes: {:?}", coverage.escapes());
        assert!(coverage.coverage() > 0.99);
        assert!(coverage.mean_best_sensitivity() < 0.0);
    }

    #[test]
    fn empty_test_set_detects_nothing() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let dict = mac.fault_dictionary();
        let coverage = evaluate_test_set(&mac, &cache, &[], &dict).unwrap();
        assert_eq!(coverage.detected(), 0);
        assert_eq!(coverage.escapes().len(), dict.len());
        assert_eq!(coverage.coverage(), 0.0);
    }

    #[test]
    fn empty_dictionary_yields_empty_report() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let coverage =
            evaluate_test_set(&mac, &cache, &[], &FaultDictionary::default()).unwrap();
        assert_eq!(coverage.total(), 0);
        assert_eq!(coverage.coverage(), 0.0);
    }

    #[test]
    fn debug_format_of_test_instance() {
        let mac = DividerMacro::new();
        let configs = crate::AnalogMacro::configurations(&mac);
        let t = TestInstance { config: Arc::clone(&configs[0]), params: vec![5.0] };
        let s = format!("{t:?}");
        assert!(s.contains("dc_out"));
        assert!(s.contains("5.0"));
    }
}
