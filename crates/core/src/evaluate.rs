//! Test-set quality evaluation: fault coverage of an arbitrary test set
//! against a fault dictionary.
//!
//! Coverage evaluation is the second compute-bound half of the
//! generate→evaluate pipeline: every fault × test pair costs one full
//! faulty-circuit simulation. Two structural choices keep it cheap:
//! the faulted circuit is injected **once per fault** and reused across
//! all tests (injection is configuration-independent), and the faults
//! are fanned out over a crossbeam worker queue exactly like
//! [`Generator::generate`](crate::Generator::generate). Worker results
//! land in per-fault slots, so the report is in dictionary order and
//! identical — test indices, sensitivities, everything — to a serial
//! evaluation.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use castg_faults::{Fault, FaultDictionary};
use castg_spice::Circuit;
use parking_lot::Mutex;

use crate::cache::NominalCache;
use crate::compact::CompactionReport;
use crate::sensitivity::{is_detected, Evaluator};
use crate::{AnalogMacro, CoreError, TestConfiguration};

/// A concrete test: configuration plus parameter values.
#[derive(Clone)]
pub struct TestInstance {
    /// The configuration the test uses.
    pub config: Arc<dyn TestConfiguration>,
    /// The parameter values.
    pub params: Vec<f64>,
}

impl std::fmt::Debug for TestInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestInstance")
            .field("config", &self.config.name())
            .field("params", &self.params)
            .finish()
    }
}

/// Per-fault outcome of a coverage evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCoverage {
    /// Fault name.
    pub fault: String,
    /// The most negative sensitivity any test in the set achieved.
    pub best_sensitivity: f64,
    /// Index (into the test set) of the test achieving it.
    pub best_test: usize,
    /// Whether the fault is detected by the set.
    pub detected: bool,
}

/// Coverage of a test set over a dictionary.
#[derive(Debug, Clone, Default)]
pub struct CoverageReport {
    /// Per-fault outcomes, in dictionary order.
    pub per_fault: Vec<FaultCoverage>,
    /// Number of tests in the evaluated set.
    pub test_count: usize,
}

impl CoverageReport {
    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.per_fault.iter().filter(|f| f.detected).count()
    }

    /// Total number of faults evaluated.
    pub fn total(&self) -> usize {
        self.per_fault.len()
    }

    /// Fault coverage as a fraction in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 0.0;
        }
        self.detected() as f64 / self.total() as f64
    }

    /// Names of undetected faults (test escapes).
    pub fn escapes(&self) -> Vec<&str> {
        self.per_fault.iter().filter(|f| !f.detected).map(|f| f.fault.as_str()).collect()
    }

    /// Mean of the per-fault best sensitivities (lower = more margin).
    pub fn mean_best_sensitivity(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 0.0;
        }
        self.per_fault.iter().map(|f| f.best_sensitivity).sum::<f64>()
            / self.per_fault.len() as f64
    }
}

/// Scores one fault against every test: injects the faulted circuit
/// once, then sweeps the tests over that single injection. Injection is
/// skipped entirely for an empty test set (nothing can detect, and a
/// fault that fails to inject must not fail the evaluation then).
fn coverage_for_fault(
    nominal: &Circuit,
    cache: &NominalCache,
    tests: &[TestInstance],
    fault: &Fault,
) -> Result<FaultCoverage, CoreError> {
    let mut best = (0usize, f64::INFINITY);
    if !tests.is_empty() {
        let faulty = fault.inject(nominal)?;
        for (i, t) in tests.iter().enumerate() {
            let ev = Evaluator::new(t.config.as_ref(), nominal, cache);
            let s = ev.sensitivity_of(&faulty, &t.params)?;
            if s < best.1 {
                best = (i, s);
            }
        }
    }
    Ok(FaultCoverage {
        fault: fault.name(),
        best_sensitivity: best.1,
        best_test: best.0,
        detected: is_detected(best.1),
    })
}

/// Evaluates a test set's coverage of `dictionary` (faults at their
/// dictionary impact), fanning the faults out over all available cores.
///
/// Equivalent to [`evaluate_test_set_with_threads`] with the hardware
/// thread count.
///
/// # Errors
///
/// Fault-injection and nominal-simulation failures propagate; faulty
/// non-convergence counts as detection per the sensitivity convention.
pub fn evaluate_test_set(
    macro_def: &dyn AnalogMacro,
    cache: &NominalCache,
    tests: &[TestInstance],
    dictionary: &FaultDictionary,
) -> Result<CoverageReport, CoreError> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    evaluate_test_set_with_threads(macro_def, cache, tests, dictionary, threads)
}

/// [`evaluate_test_set`] with an explicit worker-thread count.
///
/// Faults are independent, so they are distributed over a worker queue
/// (the same crossbeam pattern as
/// [`Generator::generate`](crate::Generator::generate)); each worker
/// claims the next undone fault, injects it once and scores every test
/// against that one faulted circuit. `threads = 1` degenerates to a
/// fully serial evaluation; any thread count produces the identical
/// report.
///
/// # Errors
///
/// As for [`evaluate_test_set`]. A failing fault aborts the remaining
/// queue (fail-fast, like the serial path); among the faults that were
/// evaluated, the earliest failure in dictionary order is returned.
pub fn evaluate_test_set_with_threads(
    macro_def: &dyn AnalogMacro,
    cache: &NominalCache,
    tests: &[TestInstance],
    dictionary: &FaultDictionary,
    threads: usize,
) -> Result<CoverageReport, CoreError> {
    let nominal = macro_def.nominal_circuit();
    let n = dictionary.len();
    let mut report = CoverageReport { test_count: tests.len(), ..Default::default() };

    let workers = threads.clamp(1, n.max(1));
    // Fanning out costs a few thread spawns; below a handful of
    // simulations the serial sweep wins outright.
    if workers <= 1 || n <= 1 || n * tests.len() < 8 {
        for fault in dictionary.iter() {
            report.per_fault.push(coverage_for_fault(&nominal, cache, tests, fault)?);
        }
        return Ok(report);
    }

    let results: Vec<Mutex<Option<Result<FaultCoverage, CoreError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let counter = AtomicUsize::new(0);
    // A failed fault aborts the queue so the error surfaces without
    // paying for the remaining simulations (matching the serial
    // path's fail-fast behavior; in-flight faults still finish).
    let failed = AtomicBool::new(false);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= n || failed.load(Ordering::Relaxed) {
                    break;
                }
                let fault = &dictionary.faults()[i];
                let outcome = coverage_for_fault(&nominal, cache, tests, fault);
                if outcome.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                *results[i].lock() = Some(outcome);
            });
        }
    })
    .expect("coverage workers must not panic");

    let aborted = failed.load(Ordering::Relaxed);
    for (i, slot) in results.into_iter().enumerate() {
        match slot.into_inner() {
            Some(outcome) => report.per_fault.push(outcome?),
            // A slot can be empty only because the queue aborted
            // before its worker claimed it; the stored error below (or
            // above) is returned instead of a partial report.
            None if aborted => continue,
            None => {
                return Err(CoreError::InvalidOptions {
                    reason: format!(
                        "coverage worker never ran fault {}",
                        dictionary.faults()[i].name()
                    ),
                })
            }
        }
    }
    debug_assert!(!aborted, "an aborted run always stores at least one error");
    Ok(report)
}

/// Materializes the tests of a [`CompactionReport`] as [`TestInstance`]s
/// using the macro's configuration set.
///
/// # Errors
///
/// [`CoreError::Configuration`] if a compact test references a
/// configuration id the macro does not provide.
pub fn test_instances_from_compaction(
    macro_def: &dyn AnalogMacro,
    compaction: &CompactionReport,
) -> Result<Vec<TestInstance>, CoreError> {
    let configs = macro_def.configurations();
    compaction
        .tests
        .iter()
        .map(|t| {
            let config = configs
                .iter()
                .find(|c| c.id() == t.config_id)
                .ok_or_else(|| CoreError::Configuration {
                    config: t.config_name.clone(),
                    reason: format!("macro has no configuration with id {}", t.config_id),
                })?;
            Ok(TestInstance { config: Arc::clone(config), params: t.params.clone() })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::{compact, CompactionOptions};
    use crate::generate::{Generator, GeneratorOptions};
    use crate::synthetic::DividerMacro;
    use castg_numeric::{BrentOptions, PowellOptions};

    fn quick_options() -> GeneratorOptions {
        GeneratorOptions {
            threads: 2,
            powell: PowellOptions {
                ftol: 1e-3,
                max_iter: 6,
                line: BrentOptions { tol: 5e-3, max_iter: 10 },
            },
            brent: BrentOptions { tol: 1e-3, max_iter: 20 },
            ..GeneratorOptions::default()
        }
    }

    #[test]
    fn full_pipeline_coverage_on_divider() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let gen = Generator::with_options(&mac, &cache, quick_options());
        let dict = mac.fault_dictionary();
        let report = gen.generate(&dict);
        let comp = compact(&mac, &cache, &report, &CompactionOptions::default()).unwrap();
        let tests = test_instances_from_compaction(&mac, &comp).unwrap();
        let coverage = evaluate_test_set(&mac, &cache, &tests, &dict).unwrap();
        assert_eq!(coverage.total(), dict.len());
        // All three 10 kΩ divider bridges are detectable; the compacted
        // set must keep detecting each of them.
        assert_eq!(coverage.detected(), dict.len(), "escapes: {:?}", coverage.escapes());
        assert!(coverage.coverage() > 0.99);
        assert!(coverage.mean_best_sensitivity() < 0.0);
    }

    /// The parallel fan-out must reproduce the serial (threads = 1)
    /// report exactly: same fault order, same best test indices, same
    /// best sensitivities bit for bit.
    #[test]
    fn parallel_coverage_matches_serial() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let gen = Generator::with_options(&mac, &cache, quick_options());
        let dict = mac.fault_dictionary();
        let report = gen.generate(&dict);
        let comp = compact(&mac, &cache, &report, &CompactionOptions::default()).unwrap();
        let tests = test_instances_from_compaction(&mac, &comp).unwrap();

        let serial =
            evaluate_test_set_with_threads(&mac, &cache, &tests, &dict, 1).unwrap();
        for threads in [2, 4, 8] {
            let parallel =
                evaluate_test_set_with_threads(&mac, &cache, &tests, &dict, threads)
                    .unwrap();
            assert_eq!(parallel.test_count, serial.test_count);
            assert_eq!(parallel.per_fault, serial.per_fault, "threads = {threads}");
        }
    }

    #[test]
    fn empty_test_set_detects_nothing() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let dict = mac.fault_dictionary();
        let coverage = evaluate_test_set(&mac, &cache, &[], &dict).unwrap();
        assert_eq!(coverage.detected(), 0);
        assert_eq!(coverage.escapes().len(), dict.len());
        assert_eq!(coverage.coverage(), 0.0);
    }

    #[test]
    fn empty_dictionary_yields_empty_report() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let coverage =
            evaluate_test_set(&mac, &cache, &[], &FaultDictionary::default()).unwrap();
        assert_eq!(coverage.total(), 0);
        assert_eq!(coverage.coverage(), 0.0);
    }

    #[test]
    fn debug_format_of_test_instance() {
        let mac = DividerMacro::new();
        let configs = crate::AnalogMacro::configurations(&mac);
        let t = TestInstance { config: Arc::clone(&configs[0]), params: vec![5.0] };
        let s = format!("{t:?}");
        assert!(s.contains("dc_out"));
        assert!(s.contains("5.0"));
    }
}
