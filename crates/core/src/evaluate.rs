//! Test-set quality evaluation: fault coverage of an arbitrary test set
//! against a fault dictionary, run as a structure-sharing **fault
//! campaign**.
//!
//! Coverage evaluation is the second compute-bound half of the
//! generate→evaluate pipeline: every fault × test pair costs one full
//! faulty-circuit simulation. The campaign engine keeps it cheap by
//! amortizing every piece of per-circuit compilation across the run:
//!
//! * the nominal circuit's assembly plan is compiled **once** and
//!   shared (immutably) by every nominal measurement on every worker;
//! * every fault is injected **once per campaign**, by default through
//!   the delta path ([`Fault::inject`] patching the nominal plan —
//!   bridges are pure delta-stamps; see [`InjectionMode`]), and the
//!   variant — circuit, plan, sparse template, symbolic analysis — is
//!   shared read-only by all its tests;
//! * workers pull `(fault, test)` **work items** from one queue, so a
//!   campaign with few faults but many tests (or vice versa) still
//!   saturates every core.
//!
//! Per-cell results land in per-pair slots and are reduced in
//! dictionary order, so the report is identical — test indices,
//! sensitivities, everything, bit for bit — at any worker count and
//! under either injection mode.
//!
//! # Robustness: campaigns never die on a broken variant
//!
//! A fault dictionary is untrusted input: a hard bridge can produce a
//! variant whose MNA system is singular, one that no Newton strategy
//! converges on, one that burns unbounded wall-clock, or (in the worst
//! case) one that trips a panic somewhere in the solver stack. None of
//! these may kill the campaign — each work item is wrapped in
//! [`std::panic::catch_unwind`] plus an optional per-item solve budget
//! ([`CampaignOptions::max_newton_iters`] /
//! [`CampaignOptions::budget_ms`]), and every breakdown degrades to a
//! typed per-fault [`FaultOutcome`] in the report. Only *nominal*
//! failures and contract violations stay hard errors: the nominal
//! circuit is the caller's own macro and must simulate cleanly.
//! Outcome tallies and the campaign's [`LadderStats`] are bit-identical
//! at any worker count (wall-clock budgets excepted — see
//! [`CampaignOptions::budget_ms`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use castg_faults::FaultDictionary;
use castg_spice::{ladder_stats, with_solve_budget, Circuit, LadderStats};
use parking_lot::Mutex;

use crate::cache::NominalCache;
use crate::compact::CompactionReport;
use crate::sensitivity::{is_detected, Evaluator, SimFailure};
use crate::{AnalogMacro, CoreError, TestConfiguration};

/// How the campaign engine materializes its faulted circuit variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectionMode {
    /// Delta injection ([`Fault::inject`] on a plan-compiled nominal):
    /// bridge variants patch the nominal circuit's compiled plan
    /// (delta-stamps) instead of recompiling; structural faults
    /// (pinholes) recompile once per campaign. The default.
    #[default]
    Delta,
    /// Reference path ([`Fault::inject_rebuilt`]): every variant
    /// recompiles plan, sparse template and symbolic analysis from its
    /// netlist. Exists so differential harnesses can pin the delta
    /// path's bit-identity; never faster.
    Rebuild,
}

/// Options of a coverage-evaluation campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads pulling `(fault, test)` work items.
    pub threads: usize,
    /// Variant materialization path.
    pub injection: InjectionMode,
    /// Newton-iteration allowance per `(fault, test)` work item,
    /// spanning every analysis the test performs on its faulted
    /// variant. Exhaustion degrades the item to
    /// [`FaultOutcome::Unconverged`]. Deterministic: the same item
    /// exhausts at the same iteration on any machine at any thread
    /// count. `None` (the default) leaves only the solver's own limits.
    pub max_newton_iters: Option<usize>,
    /// Wall-clock budget per `(fault, test)` work item, in
    /// milliseconds; overrun degrades the item to
    /// [`FaultOutcome::TimedOut`]. Inherently machine- and
    /// scheduling-dependent — campaigns that must be bit-identical
    /// across thread counts should use
    /// [`CampaignOptions::max_newton_iters`] instead. `None` (the
    /// default) never times out.
    pub budget_ms: Option<u64>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            injection: InjectionMode::default(),
            max_newton_iters: None,
            budget_ms: None,
        }
    }
}

/// A concrete test: configuration plus parameter values.
#[derive(Clone)]
pub struct TestInstance {
    /// The configuration the test uses.
    pub config: Arc<dyn TestConfiguration>,
    /// The parameter values.
    pub params: Vec<f64>,
}

impl std::fmt::Debug for TestInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestInstance")
            .field("config", &self.config.name())
            .field("params", &self.params)
            .finish()
    }
}

/// Robustness classification of one fault's campaign cells — *how* the
/// verdict was reached, on top of the `detected` flag.
///
/// When a fault's tests disagree (one detects cleanly, another panics),
/// the *worst* cell classifies the fault, in the severity order
/// `Panicked > TimedOut > Singular > Unconverged > Detected/Undetected`
/// — a fault is only as trustworthy as its least trustworthy
/// simulation. Breakdown cells still score
/// [`crate::SENSITIVITY_SIM_FAILURE`] (counted as detected), so
/// coverage percentages are independent of the classification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// Every cell simulated (cleanly or as a counted breakdown) and the
    /// best sensitivity crossed the detection threshold.
    Detected,
    /// Every cell simulated and no test detected the fault (a test
    /// escape).
    Undetected,
    /// At least one cell exhausted the Newton strategy ladder or its
    /// iteration budget.
    Unconverged,
    /// At least one cell's variant was singular at the named unknown.
    Singular {
        /// The unknown (first in test order) whose pivot vanished.
        unknown: String,
    },
    /// At least one cell overran its wall-clock budget.
    TimedOut,
    /// At least one cell panicked (caught and isolated by the worker).
    Panicked,
    /// The fault could not be injected into the nominal circuit at all
    /// (e.g. a degenerate self-bridge); no cell ever ran.
    InjectionFailed {
        /// The injection error, rendered.
        reason: String,
    },
}

impl std::fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultOutcome::Detected => f.write_str("detected"),
            FaultOutcome::Undetected => f.write_str("undetected"),
            FaultOutcome::Unconverged => f.write_str("unconverged"),
            FaultOutcome::Singular { unknown } => write!(f, "singular at {unknown}"),
            FaultOutcome::TimedOut => f.write_str("timed out"),
            FaultOutcome::Panicked => f.write_str("panicked"),
            FaultOutcome::InjectionFailed { reason } => write!(f, "injection failed: {reason}"),
        }
    }
}

/// Campaign-wide outcome counts, one per [`FaultOutcome`] variant.
/// Sums to the dictionary size; bit-identical at any worker count
/// (wall-clock budgets excepted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeTally {
    /// Faults classified [`FaultOutcome::Detected`].
    pub detected: usize,
    /// Faults classified [`FaultOutcome::Undetected`].
    pub undetected: usize,
    /// Faults classified [`FaultOutcome::Unconverged`].
    pub unconverged: usize,
    /// Faults classified [`FaultOutcome::Singular`].
    pub singular: usize,
    /// Faults classified [`FaultOutcome::TimedOut`].
    pub timed_out: usize,
    /// Faults classified [`FaultOutcome::Panicked`].
    pub panicked: usize,
    /// Faults classified [`FaultOutcome::InjectionFailed`].
    pub injection_failed: usize,
}

impl OutcomeTally {
    /// Faults whose verdict is robustness-suspect: unconverged, timed
    /// out or panicked (the `--strict` failure set; singular and
    /// injection-failed variants are deterministic properties of the
    /// fault itself, not solver fragility).
    pub fn suspect(&self) -> usize {
        self.unconverged + self.timed_out + self.panicked
    }
}

/// Per-fault outcome of a coverage evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCoverage {
    /// Fault name.
    pub fault: String,
    /// The most negative sensitivity any test in the set achieved.
    pub best_sensitivity: f64,
    /// Index (into the test set) of the test achieving it.
    pub best_test: usize,
    /// Whether the fault is detected by the set.
    pub detected: bool,
    /// How the verdict was reached (robustness classification).
    pub outcome: FaultOutcome,
}

/// Coverage of a test set over a dictionary.
#[derive(Debug, Clone, Default)]
pub struct CoverageReport {
    /// Per-fault outcomes, in dictionary order.
    pub per_fault: Vec<FaultCoverage>,
    /// Number of tests in the evaluated set.
    pub test_count: usize,
    /// Convergence-ladder statistics of every *faulted* solve the
    /// campaign ran (nominal measurements are excluded — they are
    /// cached, shared and pre-warmed outside the accounted window).
    /// Landings and iteration totals are bit-identical at any worker
    /// count.
    pub ladder: LadderStats,
}

impl CoverageReport {
    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.per_fault.iter().filter(|f| f.detected).count()
    }

    /// Total number of faults evaluated.
    pub fn total(&self) -> usize {
        self.per_fault.len()
    }

    /// Fault coverage as a fraction in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 0.0;
        }
        self.detected() as f64 / self.total() as f64
    }

    /// Names of undetected faults (test escapes).
    pub fn escapes(&self) -> Vec<&str> {
        self.per_fault.iter().filter(|f| !f.detected).map(|f| f.fault.as_str()).collect()
    }

    /// Mean of the per-fault best sensitivities (lower = more margin).
    pub fn mean_best_sensitivity(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 0.0;
        }
        self.per_fault.iter().map(|f| f.best_sensitivity).sum::<f64>()
            / self.per_fault.len() as f64
    }

    /// Counts the per-fault outcomes by [`FaultOutcome`] variant.
    pub fn tally(&self) -> OutcomeTally {
        let mut t = OutcomeTally::default();
        for f in &self.per_fault {
            match f.outcome {
                FaultOutcome::Detected => t.detected += 1,
                FaultOutcome::Undetected => t.undetected += 1,
                FaultOutcome::Unconverged => t.unconverged += 1,
                FaultOutcome::Singular { .. } => t.singular += 1,
                FaultOutcome::TimedOut => t.timed_out += 1,
                FaultOutcome::Panicked => t.panicked += 1,
                FaultOutcome::InjectionFailed { .. } => t.injection_failed += 1,
            }
        }
        t
    }
}

/// One `(fault, test)` work item: scores one test against one shared
/// injected variant, returning the sensitivity plus the breakdown
/// classification when the faulted simulation broke down.
fn evaluate_cell(
    nominal: &Circuit,
    cache: &NominalCache,
    variant: &Circuit,
    test: &TestInstance,
) -> Result<(f64, Option<SimFailure>), CoreError> {
    Evaluator::new(test.config.as_ref(), nominal, cache).sensitivity_outcome(variant, &test.params)
}

/// What one campaign cell produced (hard errors are stored separately,
/// as `Err`, and abort the queue).
#[derive(Debug)]
enum CellOutcome {
    /// The cell scored: sensitivity plus, when the faulted simulation
    /// broke down, the classification.
    Scored(f64, Option<SimFailure>),
    /// The cell panicked; the worker caught it at the item boundary.
    Panicked,
}

/// Shared per-fault variant slot: injected lazily by the first work
/// item that needs it, shared by `Arc` while cells are in flight, and
/// retired (the circuit dropped) by the last cell — the heavy per-
/// variant state is resident only for the faults currently being
/// worked, not the whole dictionary, and injection itself happens
/// inside the worker pool.
struct VariantSlot {
    state: Mutex<VariantState>,
    /// Injection failure, rendered, parked for the reduce pass (which
    /// types it as [`FaultOutcome::InjectionFailed`] — a degenerate
    /// fault site is a property of the dictionary, not an error).
    error: Mutex<Option<String>>,
    /// Cells of this fault not yet finished.
    remaining: AtomicUsize,
}

enum VariantState {
    /// Not yet injected.
    Pending,
    /// Injected and live; cells clone the `Arc`.
    Ready(Arc<Circuit>),
    /// Injection failed (reason parked in `VariantSlot::error`).
    Failed,
    /// Every cell finished; the circuit has been dropped.
    Retired,
}

impl VariantSlot {
    fn new(cells: usize) -> Self {
        VariantSlot {
            state: Mutex::new(VariantState::Pending),
            error: Mutex::new(None),
            remaining: AtomicUsize::new(cells),
        }
    }

    /// The shared injected variant, injecting on first use; `None`
    /// after an injection failure.
    fn acquire(
        &self,
        fault: &castg_faults::Fault,
        nominal: &Circuit,
        mode: InjectionMode,
    ) -> Option<Arc<Circuit>> {
        let mut state = self.state.lock();
        match &*state {
            VariantState::Pending => {
                let injected = match mode {
                    InjectionMode::Delta => fault.inject(nominal),
                    InjectionMode::Rebuild => fault.inject_rebuilt(nominal),
                };
                match injected {
                    Ok(circuit) => {
                        let circuit = Arc::new(circuit);
                        *state = VariantState::Ready(Arc::clone(&circuit));
                        Some(circuit)
                    }
                    Err(e) => {
                        *self.error.lock() = Some(e.to_string());
                        *state = VariantState::Failed;
                        None
                    }
                }
            }
            VariantState::Ready(circuit) => Some(Arc::clone(circuit)),
            VariantState::Failed => None,
            VariantState::Retired => {
                unreachable!("every cell is claimed exactly once; none arrive after retirement")
            }
        }
    }

    /// Marks one cell finished; the last one drops the circuit.
    fn release(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.state.lock() = VariantState::Retired;
        }
    }
}

/// Evaluates a test set's coverage of `dictionary` (faults at their
/// dictionary impact) with default [`CampaignOptions`] (all cores,
/// delta injection).
///
/// # Errors
///
/// Only nominal-simulation failures and contract violations propagate;
/// faulted-variant breakdowns (panics, non-convergence, singular
/// systems, budget overruns, injection failures) land as typed
/// [`FaultOutcome`]s on the per-fault rows instead of erroring.
pub fn evaluate_test_set(
    macro_def: &dyn AnalogMacro,
    cache: &NominalCache,
    tests: &[TestInstance],
    dictionary: &FaultDictionary,
) -> Result<CoverageReport, CoreError> {
    evaluate_campaign(macro_def, cache, tests, dictionary, &CampaignOptions::default())
}

/// [`evaluate_test_set`] with an explicit worker-thread count.
///
/// # Errors
///
/// As for [`evaluate_test_set`].
pub fn evaluate_test_set_with_threads(
    macro_def: &dyn AnalogMacro,
    cache: &NominalCache,
    tests: &[TestInstance],
    dictionary: &FaultDictionary,
    threads: usize,
) -> Result<CoverageReport, CoreError> {
    evaluate_campaign(
        macro_def,
        cache,
        tests,
        dictionary,
        &CampaignOptions { threads, ..CampaignOptions::default() },
    )
}

/// The campaign engine behind every coverage evaluation.
///
/// Fans the full `fault × test` grid out as independent work items
/// over [`CampaignOptions::threads`] workers. Each dictionary fault is
/// injected exactly once per campaign (per
/// [`CampaignOptions::injection`]), lazily, by whichever work item
/// touches it first; the variant is shared read-only by its cells and
/// dropped by the last one, so the heavy objects — circuits, plans,
/// templates, symbolic analyses — are resident only for faults in
/// flight (the per-cell scalar slots still span the whole grid until
/// the reduce). Per-cell sensitivities land
/// in per-pair slots and are reduced to per-fault outcomes in
/// dictionary order, so the report — test indices, sensitivities,
/// everything — is bit-identical at any worker count and under either
/// injection mode. `threads = 1` (or a grid too small to be worth
/// fanning out) degenerates to a serial sweep over the same work
/// items.
///
/// # Errors
///
/// Nominal-simulation failures and contract violations propagate; a
/// hard-failing work item aborts the remaining queue (fail-fast), and
/// the earliest failure in `(fault, test)` dictionary order among the
/// evaluated items is returned. *Faulted-variant* breakdowns — panics,
/// non-convergence, singular systems, budget overruns, and injection
/// failures on degenerate fault sites — never error: they degrade to
/// typed [`FaultOutcome`]s.
pub fn evaluate_campaign(
    macro_def: &dyn AnalogMacro,
    cache: &NominalCache,
    tests: &[TestInstance],
    dictionary: &FaultDictionary,
    options: &CampaignOptions,
) -> Result<CoverageReport, CoreError> {
    let nominal = macro_def.nominal_circuit();
    let n = dictionary.len();
    let t = tests.len();
    let mut report = CoverageReport { test_count: t, ..Default::default() };

    if t == 0 {
        // Nothing can detect anything; do not even inject.
        for fault in dictionary.iter() {
            report.per_fault.push(FaultCoverage {
                fault: fault.name(),
                best_sensitivity: f64::INFINITY,
                best_test: 0,
                detected: false,
                outcome: FaultOutcome::Undetected,
            });
        }
        return Ok(report);
    }

    // Compile the nominal plan before anything forks: every nominal
    // measurement shares it, and delta injection derives each variant's
    // plan from it.
    nominal.compile_plan();

    // Pre-warm every test's nominal measurement before the fan-out.
    // Three birds: nominal failures surface as hard errors here, with
    // no campaign machinery in the way; the per-item solve budgets
    // below can never be charged for (or exhausted by) a nominal
    // solve; and the workers' ladder statistics count faulted solves
    // only, so `CoverageReport::ladder` is a pure function of the
    // (fault, test) grid.
    for test in tests {
        Evaluator::new(test.config.as_ref(), &nominal, cache).nominal(&test.params)?;
    }

    // One injection per fault per campaign, performed lazily inside the
    // worker pool by whichever work item touches the fault first; the
    // variant is shared read-only by its cells and dropped by the last.
    let variants: Vec<VariantSlot> = (0..n).map(|_| VariantSlot::new(t)).collect();

    let total = n * t;
    let workers = options.threads.clamp(1, total.max(1));
    let cells: Vec<Mutex<Option<Result<CellOutcome, CoreError>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let counter = AtomicUsize::new(0);
    // Only a hard-failing cell (nominal failure, contract violation)
    // aborts the queue; faulted breakdowns are typed outcomes and the
    // campaign keeps going. In-flight cells still finish.
    let failed = AtomicBool::new(false);
    let ladder_total: Mutex<LadderStats> = Mutex::new(LadderStats::default());
    let work = || {
        let stats_before = ladder_stats();
        loop {
            let i = counter.fetch_add(1, Ordering::Relaxed);
            if i >= total || failed.load(Ordering::Relaxed) {
                break;
            }
            let slot = &variants[i / t];
            // The whole work item — injection included — runs inside
            // `catch_unwind`: a panicking variant poisons nothing (the
            // circuit is shared read-only, parking_lot locks release on
            // unwind without poisoning, and a panic mid-compute in the
            // nominal cache inserts nothing) and degrades to a typed
            // per-cell outcome instead of tearing the campaign down.
            let item = catch_unwind(AssertUnwindSafe(|| {
                match slot.acquire(&dictionary.faults()[i / t], &nominal, options.injection) {
                    Some(variant) => {
                        with_solve_budget(options.max_newton_iters, options.budget_ms, || {
                            evaluate_cell(&nominal, cache, &variant, &tests[i % t]).map(Some)
                        })
                    }
                    // Injection failed; the reason is parked in the
                    // slot and the fault's cells all stay empty.
                    None => Ok(None),
                }
            }));
            match item {
                Ok(Ok(Some((s, failure)))) => {
                    *cells[i].lock() = Some(Ok(CellOutcome::Scored(s, failure)));
                }
                Ok(Ok(None)) => {}
                Ok(Err(e)) => {
                    failed.store(true, Ordering::Relaxed);
                    *cells[i].lock() = Some(Err(e));
                }
                Err(_panic) => {
                    *cells[i].lock() = Some(Ok(CellOutcome::Panicked));
                }
            }
            slot.release();
        }
        let delta = ladder_stats().since(&stats_before);
        let mut sum = ladder_total.lock();
        *sum = *sum + delta;
    };
    // Fanning out costs a few thread spawns; below a handful of
    // simulations the serial sweep wins outright.
    if workers <= 1 || total < 8 {
        work();
    } else {
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| work());
            }
        })
        .expect("campaign workers are panic-isolated per work item");
    }
    report.ladder = ladder_total.into_inner();

    let mut outcomes = cells.into_iter().map(|m| m.into_inner());
    if failed.load(Ordering::Relaxed) {
        // Return the earliest hard failure in (fault, test) order
        // (cells never evaluated because of the abort are skipped).
        for outcome in outcomes {
            if let Some(Err(e)) = outcome {
                return Err(e);
            }
        }
        unreachable!("an aborted campaign always stores at least one error");
    }
    for (fault, slot) in dictionary.iter().zip(variants) {
        if let Some(reason) = slot.error.into_inner() {
            // No cell of this fault ever ran; skip their (empty) slots.
            for _ in 0..t {
                outcomes.next();
            }
            report.per_fault.push(FaultCoverage {
                fault: fault.name(),
                best_sensitivity: f64::INFINITY,
                best_test: 0,
                detected: false,
                outcome: FaultOutcome::InjectionFailed { reason },
            });
            continue;
        }
        let mut best = (0usize, f64::INFINITY);
        let mut panicked = false;
        let mut timed_out = false;
        let mut singular: Option<String> = None;
        let mut unconverged = false;
        for ti in 0..t {
            let cell = outcomes.next().flatten().unwrap_or_else(|| {
                Err(CoreError::InvalidOptions {
                    reason: format!("campaign never ran fault {} test {ti}", fault.name()),
                })
            })?;
            match cell {
                CellOutcome::Scored(s, failure) => {
                    if s < best.1 {
                        best = (ti, s);
                    }
                    match failure {
                        Some(SimFailure::TimedOut) => timed_out = true,
                        Some(SimFailure::Singular { unknown }) => {
                            singular.get_or_insert(unknown);
                        }
                        Some(SimFailure::Unconverged) => unconverged = true,
                        None => {}
                    }
                }
                CellOutcome::Panicked => panicked = true,
            }
        }
        // Severity order: the least trustworthy cell classifies the
        // fault (the detected flag still reflects the best score).
        let outcome = if panicked {
            FaultOutcome::Panicked
        } else if timed_out {
            FaultOutcome::TimedOut
        } else if let Some(unknown) = singular {
            FaultOutcome::Singular { unknown }
        } else if unconverged {
            FaultOutcome::Unconverged
        } else if is_detected(best.1) {
            FaultOutcome::Detected
        } else {
            FaultOutcome::Undetected
        };
        report.per_fault.push(FaultCoverage {
            fault: fault.name(),
            best_sensitivity: best.1,
            best_test: best.0,
            detected: is_detected(best.1),
            outcome,
        });
    }
    Ok(report)
}

/// Materializes the tests of a [`CompactionReport`] as [`TestInstance`]s
/// using the macro's configuration set.
///
/// # Errors
///
/// [`CoreError::Configuration`] if a compact test references a
/// configuration id the macro does not provide.
pub fn test_instances_from_compaction(
    macro_def: &dyn AnalogMacro,
    compaction: &CompactionReport,
) -> Result<Vec<TestInstance>, CoreError> {
    let configs = macro_def.configurations();
    compaction
        .tests
        .iter()
        .map(|t| {
            let config = configs
                .iter()
                .find(|c| c.id() == t.config_id)
                .ok_or_else(|| CoreError::Configuration {
                    config: t.config_name.clone(),
                    reason: format!("macro has no configuration with id {}", t.config_id),
                })?;
            Ok(TestInstance { config: Arc::clone(config), params: t.params.clone() })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::{compact, CompactionOptions};
    use crate::generate::{Generator, GeneratorOptions};
    use crate::synthetic::DividerMacro;
    use castg_numeric::{BrentOptions, PowellOptions};

    fn quick_options() -> GeneratorOptions {
        GeneratorOptions {
            threads: 2,
            powell: PowellOptions {
                ftol: 1e-3,
                max_iter: 6,
                line: BrentOptions { tol: 5e-3, max_iter: 10 },
            },
            brent: BrentOptions { tol: 1e-3, max_iter: 20 },
            ..GeneratorOptions::default()
        }
    }

    #[test]
    fn full_pipeline_coverage_on_divider() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let gen = Generator::with_options(&mac, &cache, quick_options());
        let dict = mac.fault_dictionary();
        let report = gen.generate(&dict);
        let comp = compact(&mac, &cache, &report, &CompactionOptions::default()).unwrap();
        let tests = test_instances_from_compaction(&mac, &comp).unwrap();
        let coverage = evaluate_test_set(&mac, &cache, &tests, &dict).unwrap();
        assert_eq!(coverage.total(), dict.len());
        // All three 10 kΩ divider bridges are detectable; the compacted
        // set must keep detecting each of them.
        assert_eq!(coverage.detected(), dict.len(), "escapes: {:?}", coverage.escapes());
        assert!(coverage.coverage() > 0.99);
        assert!(coverage.mean_best_sensitivity() < 0.0);
    }

    /// The parallel fan-out must reproduce the serial (threads = 1)
    /// report exactly: same fault order, same best test indices, same
    /// best sensitivities bit for bit.
    #[test]
    fn parallel_coverage_matches_serial() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let gen = Generator::with_options(&mac, &cache, quick_options());
        let dict = mac.fault_dictionary();
        let report = gen.generate(&dict);
        let comp = compact(&mac, &cache, &report, &CompactionOptions::default()).unwrap();
        let tests = test_instances_from_compaction(&mac, &comp).unwrap();

        let serial =
            evaluate_test_set_with_threads(&mac, &cache, &tests, &dict, 1).unwrap();
        for threads in [2, 4, 8] {
            let parallel =
                evaluate_test_set_with_threads(&mac, &cache, &tests, &dict, threads)
                    .unwrap();
            assert_eq!(parallel.test_count, serial.test_count);
            assert_eq!(parallel.per_fault, serial.per_fault, "threads = {threads}");
        }
    }

    #[test]
    fn empty_test_set_detects_nothing() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let dict = mac.fault_dictionary();
        let coverage = evaluate_test_set(&mac, &cache, &[], &dict).unwrap();
        assert_eq!(coverage.detected(), 0);
        assert_eq!(coverage.escapes().len(), dict.len());
        assert_eq!(coverage.coverage(), 0.0);
    }

    #[test]
    fn empty_dictionary_yields_empty_report() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let coverage =
            evaluate_test_set(&mac, &cache, &[], &FaultDictionary::default()).unwrap();
        assert_eq!(coverage.total(), 0);
        assert_eq!(coverage.coverage(), 0.0);
    }

    #[test]
    fn debug_format_of_test_instance() {
        let mac = DividerMacro::new();
        let configs = crate::AnalogMacro::configurations(&mac);
        let t = TestInstance { config: Arc::clone(&configs[0]), params: vec![5.0] };
        let s = format!("{t:?}");
        assert!(s.contains("dc_out"));
        assert!(s.contains("5.0"));
    }
}
