//! The sensitivity cost function `S_f(T_tc)` (§3.1) and its evaluation
//! against nominal/faulty circuit pairs.

use std::sync::Arc;

use castg_faults::Fault;
use castg_numeric::NumericError;
use castg_spice::{Circuit, SpiceError};

use crate::cache::NominalCache;
use crate::config::Measurement;
use crate::{CoreError, TestConfiguration};

/// Sensitivity value reported when the faulty circuit cannot be simulated
/// at all — a grossly broken device counts as strongly detected.
pub const SENSITIVITY_SIM_FAILURE: f64 = -1.0e3;

/// Why a *faulted* variant's simulation broke down. These are expected
/// campaign events, not errors: a hard bridge can legitimately produce
/// a circuit that no Newton strategy lands ([`SimFailure::Unconverged`]),
/// one whose MNA system loses rank ([`SimFailure::Singular`]), or one
/// that burns past its wall-clock budget ([`SimFailure::TimedOut`]).
/// The classification is carried through to the campaign's per-fault
/// outcome; the sensitivity itself stays [`SENSITIVITY_SIM_FAILURE`]
/// (counted as detected) in every case, so coverage figures do not
/// depend on *why* the variant broke.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SimFailure {
    /// The nonlinear solver exhausted its strategy ladder or its
    /// iteration budget without converging.
    Unconverged,
    /// The variant's MNA system is singular at the named unknown
    /// (`v(<node>)` / `i(<device>)`, or a raw pivot index when the
    /// failure surfaced below the circuit layer).
    Singular {
        /// The unknown whose pivot vanished.
        unknown: String,
    },
    /// The variant overran a wall-clock budget
    /// ([`castg_spice::AnalysisOptions::budget_ms`] or the campaign's
    /// per-item budget).
    TimedOut,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimFailure::Unconverged => f.write_str("no convergence"),
            SimFailure::Singular { unknown } => write!(f, "singular at {unknown}"),
            SimFailure::TimedOut => f.write_str("wall-clock budget exceeded"),
        }
    }
}

/// Splits a faulted-variant simulation error into the expected
/// breakdown set (`Ok`) versus genuine errors (`Err` — unknown devices,
/// invalid analyses and other contract violations that must propagate).
fn classify_sim_failure(e: SpiceError) -> Result<SimFailure, SpiceError> {
    match e {
        SpiceError::NoConvergence { .. } => Ok(SimFailure::Unconverged),
        SpiceError::Singular { unknown } => Ok(SimFailure::Singular { unknown }),
        SpiceError::Numeric(NumericError::SingularMatrix { pivot }) => {
            Ok(SimFailure::Singular { unknown: format!("pivot {pivot}") })
        }
        SpiceError::Numeric(_) => Ok(SimFailure::Unconverged),
        SpiceError::Timeout { .. } => Ok(SimFailure::TimedOut),
        other => Err(other),
    }
}

/// Combines per-return deviations and box half-widths into the scalar
/// sensitivity
/// `S_f(T) = min_i (1 − |Δr_i| / box_i)`.
///
/// * `S = 1` — the faulty response is indistinguishable from nominal
///   (total insensitivity; the paper assigns cost value 1).
/// * `0 < S < 1` — a deviation exists but stays inside the tolerance box.
/// * `S < 0` — detection: the deviation exceeds the box.
///
/// Non-positive or non-finite boxes for a deviating return count as
/// immediate detection (an infinitely tight box); an empty input yields
/// `1.0` (nothing measured — nothing detected).
pub fn sensitivity(deviations: &[f64], boxes: &[f64]) -> f64 {
    debug_assert_eq!(deviations.len(), boxes.len());
    let mut s_min = 1.0_f64;
    for (dev, b) in deviations.iter().zip(boxes) {
        s_min = s_min.min(per_return_sensitivity(*dev, *b));
    }
    s_min
}

/// The per-return-value sensitivity term of `S_f(T)` — the single
/// source of truth shared by [`sensitivity`] and the fold in
/// [`Evaluator::sensitivity_of`], so the report path and the lean
/// scalar path cannot drift apart.
#[inline]
fn per_return_sensitivity(dev: f64, b: f64) -> f64 {
    if b > 0.0 && b.is_finite() {
        1.0 - dev.abs() / b
    } else if dev.abs() > 0.0 {
        f64::NEG_INFINITY
    } else {
        1.0
    }
}

/// Whether a sensitivity value means the fault is detected.
pub fn is_detected(s: f64) -> bool {
    s < 0.0
}

/// One full sensitivity evaluation: parameters, nominal/faulty return
/// values, boxes and the resulting `S_f`.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// Parameter vector the test was applied with.
    pub params: Vec<f64>,
    /// Nominal return values `R_nom(T)`.
    pub nominal_returns: Vec<f64>,
    /// Faulty return values `R_f(T)`.
    pub faulty_returns: Vec<f64>,
    /// Tolerance-box half-widths.
    pub boxes: Vec<f64>,
    /// The sensitivity `S_f(T)`.
    pub sensitivity: f64,
    /// Whether the faulty simulation failed (counted as detection).
    pub sim_failure: bool,
}

/// Evaluates sensitivities of one configuration for one macro, caching
/// nominal measurements (which are fault-independent) across calls.
///
/// This is the inner loop of everything in this crate: tps-graph sweeps,
/// the per-fault optimizations, the impact searches and the compaction
/// screen all evaluate `S_f(T)` through an `Evaluator`.
pub struct Evaluator<'a> {
    config: &'a dyn TestConfiguration,
    nominal_circuit: &'a Circuit,
    cache: &'a NominalCache,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for `config` against the given nominal
    /// circuit, using `cache` for nominal measurements.
    pub fn new(
        config: &'a dyn TestConfiguration,
        nominal_circuit: &'a Circuit,
        cache: &'a NominalCache,
    ) -> Self {
        Evaluator { config, nominal_circuit, cache }
    }

    /// The configuration being evaluated.
    pub fn config(&self) -> &dyn TestConfiguration {
        self.config
    }

    /// Injects a fault into the evaluator's nominal circuit (convenience
    /// for callers that sweep parameters over one injected circuit).
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Fault`] when the fault does not apply.
    pub fn inject(&self, fault: &Fault) -> Result<Circuit, CoreError> {
        Ok(fault.inject(self.nominal_circuit)?)
    }

    /// Nominal measurement at `params`, cached.
    ///
    /// # Errors
    ///
    /// Propagates measurement errors (the nominal circuit is expected to
    /// simulate cleanly everywhere inside the parameter bounds).
    pub fn nominal(&self, params: &[f64]) -> Result<Arc<Measurement>, CoreError> {
        self.cache.get_or_insert(self.config.id(), params, || {
            self.config.measure(self.nominal_circuit, params)
        })
    }

    /// Full sensitivity evaluation of `fault` (at its current impact) at
    /// `params`, simulating the injected faulty circuit.
    ///
    /// A faulty-circuit convergence failure is not an error: it returns a
    /// report with [`SENSITIVITY_SIM_FAILURE`] and `sim_failure = true`.
    ///
    /// # Errors
    ///
    /// Fault-injection errors and *nominal* simulation failures propagate.
    pub fn evaluate(&self, fault: &Fault, params: &[f64]) -> Result<SensitivityReport, CoreError> {
        let faulty_circuit = fault.inject(self.nominal_circuit)?;
        self.evaluate_injected(&faulty_circuit, params)
    }

    /// Measures the faulty circuit, mapping a simulation breakdown
    /// (non-convergence, singular system, numerical failure, budget
    /// overrun — a grossly broken device) to `Ok(Err(classification))`.
    /// The single home of the sim-failure error set, shared by the
    /// report and the lean scalar paths.
    fn measure_faulty(
        &self,
        faulty_circuit: &Circuit,
        params: &[f64],
    ) -> Result<Result<Measurement, SimFailure>, CoreError> {
        match self.config.measure(faulty_circuit, params) {
            Ok(m) => Ok(Ok(m)),
            Err(CoreError::Simulation(e)) => match classify_sim_failure(e) {
                Ok(failure) => Ok(Err(failure)),
                Err(hard) => Err(CoreError::Simulation(hard)),
            },
            Err(other) => Err(other),
        }
    }

    /// Like [`Evaluator::evaluate`] but takes an already injected faulty
    /// circuit (callers that sweep parameters reuse one injection).
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::evaluate`].
    pub fn evaluate_injected(
        &self,
        faulty_circuit: &Circuit,
        params: &[f64],
    ) -> Result<SensitivityReport, CoreError> {
        let nominal_m = self.nominal(params)?;
        let nominal_returns = self.config.return_values(&nominal_m, &nominal_m);
        let boxes = self.config.tolerance_box(params, &nominal_returns);

        match self.measure_faulty(faulty_circuit, params)? {
            Ok(faulty_m) => {
                let faulty_returns = self.config.return_values(&faulty_m, &nominal_m);
                let deviations: Vec<f64> = faulty_returns
                    .iter()
                    .zip(&nominal_returns)
                    .map(|(f, n)| f - n)
                    .collect();
                let s = sensitivity(&deviations, &boxes);
                Ok(SensitivityReport {
                    params: params.to_vec(),
                    nominal_returns,
                    faulty_returns,
                    boxes,
                    sensitivity: s,
                    sim_failure: false,
                })
            }
            Err(_) => Ok(SensitivityReport {
                params: params.to_vec(),
                faulty_returns: vec![f64::NAN; nominal_returns.len()],
                nominal_returns,
                boxes,
                sensitivity: SENSITIVITY_SIM_FAILURE,
                sim_failure: true,
            }),
        }
    }

    /// Just the sensitivity value (the optimizer objective and the
    /// campaign engine's work-item kernel).
    ///
    /// Identical — bit for bit — to
    /// [`evaluate_injected`](Evaluator::evaluate_injected)`.sensitivity`,
    /// but skips materializing the [`SensitivityReport`] (parameter
    /// copies, deviation vectors): campaigns call this millions of
    /// times and keep only the scalar.
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::evaluate`].
    pub fn sensitivity_of(
        &self,
        faulty_circuit: &Circuit,
        params: &[f64],
    ) -> Result<f64, CoreError> {
        self.sensitivity_outcome(faulty_circuit, params).map(|(s, _)| s)
    }

    /// [`sensitivity_of`](Evaluator::sensitivity_of) plus the breakdown
    /// classification: the scalar sensitivity and, when the faulted
    /// simulation broke down, *why* (`None` means it simulated
    /// cleanly). The campaign engine's work-item kernel — the
    /// sensitivity is bit-identical to the other two paths.
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::evaluate`].
    pub fn sensitivity_outcome(
        &self,
        faulty_circuit: &Circuit,
        params: &[f64],
    ) -> Result<(f64, Option<SimFailure>), CoreError> {
        let nominal_m = self.nominal(params)?;
        let nominal_returns = self.config.return_values(&nominal_m, &nominal_m);
        let boxes = self.config.tolerance_box(params, &nominal_returns);
        match self.measure_faulty(faulty_circuit, params)? {
            Ok(faulty_m) => {
                let faulty_returns = self.config.return_values(&faulty_m, &nominal_m);
                // Fold `sensitivity` over on-the-fly deviations: the
                // same `f − n` pairs through the same per-return term,
                // in the same order as the report path, so the fold
                // rounds identically.
                let mut s_min = 1.0_f64;
                for ((f, n), b) in faulty_returns.iter().zip(&nominal_returns).zip(&boxes) {
                    s_min = s_min.min(per_return_sensitivity(f - n, *b));
                }
                Ok((s_min, None))
            }
            Err(failure) => Ok((SENSITIVITY_SIM_FAILURE, Some(failure))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::DividerMacro;
    use crate::AnalogMacro;

    #[test]
    fn sensitivity_sign_convention() {
        // No deviation: total insensitivity = 1.
        assert_eq!(sensitivity(&[0.0], &[1.0]), 1.0);
        // Deviation inside the box: 0 < S < 1.
        let s = sensitivity(&[0.5], &[1.0]);
        assert!(s > 0.0 && s < 1.0);
        // Deviation at the box edge: S = 0.
        assert!(sensitivity(&[1.0], &[1.0]).abs() < 1e-12);
        // Outside: detection.
        assert!(is_detected(sensitivity(&[2.0], &[1.0])));
        assert!(!is_detected(0.5));
    }

    #[test]
    fn sensitivity_takes_worst_return_value() {
        // Second return deviates beyond its box → min wins.
        let s = sensitivity(&[0.1, 3.0], &[1.0, 1.0]);
        assert_eq!(s, -2.0);
    }

    #[test]
    fn degenerate_boxes() {
        assert_eq!(sensitivity(&[], &[]), 1.0);
        assert_eq!(sensitivity(&[0.5], &[0.0]), f64::NEG_INFINITY);
        assert_eq!(sensitivity(&[0.0], &[0.0]), 1.0);
    }

    #[test]
    fn evaluator_detects_a_hard_bridge_on_the_divider() {
        let mac = DividerMacro::new();
        let circuit = mac.nominal_circuit();
        let cache = NominalCache::new();
        let configs = mac.configurations();
        let config = configs[0].as_ref(); // DC output voltage
        let ev = Evaluator::new(config, &circuit, &cache);

        // Strong bridge across the lower divider resistor.
        let fault = castg_faults::Fault::bridge("out", "0", 100.0);
        let report = ev.evaluate(&fault, &config.seed()).unwrap();
        assert!(report.sensitivity < 0.0, "S = {}", report.sensitivity);
        assert!(!report.sim_failure);
        assert_eq!(report.boxes.len(), report.nominal_returns.len());
    }

    #[test]
    fn evaluator_finds_weak_bridge_undetectable() {
        let mac = DividerMacro::new();
        let circuit = mac.nominal_circuit();
        let cache = NominalCache::new();
        let configs = mac.configurations();
        let config = configs[0].as_ref();
        let ev = Evaluator::new(config, &circuit, &cache);

        // A 100 MΩ bridge barely moves a 1 kΩ divider.
        let fault = castg_faults::Fault::bridge("out", "0", 100e6);
        let report = ev.evaluate(&fault, &config.seed()).unwrap();
        assert!(report.sensitivity > 0.0, "S = {}", report.sensitivity);
    }

    /// The lean scalar path must agree bit for bit with the full
    /// report path, detection and non-detection alike.
    #[test]
    fn sensitivity_of_matches_report_path_bitwise() {
        let mac = DividerMacro::new();
        let circuit = mac.nominal_circuit();
        let cache = NominalCache::new();
        let configs = mac.configurations();
        for config in &configs {
            let ev = Evaluator::new(config.as_ref(), &circuit, &cache);
            for ohms in [100.0, 100e6] {
                let fault = castg_faults::Fault::bridge("out", "0", ohms);
                let faulty = ev.inject(&fault).unwrap();
                let report = ev.evaluate_injected(&faulty, &config.seed()).unwrap();
                let lean = ev.sensitivity_of(&faulty, &config.seed()).unwrap();
                assert_eq!(report.sensitivity.to_bits(), lean.to_bits());
            }
        }
    }

    #[test]
    fn nominal_measurements_are_cached() {
        let mac = DividerMacro::new();
        let circuit = mac.nominal_circuit();
        let cache = NominalCache::new();
        let configs = mac.configurations();
        let config = configs[0].as_ref();
        let ev = Evaluator::new(config, &circuit, &cache);
        let p = config.seed();
        let a = ev.nominal(&p).unwrap();
        let b = ev.nominal(&p).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(cache.len(), 1);
    }
}
