//! Fault-specific test generation — the paper's §3.3 algorithm (Fig. 6).
//!
//! For each fault in the dictionary:
//!
//! 1. **Soft-fault optimization.** A low-impact (weakened) version of the
//!    fault is inserted and, for every test configuration in parallel,
//!    the test parameters are optimized to minimize the sensitivity
//!    `S_f(T_tc)` — Brent's method for one-parameter configurations,
//!    Powell's method otherwise. Because soft-fault tps-graphs are
//!    shape-stable (§3.2), the optimum found for the weakened model is
//!    (close to) the optimum for the fault *type* at that location.
//! 2. **Selection by impact manipulation.** Starting from the dictionary
//!    impact, the fault model is *relaxed* while more than one candidate
//!    test still detects it and *intensified* while none does, with a
//!    shrinking step factor, until exactly one test survives — the best
//!    test. Faults that stay undetectable even intensified are reported
//!    as such (the paper's §2.2 extension intensifies them so that the
//!    most sensitive test is still identified).
//! 3. **Critical impact.** The surviving test's *critical impact level* —
//!    the weakest impact scale it still detects — is located by
//!    bisection; the compaction screen can evaluate there.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use castg_faults::{Fault, FaultDictionary, FaultKind};
use castg_numeric::{brent_min, powell_min, BrentOptions, PowellOptions};
use castg_spice::Circuit;
use parking_lot::Mutex;

use crate::cache::NominalCache;
use crate::sensitivity::{is_detected, Evaluator};
use crate::{AnalogMacro, CoreError, TestConfiguration};

/// How the best test is selected among the per-configuration optima.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionMethod {
    /// The paper's iterative relax/intensify loop (§3.3).
    #[default]
    PaperIterative,
    /// Compute every candidate's critical impact scale by bisection and
    /// pick the maximum — slower but directly implements the §2.2
    /// optimality definition. Used as a cross-check of the iterative
    /// loop.
    MaxCriticalImpact,
}

/// Options controlling the generation algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorOptions {
    /// Impact-weakening factor applied before parameter optimization so
    /// the model sits in its soft-fault tps region (§3.2).
    pub soften_factor: f64,
    /// Initial multiplicative impact step of the selection loop.
    pub relax_factor: f64,
    /// Terminate the selection loop when the step factor drops below
    /// this (the impact scale is then localized to that ratio).
    pub scale_tol: f64,
    /// Upper clamp on the impact scale (weakest fault considered).
    pub max_scale: f64,
    /// Lower clamp on the impact scale (strongest fault considered).
    pub min_scale: f64,
    /// Hard cap on selection-loop rounds.
    pub max_rounds: usize,
    /// Which selection method to use.
    pub selection: SelectionMethod,
    /// Options for multi-parameter (Powell) optimization.
    pub powell: PowellOptions,
    /// Options for single-parameter (Brent) optimization.
    pub brent: BrentOptions,
    /// Worker threads used by [`Generator::generate`].
    pub threads: usize,
}

impl Default for GeneratorOptions {
    fn default() -> Self {
        GeneratorOptions {
            soften_factor: 8.0,
            relax_factor: 4.0,
            scale_tol: 1.05,
            max_scale: 1e4,
            min_scale: 1e-3,
            max_rounds: 48,
            selection: SelectionMethod::default(),
            // Simulator calls are the cost unit: keep the optimizers
            // frugal — the paper also relies on local optimization.
            powell: PowellOptions {
                ftol: 1e-4,
                max_iter: 12,
                line: BrentOptions { tol: 2e-3, max_iter: 18 },
            },
            brent: BrentOptions { tol: 1e-4, max_iter: 40 },
            threads: default_threads(),
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// The generated best test for one fault.
#[derive(Debug, Clone, PartialEq)]
pub struct BestTest {
    /// The dictionary fault this test was generated for.
    pub fault: Fault,
    /// Selected configuration id.
    pub config_id: usize,
    /// Selected configuration name.
    pub config_name: String,
    /// Optimized test parameter values.
    pub params: Vec<f64>,
    /// `S_f` of this test at the dictionary impact (scale 1).
    pub sensitivity_at_dictionary: f64,
    /// Whether the fault is detected at dictionary impact.
    pub detected_at_dictionary: bool,
    /// The weakest impact scale at which this test still detects the
    /// fault (≥ [`GeneratorOptions::min_scale`]; clamped to
    /// [`GeneratorOptions::max_scale`]).
    pub critical_scale: f64,
    /// `true` when no configuration detected the fault at dictionary
    /// impact and the model had to be intensified to find the most
    /// sensitive test.
    pub required_intensify: bool,
    /// Simulator evaluations spent on this fault.
    pub evaluations: usize,
}

/// Aggregate outcome of a dictionary-wide generation run.
#[derive(Debug, Clone, Default)]
pub struct GenerationReport {
    /// One best test per dictionary fault, in dictionary order (faults
    /// whose generation failed are absent — see `failures`).
    pub tests: Vec<BestTest>,
    /// Faults whose generation failed, with the error.
    pub failures: Vec<(String, CoreError)>,
    /// Total wall-clock time of the run.
    pub wall_time: Duration,
}

/// One row of the paper's Table-2-style distribution: how many faults of
/// each kind selected a given configuration as their best test.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionRow {
    /// Configuration id.
    pub config_id: usize,
    /// Configuration name.
    pub config_name: String,
    /// Bridge faults whose best test uses this configuration.
    pub bridge: usize,
    /// Pinhole faults whose best test uses this configuration.
    pub pinhole: usize,
}

impl GenerationReport {
    /// Distribution of best tests over configurations, split by fault
    /// kind — the reproduction of the paper's Table 2.
    pub fn distribution(&self) -> Vec<DistributionRow> {
        let mut rows: Vec<DistributionRow> = Vec::new();
        for t in &self.tests {
            let row = match rows.iter_mut().find(|r| r.config_id == t.config_id) {
                Some(r) => r,
                None => {
                    rows.push(DistributionRow {
                        config_id: t.config_id,
                        config_name: t.config_name.clone(),
                        bridge: 0,
                        pinhole: 0,
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            match t.fault.kind() {
                FaultKind::Bridge => row.bridge += 1,
                FaultKind::Pinhole => row.pinhole += 1,
            }
        }
        rows.sort_by_key(|r| r.config_id);
        rows
    }

    /// Tests that required intensification (undetectable at dictionary
    /// impact).
    pub fn undetected(&self) -> Vec<&BestTest> {
        self.tests.iter().filter(|t| !t.detected_at_dictionary).collect()
    }

    /// Tests whose best configuration is `config_id`.
    pub fn tests_for_config(&self, config_id: usize) -> Vec<&BestTest> {
        self.tests.iter().filter(|t| t.config_id == config_id).collect()
    }

    /// Total simulator evaluations across all faults.
    pub fn total_evaluations(&self) -> usize {
        self.tests.iter().map(|t| t.evaluations).sum()
    }
}

/// Per-configuration optimization candidate (internal).
#[derive(Debug, Clone)]
struct Candidate {
    config_idx: usize,
    params: Vec<f64>,
    evaluations: usize,
}

/// The test generator: owns the macro's nominal circuit and configuration
/// set, and runs the Fig.-6 flow per fault.
pub struct Generator<'a> {
    configs: Vec<std::sync::Arc<dyn TestConfiguration>>,
    nominal: Circuit,
    cache: &'a NominalCache,
    options: GeneratorOptions,
}

impl<'a> Generator<'a> {
    /// Creates a generator for a macro with default options.
    pub fn new(macro_def: &dyn AnalogMacro, cache: &'a NominalCache) -> Self {
        Generator::with_options(macro_def, cache, GeneratorOptions::default())
    }

    /// Creates a generator with explicit options.
    pub fn with_options(
        macro_def: &dyn AnalogMacro,
        cache: &'a NominalCache,
        options: GeneratorOptions,
    ) -> Self {
        Generator {
            configs: macro_def.configurations(),
            nominal: macro_def.nominal_circuit(),
            cache,
            options,
        }
    }

    /// The configuration set the generator selects from.
    pub fn configurations(&self) -> &[std::sync::Arc<dyn TestConfiguration>] {
        &self.configs
    }

    /// The generator's options.
    pub fn options(&self) -> &GeneratorOptions {
        &self.options
    }

    /// Runs the full Fig.-6 flow for one fault.
    ///
    /// # Errors
    ///
    /// Fault-injection errors and nominal-circuit simulation failures;
    /// faulty-circuit non-convergence is *not* an error (it counts as
    /// detection).
    pub fn generate_for_fault(&self, fault: &Fault) -> Result<BestTest, CoreError> {
        self.generate_for_fault_logged(fault, &mut |_| {})
    }

    /// Like [`Generator::generate_for_fault`], but narrates every stage
    /// of the Fig.-6 flow through `log` — used to regenerate the paper's
    /// Fig. 6 as an algorithm trace.
    ///
    /// # Errors
    ///
    /// As for [`Generator::generate_for_fault`].
    pub fn generate_for_fault_logged(
        &self,
        fault: &Fault,
        log: &mut dyn FnMut(String),
    ) -> Result<BestTest, CoreError> {
        if self.configs.is_empty() {
            return Err(CoreError::InvalidOptions {
                reason: "macro provides no test configurations".to_string(),
            });
        }
        let mut evaluations = 0usize;
        log(format!("fault under generation: {fault}"));

        // Step 1: per-configuration parameter optimization on the
        // softened fault model.
        let soft = fault.weakened(self.options.soften_factor);
        log(format!(
            "step 1: soften impact ×{} → R = {:.3e} Ω (soft-fault tps region), \
             optimize every configuration",
            self.options.soften_factor,
            soft.effective_resistance()
        ));
        let mut candidates = Vec::with_capacity(self.configs.len());
        for (idx, config) in self.configs.iter().enumerate() {
            let cand = self.optimize_config(idx, config.as_ref(), &soft)?;
            log(format!(
                "  config #{} {:<14} T* = {:?} ({} simulator evaluations)",
                config.id(),
                config.name(),
                cand.params,
                cand.evaluations
            ));
            evaluations += cand.evaluations;
            candidates.push(cand);
        }

        // Step 2: select the best test by impact manipulation.
        log("step 2: select by fault-impact relax/intensify".to_string());
        let (winner_idx, required_intensify, sel_evals) = match self.options.selection {
            SelectionMethod::PaperIterative => self.select_iterative(fault, &candidates)?,
            SelectionMethod::MaxCriticalImpact => self.select_by_critical(fault, &candidates)?,
        };
        evaluations += sel_evals;
        let winner = &candidates[winner_idx];
        let config = &self.configs[winner.config_idx];
        log(format!(
            "  survivor: config #{} {} (intensification needed: {})",
            config.id(),
            config.name(),
            required_intensify
        ));
        let ev = Evaluator::new(config.as_ref(), &self.nominal, self.cache);

        // Step 3: dictionary-impact sensitivity and critical impact.
        let dict_circuit = ev.inject(fault)?;
        let s_dict = ev.sensitivity_of(&dict_circuit, &winner.params)?;
        evaluations += 1;
        let (critical_scale, crit_evals) =
            self.critical_scale(&ev, fault, &winner.params, s_dict)?;
        evaluations += crit_evals;
        log(format!(
            "step 3: S_f at dictionary impact = {s_dict:.4}; critical impact scale = \
             {critical_scale:.3} (R_crit = {:.3e} Ω)",
            fault.base_resistance() * critical_scale
        ));

        Ok(BestTest {
            fault: fault.clone(),
            config_id: config.id(),
            config_name: config.name().to_string(),
            params: winner.params.clone(),
            sensitivity_at_dictionary: s_dict,
            detected_at_dictionary: is_detected(s_dict),
            critical_scale,
            required_intensify,
            evaluations,
        })
    }

    /// Generates best tests for the whole dictionary, fanned out over
    /// [`GeneratorOptions::threads`] workers. Individual fault failures
    /// are collected, not fatal.
    pub fn generate(&self, dictionary: &FaultDictionary) -> GenerationReport {
        let start = Instant::now();
        let n = dictionary.len();
        let results: Vec<Mutex<Option<Result<BestTest, CoreError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let counter = AtomicUsize::new(0);
        let workers = self.options.threads.clamp(1, n.max(1));

        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let fault = &dictionary.faults()[i];
                    let outcome = self.generate_for_fault(fault);
                    *results[i].lock() = Some(outcome);
                });
            }
        })
        .expect("generation workers must not panic");

        let mut report = GenerationReport { wall_time: start.elapsed(), ..Default::default() };
        for (i, slot) in results.into_iter().enumerate() {
            match slot.into_inner() {
                Some(Ok(test)) => report.tests.push(test),
                Some(Err(e)) => report.failures.push((dictionary.faults()[i].name(), e)),
                None => report.failures.push((
                    dictionary.faults()[i].name(),
                    CoreError::InvalidOptions { reason: "worker never ran this fault".into() },
                )),
            }
        }
        report
    }

    /// Optimizes one configuration's parameters against the softened
    /// fault. Seeds are evaluated explicitly so the optimizer can never
    /// do worse than the seed test.
    fn optimize_config(
        &self,
        config_idx: usize,
        config: &dyn TestConfiguration,
        soft: &Fault,
    ) -> Result<Candidate, CoreError> {
        let ev = Evaluator::new(config, &self.nominal, self.cache);
        let faulty = ev.inject(soft)?;
        let space = config.space();
        let evals = AtomicUsize::new(0);
        let objective = |params: &[f64]| -> f64 {
            evals.fetch_add(1, Ordering::Relaxed);
            // Injection cannot fail here (already injected); nominal
            // failure means this parameter region is unusable.
            ev.sensitivity_of(&faulty, params).unwrap_or(f64::INFINITY)
        };

        let seed = space.clamp(&config.seed());
        let (params, value) = if space.dim() == 1 {
            let b = space.bounds(0);
            let m = brent_min(|x| objective(&[x]), b.lo(), b.hi(), &self.options.brent);
            (vec![m.x], m.value)
        } else {
            let r = powell_min(|x| objective(x), &seed, &space, &self.options.powell);
            (r.x, r.value)
        };
        // Keep whichever of {optimized point, seed} is more sensitive.
        let seed_value = objective(&seed);
        let (params, _value) =
            if seed_value < value { (seed, seed_value) } else { (params, value) };
        Ok(Candidate {
            config_idx,
            params,
            evaluations: evals.load(Ordering::Relaxed),
        })
    }

    /// The paper's selection loop: relax while >1 test detects,
    /// intensify while none does, shrinking the step on direction
    /// reversals, until one survivor remains.
    ///
    /// Returns `(winner index, required_intensify, evaluations)`.
    fn select_iterative(
        &self,
        fault: &Fault,
        candidates: &[Candidate],
    ) -> Result<(usize, bool, usize), CoreError> {
        let opts = &self.options;
        let mut scale = 1.0_f64;
        let mut step = opts.relax_factor;
        let mut last_dir = 0i8;
        let mut evals = 0usize;
        let mut required_intensify = false;
        // Track the best candidate seen in case the loop terminates
        // without a unique survivor.
        let mut fallback: Option<(usize, f64)> = None;

        for _ in 0..opts.max_rounds {
            let scaled = fault.with_impact_scale(scale);
            let sens = self.sensitivities_at(&scaled, candidates)?;
            evals += candidates.len();
            let (best_idx, best_s) = argmin(&sens);
            if fallback.is_none_or(|(_, s)| best_s < s) {
                fallback = Some((best_idx, best_s));
            }
            let detectors = sens.iter().filter(|s| is_detected(**s)).count();

            if detectors == 1 {
                let idx = sens.iter().position(|s| is_detected(*s)).expect("count == 1");
                return Ok((idx, required_intensify, evals));
            }
            let dir: i8 = if detectors > 1 { 1 } else { -1 };
            if dir < 0 && scale <= 1.0 {
                // Needed to intensify below the dictionary impact: the
                // fault is undetectable as modeled (§2.2 extension).
                required_intensify = true;
            }
            if last_dir != 0 && dir != last_dir {
                step = step.sqrt();
            }
            if step < opts.scale_tol {
                break;
            }
            last_dir = dir;
            let next = if dir > 0 { scale * step } else { scale / step };
            let clamped = next.clamp(opts.min_scale, opts.max_scale);
            if clamped == scale {
                break; // pinned at a clamp; no progress possible
            }
            scale = clamped;
        }
        let (idx, _) = fallback.expect("at least one round ran");
        Ok((idx, required_intensify, evals))
    }

    /// Alternative selection: per-candidate critical-scale bisection,
    /// pick the candidate that keeps detecting at the weakest impact.
    fn select_by_critical(
        &self,
        fault: &Fault,
        candidates: &[Candidate],
    ) -> Result<(usize, bool, usize), CoreError> {
        let mut evals = 0usize;
        let mut best: Option<(usize, f64, f64)> = None; // (idx, crit, s_dict)
        for (i, cand) in candidates.iter().enumerate() {
            let config = &self.configs[cand.config_idx];
            let ev = Evaluator::new(config.as_ref(), &self.nominal, self.cache);
            let circuit = ev.inject(fault)?;
            let s_dict = ev.sensitivity_of(&circuit, &cand.params)?;
            evals += 1;
            let (crit, e) = self.critical_scale(&ev, fault, &cand.params, s_dict)?;
            evals += e;
            // Prefer the largest critical scale; break ties on s_dict.
            let better = match &best {
                None => true,
                Some((_, c, s)) => crit > *c || (crit == *c && s_dict < *s),
            };
            if better {
                best = Some((i, crit, s_dict));
            }
        }
        let (idx, crit, _) = best.expect("candidates are non-empty");
        // If even the best candidate's critical scale is below the
        // dictionary impact, the fault needed intensification.
        Ok((idx, crit < 1.0, evals))
    }

    /// Bisects (in log-scale space) the weakest impact scale at which the
    /// test at `params` still detects `fault`. `s_dict` is the already
    /// computed sensitivity at scale 1.
    fn critical_scale(
        &self,
        ev: &Evaluator<'_>,
        fault: &Fault,
        params: &[f64],
        s_dict: f64,
    ) -> Result<(f64, usize), CoreError> {
        let opts = &self.options;
        let mut evals = 0usize;
        let mut probe = |scale: f64| -> Result<bool, CoreError> {
            let circuit = ev.inject(&fault.with_impact_scale(scale))?;
            evals += 1;
            Ok(is_detected(ev.sensitivity_of(&circuit, params)?))
        };

        // Establish a bracket [detected, undetected].
        let (mut lo, mut hi);
        if is_detected(s_dict) {
            lo = 1.0;
            hi = 1.0;
            loop {
                hi *= 4.0;
                if hi >= opts.max_scale {
                    hi = opts.max_scale;
                    if probe(hi)? {
                        return Ok((opts.max_scale, evals)); // detected everywhere
                    }
                    break;
                }
                if !probe(hi)? {
                    break;
                }
                lo = hi;
            }
        } else {
            hi = 1.0;
            lo = 1.0;
            loop {
                lo /= 4.0;
                if lo <= opts.min_scale {
                    lo = opts.min_scale;
                    if !probe(lo)? {
                        return Ok((opts.min_scale, evals)); // never detected
                    }
                    break;
                }
                if probe(lo)? {
                    break;
                }
                hi = lo;
            }
        }

        // Log-space bisection to the configured tolerance.
        while hi / lo > opts.scale_tol {
            let mid = (lo * hi).sqrt();
            if probe(mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok((lo, evals))
    }

    /// Evaluates each candidate's sensitivity against a scaled fault.
    fn sensitivities_at(
        &self,
        fault: &Fault,
        candidates: &[Candidate],
    ) -> Result<Vec<f64>, CoreError> {
        let mut out = Vec::with_capacity(candidates.len());
        for cand in candidates {
            let config = &self.configs[cand.config_idx];
            let ev = Evaluator::new(config.as_ref(), &self.nominal, self.cache);
            let circuit = ev.inject(fault)?;
            out.push(ev.sensitivity_of(&circuit, &cand.params)?);
        }
        Ok(out)
    }
}

fn argmin(values: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, v) in values.iter().enumerate() {
        if *v < best.1 {
            best = (i, *v);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::DividerMacro;

    fn quick_options() -> GeneratorOptions {
        GeneratorOptions {
            threads: 2,
            powell: PowellOptions {
                ftol: 1e-3,
                max_iter: 6,
                line: BrentOptions { tol: 5e-3, max_iter: 10 },
            },
            brent: BrentOptions { tol: 1e-3, max_iter: 20 },
            ..GeneratorOptions::default()
        }
    }

    #[test]
    fn generates_a_best_test_for_a_strong_bridge() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let gen = Generator::with_options(&mac, &cache, quick_options());
        let fault = castg_faults::Fault::bridge("out", "0", 10e3);
        let best = gen.generate_for_fault(&fault).unwrap();
        assert!(best.detected_at_dictionary, "10 kΩ across 2 kΩ leg must be detectable");
        assert!(!best.required_intensify);
        assert!(best.critical_scale > 1.0, "critical scale {}", best.critical_scale);
        assert!(best.evaluations > 0);
        assert!(!best.params.is_empty());
    }

    #[test]
    fn dc_config_wins_for_divider_ratio_fault_and_prefers_max_drive() {
        // For the divider, a bridge across R3 changes the DC ratio most
        // visibly at the largest drive level: the optimizer must push
        // `lev` toward the upper bound.
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let gen = Generator::with_options(&mac, &cache, quick_options());
        let fault = castg_faults::Fault::bridge("out", "0", 10e3);
        let best = gen.generate_for_fault(&fault).unwrap();
        if best.config_id == 1 {
            assert!(best.params[0] > 6.0, "expected near-max drive, got {:?}", best.params);
        }
    }

    #[test]
    fn undetectable_fault_is_flagged() {
        // vin–mid bridges R1 (1 kΩ) with 10 kΩ: detectable. Make it very
        // weak instead so nothing detects at dictionary impact.
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let gen = Generator::with_options(&mac, &cache, quick_options());
        let fault = castg_faults::Fault::bridge("vin", "mid", 100e6);
        let best = gen.generate_for_fault(&fault).unwrap();
        assert!(!best.detected_at_dictionary);
        assert!(best.required_intensify);
        assert!(best.critical_scale < 1.0);
    }

    #[test]
    fn selection_methods_agree_on_clear_cut_fault() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let fault = castg_faults::Fault::bridge("out", "0", 10e3);
        let mut opts = quick_options();
        opts.selection = SelectionMethod::PaperIterative;
        let a = Generator::with_options(&mac, &cache, opts.clone())
            .generate_for_fault(&fault)
            .unwrap();
        opts.selection = SelectionMethod::MaxCriticalImpact;
        let b = Generator::with_options(&mac, &cache, opts).generate_for_fault(&fault).unwrap();
        assert_eq!(a.config_id, b.config_id, "selection methods disagree");
    }

    #[test]
    fn dictionary_run_covers_all_faults() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let gen = Generator::with_options(&mac, &cache, quick_options());
        let dict = mac.fault_dictionary();
        let report = gen.generate(&dict);
        assert!(report.failures.is_empty(), "failures: {:?}", report.failures);
        assert_eq!(report.tests.len(), dict.len());
        let dist = report.distribution();
        let total: usize = dist.iter().map(|r| r.bridge + r.pinhole).sum();
        assert_eq!(total, dict.len());
        assert!(report.total_evaluations() > 0);
    }

    #[test]
    fn report_helpers_filter_correctly() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let gen = Generator::with_options(&mac, &cache, quick_options());
        let report = gen.generate(&mac.fault_dictionary());
        for row in report.distribution() {
            assert_eq!(report.tests_for_config(row.config_id).len(), row.bridge + row.pinhole);
        }
        for t in report.undetected() {
            assert!(!t.detected_at_dictionary);
        }
    }

    #[test]
    fn empty_config_set_is_an_error() {
        struct NoConfigs;
        impl AnalogMacro for NoConfigs {
            fn name(&self) -> &str {
                "empty"
            }
            fn macro_type(&self) -> &str {
                "none"
            }
            fn nominal_circuit(&self) -> Circuit {
                Circuit::new()
            }
            fn fault_site_nodes(&self) -> Vec<String> {
                vec![]
            }
            fn fault_dictionary(&self) -> FaultDictionary {
                FaultDictionary::default()
            }
            fn configurations(&self) -> Vec<std::sync::Arc<dyn TestConfiguration>> {
                vec![]
            }
        }
        let cache = NominalCache::new();
        let gen = Generator::new(&NoConfigs, &cache);
        let err = gen
            .generate_for_fault(&castg_faults::Fault::bridge("a", "b", 1e3))
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions { .. }));
    }
}
