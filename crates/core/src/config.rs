//! Test configurations: the paper's central abstraction for *test
//! construction* (§2.1).
//!
//! A *test configuration description* dictates which nodes are controlled
//! and observed, the waveform templates applied at the control nodes, and
//! the post-processing that produces *return values*. A *test
//! configuration implementation* adds parameter bounds, variable values
//! and a seed parameter vector for a specific macro. A **test** is a
//! configuration implementation plus a concrete parameter value set.

use castg_dsp::UniformSamples;
use castg_numeric::ParamSpace;
use castg_spice::Circuit;

use crate::descr::ConfigDescription;
use crate::CoreError;

/// Raw simulated observation of one test application, before return-value
/// post-processing.
#[derive(Debug, Clone, PartialEq)]
pub enum Measurement {
    /// One or more scalar observations (DC levels, a THD value, …).
    Scalars(Vec<f64>),
    /// A sampled waveform (the 100 MHz `Vout` records of configurations
    /// #4/#5).
    Waveform(UniformSamples),
}

impl Measurement {
    /// Convenience constructor for a single scalar measurement.
    pub fn scalar(v: f64) -> Self {
        Measurement::Scalars(vec![v])
    }

    /// The scalar values if this is a scalar measurement.
    pub fn as_scalars(&self) -> Option<&[f64]> {
        match self {
            Measurement::Scalars(v) => Some(v),
            Measurement::Waveform(_) => None,
        }
    }

    /// The waveform if this is a waveform measurement.
    pub fn as_waveform(&self) -> Option<&UniformSamples> {
        match self {
            Measurement::Waveform(w) => Some(w),
            Measurement::Scalars(_) => None,
        }
    }
}

/// A test configuration implementation for a macro type.
///
/// Implementations live with the macro definitions (the `castg-macros`
/// crate implements the paper's five IV-converter configurations); the
/// generation and compaction algorithms in this crate consume them only
/// through this trait.
///
/// # Contract
///
/// * [`measure`](TestConfiguration::measure) simulates one application of
///   the test to a circuit (nominal or faulty) and returns the raw
///   observation.
/// * [`return_values`](TestConfiguration::return_values) maps a
///   measurement to the configuration's return values `R(T)`, given the
///   nominal measurement at the same parameters — this is where Δ-style
///   return values (`Δy = y_faulty − y_nominal` of Table 1) are formed.
///   Calling it with the nominal measurement twice yields the nominal
///   return values.
/// * [`tolerance_box`](TestConfiguration::tolerance_box) estimates the
///   per-return tolerance box half-width (process spread + equipment
///   accuracy) at a parameter point — the paper's *box-functions*.
pub trait TestConfiguration: Send + Sync {
    /// Stable numeric id (the paper numbers its configurations #1–#5).
    fn id(&self) -> usize;

    /// Short name, e.g. `"thd"` or `"step_max_dev"`.
    fn name(&self) -> &str;

    /// Names of the attached test parameters, in vector order.
    fn param_names(&self) -> Vec<String>;

    /// Constraint values for the parameters (§3.1: determined by the
    /// macro's and the test equipment's specifications).
    fn space(&self) -> ParamSpace;

    /// The seed parameter vector the optimization starts from (§2.2: a
    /// seed consists of the configuration and a particular parameter set,
    /// supplied by e.g. the designer).
    fn seed(&self) -> Vec<f64>;

    /// Simulates the configuration on a circuit at parameter vector
    /// `params` and returns the raw measurement.
    ///
    /// # Errors
    ///
    /// [`CoreError::Configuration`] for a wrong-sized parameter vector;
    /// [`CoreError::Simulation`] if the circuit fails to converge.
    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError>;

    /// Maps a measurement (and the nominal measurement at the same
    /// parameters) to the configuration's return values.
    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64>;

    /// Tolerance-box half-widths for each return value at `params`,
    /// given the nominal return values.
    fn tolerance_box(&self, params: &[f64], nominal_returns: &[f64]) -> Vec<f64>;

    /// The structured description of this configuration (Fig. 1 of the
    /// paper); used for reporting and the textual description format.
    fn description(&self) -> ConfigDescription;
}

/// Validates a parameter vector against a configuration's space.
///
/// # Errors
///
/// [`CoreError::Configuration`] when the length differs or a value is
/// non-finite; values outside the bounds are *clamped* by the caller
/// rather than rejected here, since optimizers may probe the boundary.
pub fn check_params(config: &dyn TestConfiguration, params: &[f64]) -> Result<(), CoreError> {
    let dim = config.space().dim();
    if params.len() != dim {
        return Err(CoreError::Configuration {
            config: config.name().to_string(),
            reason: format!("expected {dim} parameters, got {}", params.len()),
        });
    }
    if let Some(bad) = params.iter().find(|p| !p.is_finite()) {
        return Err(CoreError::Configuration {
            config: config.name().to_string(),
            reason: format!("non-finite parameter value {bad}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::DividerMacro;
    use crate::AnalogMacro;

    #[test]
    fn measurement_accessors() {
        let m = Measurement::scalar(3.0);
        assert_eq!(m.as_scalars(), Some(&[3.0][..]));
        assert!(m.as_waveform().is_none());
        let w = Measurement::Waveform(UniformSamples::new(0.0, 1.0, vec![1.0]));
        assert!(w.as_scalars().is_none());
        assert!(w.as_waveform().is_some());
    }

    #[test]
    fn check_params_validates_length_and_finiteness() {
        let mac = DividerMacro::new();
        let configs = mac.configurations();
        let c = configs[0].as_ref();
        assert!(check_params(c, &c.seed()).is_ok());
        assert!(check_params(c, &[]).is_err());
        assert!(check_params(c, &[f64::NAN]).is_err());
    }
}
