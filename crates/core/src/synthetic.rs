//! Synthetic macros for tests, documentation, quick starts — and
//! scaling work.
//!
//! The real device under test (the paper's CMOS IV-converter) lives in
//! `castg-macros`; this module provides
//!
//! * [`DividerMacro`] — a three-node resistor divider whose simulations
//!   are near-instant, so the generation and compaction algorithms can
//!   be exercised and unit-tested without transistor-level cost;
//! * [`LadderMacro`] — a parameterized RC ladder generating circuits of
//!   **arbitrary unknown count** (tens to thousands). Its MNA matrix is
//!   tridiagonal-plus-a-branch-row, the canonical large-sparse shape,
//!   which makes it the workload for benchmarking the dense-vs-sparse
//!   solver dispatch and for exercising generation/compaction/coverage
//!   at n = 16…1024;
//! * [`OtaChainMacro`] — a chain of MOS common-source stages: the
//!   *nonlinear* scalable family, driving many-transistor Newton solves
//!   through the same dispatch;
//! * [`MeshMacro`] — a 2-D resistive grid with configurable aspect
//!   ratio and port placement. Its MNA matrix is the 5-point-Laplacian
//!   shape whose natural-order fill grows like O(n·√n) — the workload
//!   that makes the sparse LU's fill-reducing AMD ordering earn its
//!   keep (and the subject of the ordering differential harness);
//! * [`CrossbarMacro`] — two overlaid bar arrays (segmented row and
//!   column bars, resistively coupled at every crosspoint) with MOS
//!   readout stages: mesh-like fill *plus* nonlinear devices and a
//!   bridge+pinhole dictionary.
//!
//! The scalable macros accept a solver/ordering override
//! (`with_solver`) so the four-way differential tests can force
//! Dense, Sparse-Natural, Sparse-AMD and Sparse-BTF evaluation of one
//! workload; the default is `Auto`/`Auto`, identical to every other
//! analysis.

use std::sync::Arc;

use castg_dsp::metrics;
use castg_faults::{exhaustive_bridge_faults, Fault, FaultDictionary};
use castg_numeric::{Bounds, ParamSpace};
use castg_spice::{
    AnalysisOptions, Circuit, DcAnalysis, IntegrationMethod, MosParams, MosPolarity, OrderingKind,
    Probe, SolverKind, TranAnalysis, Waveform,
};

use crate::config::{check_params, Measurement};
use crate::descr::{ConfigDescription, ParamSpec, PortAction};
use crate::{AnalogMacro, CoreError, TestConfiguration};

/// Analysis options a scalable macro's configurations solve with:
/// the default `Auto`/`Auto` everywhere except the four-way
/// (Dense / Sparse-Natural / Sparse-AMD / Sparse-BTF) differential
/// harnesses, which force a path via `with_solver`.
fn solve_options(solver: SolverKind, ordering: OrderingKind) -> AnalysisOptions {
    AnalysisOptions { solver, ordering, ..AnalysisOptions::default() }
}

/// A three-node resistive divider with an output capacitor, driven by a
/// voltage source `V1`.
///
/// Fault sites: `vin`, `mid`, `out` (3 bridging faults). Two test
/// configurations are provided: a one-parameter DC output measurement
/// and a two-parameter step-response deviation measurement, mirroring
/// the *shapes* of the paper's configuration set at toy scale.
///
/// # Example
///
/// ```
/// use castg_core::synthetic::DividerMacro;
/// use castg_core::AnalogMacro;
///
/// let m = DividerMacro::new();
/// assert_eq!(m.fault_dictionary().len(), 3);
/// assert_eq!(m.configurations().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DividerMacro {
    _private: (),
}

impl DividerMacro {
    /// Creates the synthetic macro.
    pub fn new() -> Self {
        DividerMacro { _private: () }
    }
}

impl AnalogMacro for DividerMacro {
    fn name(&self) -> &str {
        "divider"
    }

    fn macro_type(&self) -> &str {
        "R-divider"
    }

    fn nominal_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(5.0)).expect("fresh netlist");
        c.add_resistor("R1", vin, mid, 1e3).expect("fresh netlist");
        c.add_resistor("R2", mid, out, 1e3).expect("fresh netlist");
        c.add_resistor("R3", out, Circuit::GROUND, 2e3).expect("fresh netlist");
        c.add_capacitor("C1", out, Circuit::GROUND, 1e-9).expect("fresh netlist");
        c
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        vec!["vin".into(), "mid".into(), "out".into()]
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        FaultDictionary::new(exhaustive_bridge_faults(&refs, 10e3))
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![Arc::new(DividerDcConfig), Arc::new(DividerStepConfig)]
    }
}

/// Configuration #1 of the synthetic macro: drive `V1` with a DC level
/// `lev` and return `ΔV(out)`.
#[derive(Debug, Clone, Default)]
pub struct DividerDcConfig;

impl TestConfiguration for DividerDcConfig {
    fn id(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "dc_out"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["lev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(1.0, 8.0).expect("static bounds")])
    }

    fn seed(&self) -> Vec<f64> {
        vec![5.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let sol = DcAnalysis::new(circuit)
            .override_stimulus("V1", Waveform::dc(params[0]))
            .solve()?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        Ok(Measurement::scalar(sol.voltage(out)))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        // 2 % of the expected output level plus a 1 mV meter floor.
        vec![0.02 * params[0] * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "R-divider".into(),
            title: "DC output".into(),
            controls: vec![PortAction { node: "vin".into(), action: "dc(lev)".into() }],
            observes: vec![PortAction { node: "out".into(), action: "dc()".into() }],
            return_value: "dV(out)".into(),
            parameters: vec![ParamSpec { name: "lev".into(), lo: 1.0, hi: 8.0 }],
            variables: vec![],
            seed: vec![("lev".into(), 5.0)],
        }
    }
}

/// Configuration #2 of the synthetic macro: step `V1` from `base` to
/// `base + elev`, sample `v(out)` and return the maximum absolute
/// deviation from nominal.
#[derive(Debug, Clone, Default)]
pub struct DividerStepConfig;

impl DividerStepConfig {
    const T_STOP: f64 = 10e-6;
    const DT: f64 = 0.2e-6;
}

impl TestConfiguration for DividerStepConfig {
    fn id(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "step_dev"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["base".into(), "elev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            Bounds::new(0.0, 4.0).expect("static bounds"),
            Bounds::new(-4.0, 4.0).expect("static bounds"),
        ])
    }

    fn seed(&self) -> Vec<f64> {
        vec![1.0, 2.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        let trace = TranAnalysis::new(circuit)
            .override_stimulus("V1", Waveform::step(params[0], params[1], 1e-6, 0.1e-6))
            .run(Self::T_STOP, Self::DT, &[Probe::NodeVoltage(out)])?;
        Ok(Measurement::Waveform(castg_dsp::UniformSamples::new(
            0.0,
            Self::DT,
            trace.column(0).to_vec(),
        )))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_waveform(), nominal.as_waveform()) {
            (Some(m), Some(n)) => vec![metrics::max_abs_deviation(m, n)],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        vec![0.02 * (params[0].abs() + params[1].abs()).max(0.5) * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "R-divider".into(),
            title: "Step response".into(),
            controls: vec![PortAction {
                node: "vin".into(),
                action: "step(base, elev, slew_rate=sl)".into(),
            }],
            observes: vec![PortAction {
                node: "out".into(),
                action: "sample(rate=sa, time=t)".into(),
            }],
            return_value: "Max(dV(out))".into(),
            parameters: vec![
                ParamSpec { name: "base".into(), lo: 0.0, hi: 4.0 },
                ParamSpec { name: "elev".into(), lo: -4.0, hi: 4.0 },
            ],
            variables: vec![("sl".into(), 0.1e-6), ("sa".into(), 5e6), ("t".into(), 10e-6)],
            seed: vec![("base".into(), 1.0), ("elev".into(), 2.0)],
        }
    }
}

/// A parameterized RC ladder macro: `sections` identical cells of a
/// 1 kΩ series resistor with a 1 GΩ ∥ 10 pF shunt, driven by a voltage
/// source `V1` through a 1 kΩ source resistance into node `in`; the
/// last tap is node `out`. The shunt is deliberately huge: a resistive
/// ladder attenuates like `exp(−sections/√(Rp/Rs))`, and √(Rp/Rs) =
/// 1000 sections keeps the far end of even a 1022-section ladder at a
/// measurable level. The source resistance makes even a bridge from
/// `in` to ground observable at `out` (an ideal source would simply
/// absorb it), so every dictionary fault is detectable at every size
/// in the family.
///
/// The MNA matrix is tridiagonal plus one source branch row — the
/// canonical sparse structure — and the section count maps directly to
/// the unknown count ([`LadderMacro::unknowns`] = `sections + 3`), so
/// one constructor argument dials any system size from toy to
/// thousands of nodes. Fault sites are a fixed number of evenly spaced
/// taps; the dictionary holds all tap-pair bridges plus each tap
/// bridged to ground, all at 10 kΩ.
///
/// # Example
///
/// ```
/// use castg_core::synthetic::LadderMacro;
/// use castg_core::AnalogMacro;
///
/// let m = LadderMacro::new(253); // 256 MNA unknowns
/// assert_eq!(m.unknowns(), 256);
/// assert!(!m.fault_dictionary().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct LadderMacro {
    sections: usize,
    solver: SolverKind,
    ordering: OrderingKind,
}

impl LadderMacro {
    /// Source resistance between `V1` and node `in` (ohms).
    pub const R_SOURCE: f64 = 1e3;
    /// Series resistance per section (ohms).
    pub const R_SERIES: f64 = 1e3;
    /// Shunt resistance per section (ohms).
    pub const R_SHUNT: f64 = 1e9;
    /// Shunt capacitance per section (farads).
    pub const C_SHUNT: f64 = 10e-12;
    /// Dictionary resistance of every bridge fault (ohms).
    pub const BRIDGE_R0: f64 = 10e3;
    /// Number of evenly spaced fault-site taps.
    const FAULT_TAPS: usize = 4;

    /// Creates a ladder with the given number of sections (at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `sections < 2`.
    pub fn new(sections: usize) -> Self {
        assert!(sections >= 2, "a ladder needs at least 2 sections");
        LadderMacro {
            sections,
            solver: SolverKind::Auto,
            ordering: OrderingKind::Auto,
        }
    }

    /// Creates the smallest ladder with at least `n` MNA unknowns.
    pub fn with_unknowns(n: usize) -> Self {
        LadderMacro::new(n.saturating_sub(3).max(2))
    }

    /// Forces the linear-solver path and sparse-LU ordering every
    /// configuration of this macro solves with (default `Auto`/`Auto`).
    /// The three-way differential harness evaluates one dictionary
    /// through Dense, Sparse-Natural and Sparse-AMD variants built
    /// with this.
    pub fn with_solver(mut self, solver: SolverKind, ordering: OrderingKind) -> Self {
        self.solver = solver;
        self.ordering = ordering;
        self
    }

    /// Number of sections.
    pub fn sections(&self) -> usize {
        self.sections
    }

    /// MNA unknown count of the nominal circuit: `sections` tap nodes
    /// plus the `src` and `in` nodes plus the source branch current.
    pub fn unknowns(&self) -> usize {
        self.sections + 3
    }

    /// Name of tap `i` (`1 ≤ i ≤ sections`); the last tap is `"out"`.
    fn tap_name(&self, i: usize) -> String {
        if i == self.sections {
            "out".to_string()
        } else {
            format!("n{i}")
        }
    }
}

impl AnalogMacro for LadderMacro {
    fn name(&self) -> &str {
        "ladder"
    }

    fn macro_type(&self) -> &str {
        "RC-ladder"
    }

    fn nominal_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let src = c.node("src");
        let mut prev = c.node("in");
        c.add_vsource("V1", src, Circuit::GROUND, Waveform::dc(5.0)).expect("fresh netlist");
        c.add_resistor("Rsrc", src, prev, Self::R_SOURCE).expect("fresh netlist");
        for i in 1..=self.sections {
            let tap = c.node(&self.tap_name(i));
            c.add_resistor(&format!("Rs{i}"), prev, tap, Self::R_SERIES)
                .expect("fresh netlist");
            c.add_resistor(&format!("Rp{i}"), tap, Circuit::GROUND, Self::R_SHUNT)
                .expect("fresh netlist");
            c.add_capacitor(&format!("Cp{i}"), tap, Circuit::GROUND, Self::C_SHUNT)
                .expect("fresh netlist");
            prev = tap;
        }
        c
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        // `in` plus FAULT_TAPS evenly spaced taps (the last is `out`).
        // Round up: taps are numbered from 1, so flooring would name a
        // nonexistent `n0` on ladders shorter than FAULT_TAPS sections.
        let mut sites = vec!["in".to_string()];
        for k in 1..=Self::FAULT_TAPS {
            sites.push(self.tap_name((k * self.sections).div_ceil(Self::FAULT_TAPS)));
        }
        sites.dedup();
        sites
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        let mut faults = exhaustive_bridge_faults(&refs, Self::BRIDGE_R0);
        faults.extend(nodes.iter().map(|n| Fault::bridge(n.clone(), "0", Self::BRIDGE_R0)));
        FaultDictionary::new(faults)
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![
            Arc::new(LadderDcConfig {
                sections: self.sections,
                solver: self.solver,
                ordering: self.ordering,
            }),
            Arc::new(LadderStepConfig {
                sections: self.sections,
                solver: self.solver,
                ordering: self.ordering,
            }),
        ]
    }
}

/// Ladder configuration #1: drive `V1` with DC level `lev`, return
/// `ΔV(out)`.
#[derive(Debug, Clone)]
pub struct LadderDcConfig {
    sections: usize,
    solver: SolverKind,
    ordering: OrderingKind,
}

impl TestConfiguration for LadderDcConfig {
    fn id(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "dc_out"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["lev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(1.0, 8.0).expect("static bounds")])
    }

    fn seed(&self) -> Vec<f64> {
        vec![5.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let sol = DcAnalysis::with_options(circuit, solve_options(self.solver, self.ordering))
            .override_stimulus("V1", Waveform::dc(params[0]))
            .solve()?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        Ok(Measurement::scalar(sol.voltage(out)))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        // 2 % of the expected output level plus a 1 mV meter floor.
        vec![0.02 * params[0] * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "RC-ladder".into(),
            title: format!("DC output ({} sections)", self.sections),
            controls: vec![PortAction { node: "in".into(), action: "dc(lev)".into() }],
            observes: vec![PortAction { node: "out".into(), action: "dc()".into() }],
            return_value: "dV(out)".into(),
            parameters: vec![ParamSpec { name: "lev".into(), lo: 1.0, hi: 8.0 }],
            variables: vec![],
            seed: vec![("lev".into(), 5.0)],
        }
    }
}

/// Ladder configuration #2: step `V1` from `base` to `base + elev` and
/// return the maximum absolute deviation of `v(out)` from nominal.
#[derive(Debug, Clone)]
pub struct LadderStepConfig {
    sections: usize,
    solver: SolverKind,
    ordering: OrderingKind,
}

impl LadderStepConfig {
    const T_STOP: f64 = 2e-6;
    const DT: f64 = 0.05e-6;
}

impl TestConfiguration for LadderStepConfig {
    fn id(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "step_dev"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["base".into(), "elev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            Bounds::new(0.0, 4.0).expect("static bounds"),
            Bounds::new(-4.0, 4.0).expect("static bounds"),
        ])
    }

    fn seed(&self) -> Vec<f64> {
        vec![1.0, 2.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        let trace = TranAnalysis::with_options(
            circuit,
            solve_options(self.solver, self.ordering),
            IntegrationMethod::default(),
        )
        .override_stimulus("V1", Waveform::step(params[0], params[1], 0.2e-6, 0.05e-6))
        .run(Self::T_STOP, Self::DT, &[Probe::NodeVoltage(out)])?;
        Ok(Measurement::Waveform(castg_dsp::UniformSamples::new(
            0.0,
            Self::DT,
            trace.column(0).to_vec(),
        )))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_waveform(), nominal.as_waveform()) {
            (Some(m), Some(n)) => vec![metrics::max_abs_deviation(m, n)],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        vec![0.02 * (params[0].abs() + params[1].abs()).max(0.5) * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "RC-ladder".into(),
            title: format!("Step response ({} sections)", self.sections),
            controls: vec![PortAction {
                node: "in".into(),
                action: "step(base, elev, slew_rate=sl)".into(),
            }],
            observes: vec![PortAction {
                node: "out".into(),
                action: "sample(rate=sa, time=t)".into(),
            }],
            return_value: "Max(dV(out))".into(),
            parameters: vec![
                ParamSpec { name: "base".into(), lo: 0.0, hi: 4.0 },
                ParamSpec { name: "elev".into(), lo: -4.0, hi: 4.0 },
            ],
            variables: vec![("sl".into(), 0.05e-6), ("sa".into(), 20e6), ("t".into(), 2e-6)],
            seed: vec![("base".into(), 1.0), ("elev".into(), 2.0)],
        }
    }
}

/// A chain of NMOS common-source stages: the *nonlinear* scalable
/// synthetic macro.
///
/// Each stage is a locally biased common-source amplifier: the gate
/// bias is the Norton equivalent of a 1 MΩ divider to ≈2.5 V (5 µA
/// into the gate against 500 kΩ to ground) and the drain load is the
/// Norton equivalent of 50 kΩ to the 5 V rail (100 µA into the drain
/// against 50 kΩ to ground), with 100 kΩ coupling from the previous
/// drain and a 1 pF load capacitor; the input source `VIN` drives the
/// first gate and the last drain is node `out`. Every stage adds one
/// MOSFET and two nodes, so [`OtaChainMacro::unknowns`] = `2·stages +
/// 4` scales the many-transistor Newton workload directly. The fault
/// dictionary mixes drain-pair bridges with gate-oxide pinholes in
/// evenly spaced transistors.
///
/// The Norton form solves the *same node equations* as the rail-tied
/// divider/load form (each `(V(rail) − v)/R` branch contributes the
/// identical `v/R − V/R` terms), but it keeps the 5 V rail out of
/// every stage's connectivity: with no resistor touching `vdd`, the
/// MNA digraph decomposes into a chain of small strongly connected
/// components — `{vdd, br_VDD}`, `{vin, br_VIN, g1}`, one `{dᵢ,
/// gᵢ₊₁}` pair per interior stage (the MOS gate draws no DC current,
/// so `gᵢ → dᵢ` is one-directional while the coupling resistor is
/// symmetric), and `{out}` — which is exactly the structure the
/// sparse LU's BTF ordering exploits. A rail-tied chain is one giant
/// SCC and BTF degenerates to a single block.
///
/// # Example
///
/// ```
/// use castg_core::synthetic::OtaChainMacro;
/// use castg_core::AnalogMacro;
///
/// let m = OtaChainMacro::new(6); // 16 MNA unknowns
/// assert_eq!(m.unknowns(), 16);
/// assert_eq!(m.nominal_circuit().mosfet_names().len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct OtaChainMacro {
    stages: usize,
    solver: SolverKind,
    ordering: OrderingKind,
}

impl OtaChainMacro {
    /// Gate bias Norton current (amperes): 2.5 V across `BIAS_R`.
    pub const BIAS_I: f64 = 5e-6;
    /// Gate bias Norton resistance (ohms): the 1 MΩ ∥ 1 MΩ divider.
    pub const BIAS_R: f64 = 500e3;
    /// Drain load Norton current (amperes): 5 V across `LOAD_R`.
    pub const LOAD_I: f64 = 100e-6;
    /// Drain load Norton resistance (ohms).
    pub const LOAD_R: f64 = 50e3;
    /// Dictionary resistance of bridge faults (ohms).
    pub const BRIDGE_R0: f64 = 10e3;
    /// Dictionary resistance of pinhole faults (ohms).
    pub const PINHOLE_R0: f64 = 2e3;
    /// Number of fault-site stages (drains / transistors).
    const FAULT_STAGES: usize = 3;

    /// Creates a chain with the given number of stages (at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `stages < 2`.
    pub fn new(stages: usize) -> Self {
        assert!(stages >= 2, "a chain needs at least 2 stages");
        OtaChainMacro {
            stages,
            solver: SolverKind::Auto,
            ordering: OrderingKind::Auto,
        }
    }

    /// Forces the linear-solver path and sparse-LU ordering every
    /// configuration of this macro solves with (default `Auto`/`Auto`).
    /// The four-way differential harness evaluates one dictionary
    /// through Dense, Sparse-Natural, Sparse-AMD and Sparse-BTF
    /// variants built with this.
    pub fn with_solver(mut self, solver: SolverKind, ordering: OrderingKind) -> Self {
        self.solver = solver;
        self.ordering = ordering;
        self
    }

    /// Creates the smallest chain with at least `n` MNA unknowns.
    pub fn with_unknowns(n: usize) -> Self {
        OtaChainMacro::new(n.saturating_sub(4).div_ceil(2).max(2))
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// MNA unknown count: two nodes per stage (gate, drain) plus `vdd`
    /// and `vin` plus the two source branch currents.
    pub fn unknowns(&self) -> usize {
        2 * self.stages + 4
    }

    /// Name of stage `i`'s drain (`1 ≤ i ≤ stages`); the last is `"out"`.
    fn drain_name(&self, i: usize) -> String {
        if i == self.stages {
            "out".to_string()
        } else {
            format!("d{i}")
        }
    }

    /// Stage indices carrying fault sites (evenly spaced, ending at the
    /// last stage). Rounded up: stages are numbered from 1, so flooring
    /// would name a nonexistent `d0`/`M0` on chains shorter than
    /// FAULT_STAGES stages.
    fn fault_stages(&self) -> Vec<usize> {
        let mut stages: Vec<usize> = (1..=Self::FAULT_STAGES)
            .map(|k| (k * self.stages).div_ceil(Self::FAULT_STAGES))
            .collect();
        stages.dedup();
        stages
    }
}

impl AnalogMacro for OtaChainMacro {
    fn name(&self) -> &str {
        "ota_chain"
    }

    fn macro_type(&self) -> &str {
        "OTA-chain"
    }

    fn nominal_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("vin");
        c.add_vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(5.0)).expect("fresh netlist");
        c.add_vsource("VIN", vin, Circuit::GROUND, Waveform::dc(2.0)).expect("fresh netlist");
        let _ = vdd; // the rail feeds only its source branch: see the type-level docs
        let mut prev = vin;
        for i in 1..=self.stages {
            let g = c.node(&format!("g{i}"));
            let d = c.node(&self.drain_name(i));
            c.add_isource(&format!("IB_{i}"), Circuit::GROUND, g, Waveform::dc(Self::BIAS_I))
                .expect("fresh netlist");
            c.add_resistor(&format!("RB_{i}"), g, Circuit::GROUND, Self::BIAS_R)
                .expect("fresh netlist");
            c.add_resistor(&format!("RC_{i}"), prev, g, 100e3).expect("fresh netlist");
            c.add_mosfet(
                &format!("M{i}"),
                d,
                g,
                Circuit::GROUND,
                Circuit::GROUND,
                MosPolarity::Nmos,
                MosParams::nmos_default(10e-6, 1e-6),
            )
            .expect("fresh netlist");
            c.add_isource(&format!("ID_{i}"), Circuit::GROUND, d, Waveform::dc(Self::LOAD_I))
                .expect("fresh netlist");
            c.add_resistor(&format!("RD_{i}"), d, Circuit::GROUND, Self::LOAD_R)
                .expect("fresh netlist");
            c.add_capacitor(&format!("CL_{i}"), d, Circuit::GROUND, 1e-12)
                .expect("fresh netlist");
            prev = d;
        }
        c
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        self.fault_stages().iter().map(|&i| self.drain_name(i)).collect()
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        let mut faults = exhaustive_bridge_faults(&refs, Self::BRIDGE_R0);
        faults.extend(
            self.fault_stages().iter().map(|&i| Fault::pinhole(format!("M{i}"), Self::PINHOLE_R0)),
        );
        FaultDictionary::new(faults)
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![Arc::new(OtaChainDcConfig {
            stages: self.stages,
            solver: self.solver,
            ordering: self.ordering,
        })]
    }
}

/// OTA-chain configuration #1: drive `VIN` with DC level `lev`, return
/// `ΔV(out)`.
#[derive(Debug, Clone)]
pub struct OtaChainDcConfig {
    stages: usize,
    solver: SolverKind,
    ordering: OrderingKind,
}

impl TestConfiguration for OtaChainDcConfig {
    fn id(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "dc_out"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["lev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(0.0, 5.0).expect("static bounds")])
    }

    fn seed(&self) -> Vec<f64> {
        vec![2.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let sol = DcAnalysis::with_options(circuit, solve_options(self.solver, self.ordering))
            .override_stimulus("VIN", Waveform::dc(params[0]))
            .solve()?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        Ok(Measurement::scalar(sol.voltage(out)))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, _params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        // 50 mV on a 0–5 V output swing.
        vec![0.05]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "OTA-chain".into(),
            title: format!("DC output ({} stages)", self.stages),
            controls: vec![PortAction { node: "vin".into(), action: "dc(lev)".into() }],
            observes: vec![PortAction { node: "out".into(), action: "dc()".into() }],
            return_value: "dV(out)".into(),
            parameters: vec![ParamSpec { name: "lev".into(), lo: 0.0, hi: 5.0 }],
            variables: vec![],
            seed: vec![("lev".into(), 2.0)],
        }
    }
}

/// Where a [`MeshMacro`] places its drive and observe ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeshPorts {
    /// Drive at grid corner `(0, 0)`, observe at `(rows−1, cols−1)` —
    /// the longest diagonal current path.
    #[default]
    OppositeCorners,
    /// Drive at the middle of the top edge, observe at the middle of
    /// the bottom edge — a shorter, column-aligned path that leaves the
    /// corners floating-ish.
    EdgeMidpoints,
}

/// A 2-D resistive grid macro: `rows × cols` nodes, 1 kΩ between
/// lattice neighbors, each node shunted to ground by 1 MΩ ∥ 10 pF,
/// driven by a voltage source `V1` through a 1 kΩ source resistance
/// into the drive port (`"in"`); the observe port is `"out"`.
///
/// The MNA matrix is the 5-point Laplacian — the canonical structure
/// whose **natural-order fill blows up** (O(n·√n) for a square grid,
/// against O(nnz) for the ladder family): this is the workload that
/// justifies the sparse LU's fill-reducing AMD ordering, and the
/// subject of the ordering differential and fill-reduction CI gates.
/// The per-node shunts keep real current flowing through the lattice,
/// so node potentials form a gradient from `in` to `out` and bridge
/// faults between distant taps are observable at DC.
///
/// Aspect ratio is configurable through the constructor (`rows` vs
/// `cols`), port placement through [`MeshMacro::with_ports`], and the
/// solver/ordering used by its configurations through
/// [`MeshMacro::with_solver`] (the three-way differential harness).
///
/// # Example
///
/// ```
/// use castg_core::synthetic::MeshMacro;
/// use castg_core::AnalogMacro;
///
/// let m = MeshMacro::with_unknowns(256); // 16×16 grid + source
/// assert!(m.unknowns() >= 256);
/// assert!(!m.fault_dictionary().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MeshMacro {
    rows: usize,
    cols: usize,
    ports: MeshPorts,
    solver: SolverKind,
    ordering: OrderingKind,
}

impl MeshMacro {
    /// Source resistance between `V1` and the drive port (ohms).
    pub const R_SOURCE: f64 = 1e3;
    /// Lattice resistance between neighboring grid nodes (ohms).
    pub const R_SERIES: f64 = 1e3;
    /// Shunt resistance from every grid node to ground (ohms). Low
    /// enough that milliamp-scale current flows through the lattice and
    /// the node potentials form a measurable gradient.
    pub const R_SHUNT: f64 = 1e6;
    /// Shunt capacitance from every grid node to ground (farads).
    pub const C_SHUNT: f64 = 10e-12;
    /// Dictionary resistance of every bridge fault (ohms).
    pub const BRIDGE_R0: f64 = 10e3;

    /// Creates a mesh with the given aspect (both dimensions at
    /// least 2), corner ports, `Auto` solver and ordering.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "a mesh needs at least 2×2 nodes");
        MeshMacro {
            rows,
            cols,
            ports: MeshPorts::default(),
            solver: SolverKind::Auto,
            ordering: OrderingKind::Auto,
        }
    }

    /// Creates the smallest square mesh with at least `n` MNA unknowns.
    pub fn with_unknowns(n: usize) -> Self {
        let mut side = 2usize;
        while side * side + 2 < n {
            side += 1;
        }
        MeshMacro::new(side, side)
    }

    /// Selects the drive/observe port placement.
    pub fn with_ports(mut self, ports: MeshPorts) -> Self {
        self.ports = ports;
        self
    }

    /// Forces the linear-solver path and sparse-LU ordering every
    /// configuration of this macro solves with (default `Auto`/`Auto`).
    pub fn with_solver(mut self, solver: SolverKind, ordering: OrderingKind) -> Self {
        self.solver = solver;
        self.ordering = ordering;
        self
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// MNA unknown count: the grid nodes plus the source node plus the
    /// source branch current.
    pub fn unknowns(&self) -> usize {
        self.rows * self.cols + 2
    }

    /// `(row, col)` of the drive and observe ports.
    fn port_coords(&self) -> ((usize, usize), (usize, usize)) {
        match self.ports {
            MeshPorts::OppositeCorners => ((0, 0), (self.rows - 1, self.cols - 1)),
            MeshPorts::EdgeMidpoints => {
                ((0, self.cols / 2), (self.rows - 1, self.cols / 2))
            }
        }
    }

    /// Name of the grid node at `(r, c)`; the drive port is `"in"`,
    /// the observe port `"out"`.
    fn node_name(&self, r: usize, c: usize) -> String {
        let (drive, observe) = self.port_coords();
        if (r, c) == drive {
            "in".to_string()
        } else if (r, c) == observe {
            "out".to_string()
        } else {
            format!("m{r}_{c}")
        }
    }
}

impl AnalogMacro for MeshMacro {
    fn name(&self) -> &str {
        "mesh"
    }

    fn macro_type(&self) -> &str {
        "R-mesh"
    }

    fn nominal_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let src = c.node("src");
        // Grid nodes in row-major order: this *is* the natural MNA
        // ordering the fill comparison judges, so keep it canonical.
        for r in 0..self.rows {
            for col in 0..self.cols {
                c.node(&self.node_name(r, col));
            }
        }
        c.add_vsource("V1", src, Circuit::GROUND, Waveform::dc(5.0)).expect("fresh netlist");
        let drive = c.find_node("in").expect("drive port exists");
        c.add_resistor("Rsrc", src, drive, Self::R_SOURCE).expect("fresh netlist");
        for r in 0..self.rows {
            for col in 0..self.cols {
                let here = c.find_node(&self.node_name(r, col)).expect("grid node");
                c.add_resistor(&format!("Rp{r}_{col}"), here, Circuit::GROUND, Self::R_SHUNT)
                    .expect("fresh netlist");
                c.add_capacitor(&format!("Cp{r}_{col}"), here, Circuit::GROUND, Self::C_SHUNT)
                    .expect("fresh netlist");
                if col + 1 < self.cols {
                    let east = c.find_node(&self.node_name(r, col + 1)).expect("grid node");
                    c.add_resistor(&format!("Rh{r}_{col}"), here, east, Self::R_SERIES)
                        .expect("fresh netlist");
                }
                if r + 1 < self.rows {
                    let south = c.find_node(&self.node_name(r + 1, col)).expect("grid node");
                    c.add_resistor(&format!("Rv{r}_{col}"), here, south, Self::R_SERIES)
                        .expect("fresh netlist");
                }
            }
        }
        c
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        // The two ports, the grid center, and two far-apart edge taps:
        // sites at genuinely different lattice potentials, so tap-pair
        // bridges have DC signatures.
        let candidates = [
            self.node_name(0, 0),
            self.node_name(self.rows / 2, self.cols / 2),
            self.node_name(self.rows - 1, 0),
            self.node_name(0, self.cols - 1),
            self.node_name(self.rows - 1, self.cols - 1),
        ];
        let (drive, observe) = self.port_coords();
        let mut sites = vec![
            self.node_name(drive.0, drive.1),
            self.node_name(observe.0, observe.1),
        ];
        for cand in candidates {
            if !sites.contains(&cand) {
                sites.push(cand);
            }
        }
        sites
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        let mut faults = exhaustive_bridge_faults(&refs, Self::BRIDGE_R0);
        faults.extend(nodes.iter().map(|n| Fault::bridge(n.clone(), "0", Self::BRIDGE_R0)));
        FaultDictionary::new(faults)
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![
            Arc::new(MeshDcConfig {
                rows: self.rows,
                cols: self.cols,
                solver: self.solver,
                ordering: self.ordering,
            }),
            Arc::new(MeshStepConfig {
                rows: self.rows,
                cols: self.cols,
                solver: self.solver,
                ordering: self.ordering,
            }),
        ]
    }
}

/// Mesh configuration #1: drive `V1` with DC level `lev`, return
/// `ΔV(out)`.
#[derive(Debug, Clone)]
pub struct MeshDcConfig {
    rows: usize,
    cols: usize,
    solver: SolverKind,
    ordering: OrderingKind,
}

impl TestConfiguration for MeshDcConfig {
    fn id(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "dc_out"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["lev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(1.0, 8.0).expect("static bounds")])
    }

    fn seed(&self) -> Vec<f64> {
        vec![5.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let sol = DcAnalysis::with_options(circuit, solve_options(self.solver, self.ordering))
            .override_stimulus("V1", Waveform::dc(params[0]))
            .solve()?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        Ok(Measurement::scalar(sol.voltage(out)))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        // 2 % of the expected output level plus a 1 mV meter floor.
        vec![0.02 * params[0] * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "R-mesh".into(),
            title: format!("DC output ({}x{} mesh)", self.rows, self.cols),
            controls: vec![PortAction { node: "in".into(), action: "dc(lev)".into() }],
            observes: vec![PortAction { node: "out".into(), action: "dc()".into() }],
            return_value: "dV(out)".into(),
            parameters: vec![ParamSpec { name: "lev".into(), lo: 1.0, hi: 8.0 }],
            variables: vec![],
            seed: vec![("lev".into(), 5.0)],
        }
    }
}

/// Mesh configuration #2: step `V1` from `base` to `base + elev` and
/// return the maximum absolute deviation of `v(out)` from nominal.
#[derive(Debug, Clone)]
pub struct MeshStepConfig {
    rows: usize,
    cols: usize,
    solver: SolverKind,
    ordering: OrderingKind,
}

impl MeshStepConfig {
    const T_STOP: f64 = 2e-6;
    const DT: f64 = 0.05e-6;
}

impl TestConfiguration for MeshStepConfig {
    fn id(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "step_dev"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["base".into(), "elev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            Bounds::new(0.0, 4.0).expect("static bounds"),
            Bounds::new(-4.0, 4.0).expect("static bounds"),
        ])
    }

    fn seed(&self) -> Vec<f64> {
        vec![1.0, 2.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        let trace = TranAnalysis::with_options(
            circuit,
            solve_options(self.solver, self.ordering),
            IntegrationMethod::default(),
        )
        .override_stimulus("V1", Waveform::step(params[0], params[1], 0.2e-6, 0.05e-6))
        .run(Self::T_STOP, Self::DT, &[Probe::NodeVoltage(out)])?;
        Ok(Measurement::Waveform(castg_dsp::UniformSamples::new(
            0.0,
            Self::DT,
            trace.column(0).to_vec(),
        )))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_waveform(), nominal.as_waveform()) {
            (Some(m), Some(n)) => vec![metrics::max_abs_deviation(m, n)],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        vec![0.02 * (params[0].abs() + params[1].abs()).max(0.5) * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "R-mesh".into(),
            title: format!("Step response ({}x{} mesh)", self.rows, self.cols),
            controls: vec![PortAction {
                node: "in".into(),
                action: "step(base, elev, slew_rate=sl)".into(),
            }],
            observes: vec![PortAction {
                node: "out".into(),
                action: "sample(rate=sa, time=t)".into(),
            }],
            return_value: "Max(dV(out))".into(),
            parameters: vec![
                ParamSpec { name: "base".into(), lo: 0.0, hi: 4.0 },
                ParamSpec { name: "elev".into(), lo: -4.0, hi: 4.0 },
            ],
            variables: vec![("sl".into(), 0.05e-6), ("sa".into(), 20e6), ("t".into(), 2e-6)],
            seed: vec![("base".into(), 1.0), ("elev".into(), 2.0)],
        }
    }
}

/// A crossbar macro: `rows` segmented row bars overlaid on `cols`
/// segmented column bars, resistively coupled at every crosspoint,
/// with NMOS common-source readout stages on a few columns.
///
/// Every row bar is a chain of 100 Ω segments fed from the drive port
/// `"in"` (behind a 1 kΩ source resistance); every column bar is a
/// chain of 100 Ω segments loaded to ground at its tail; crosspoint
/// `(i, j)` couples row segment `i,j` to column segment `i,j` through
/// 10 kΩ. Three evenly spaced column tails bias NMOS readout
/// transistors (`M1`…) whose last drain is `"out"`. Structurally this
/// is *two overlaid meshes* — worse natural-order fill than the plain
/// grid — and the MOS stages make it the nonlinear member of the
/// fill-reducing-ordering workload family, with gate-oxide **pinhole**
/// faults joining the bridge dictionary.
///
/// # Example
///
/// ```
/// use castg_core::synthetic::CrossbarMacro;
/// use castg_core::AnalogMacro;
///
/// let m = CrossbarMacro::new(4, 4);
/// assert_eq!(m.unknowns(), m.nominal_circuit().unknown_count());
/// assert!(m.fault_dictionary().iter().any(|f| f.name().starts_with("pinhole")));
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarMacro {
    rows: usize,
    cols: usize,
    solver: SolverKind,
    ordering: OrderingKind,
}

impl CrossbarMacro {
    /// Source resistance between `V1` and the drive port (ohms).
    pub const R_SOURCE: f64 = 1e3;
    /// Feed resistance from the drive port into each row-bar head (ohms).
    pub const R_FEED: f64 = 1e3;
    /// Bar segment resistance between adjacent crosspoints (ohms).
    pub const R_BAR: f64 = 100.0;
    /// Crosspoint coupling resistance (ohms).
    pub const R_CROSS: f64 = 10e3;
    /// Column tail load to ground (ohms).
    pub const R_LOAD: f64 = 10e3;
    /// Readout drain load to the 5 V rail (ohms).
    pub const R_DRAIN: f64 = 50e3;
    /// Readout drain load capacitance (farads).
    pub const C_OUT: f64 = 1e-12;
    /// Dictionary resistance of bridge faults (ohms).
    pub const BRIDGE_R0: f64 = 10e3;
    /// Dictionary resistance of pinhole faults (ohms).
    pub const PINHOLE_R0: f64 = 2e3;
    /// Number of readout stages (and pinhole fault sites).
    const READOUTS: usize = 3;

    /// Creates a crossbar with the given bar counts (both at least 2),
    /// `Auto` solver and ordering.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "a crossbar needs at least 2×2 bars");
        CrossbarMacro {
            rows,
            cols,
            solver: SolverKind::Auto,
            ordering: OrderingKind::Auto,
        }
    }

    /// Creates the smallest square crossbar with at least `n` MNA
    /// unknowns.
    pub fn with_unknowns(n: usize) -> Self {
        let mut side = 2usize;
        while CrossbarMacro::new(side, side).unknowns() < n {
            side += 1;
        }
        CrossbarMacro::new(side, side)
    }

    /// Forces the linear-solver path and sparse-LU ordering every
    /// configuration of this macro solves with (default `Auto`/`Auto`).
    pub fn with_solver(mut self, solver: SolverKind, ordering: OrderingKind) -> Self {
        self.solver = solver;
        self.ordering = ordering;
        self
    }

    /// MNA unknown count: two bar nodes per crosspoint, the `src`,
    /// `in` and `vdd` nodes, one drain node per readout stage, and the
    /// two source branch currents.
    pub fn unknowns(&self) -> usize {
        2 * self.rows * self.cols + self.readout_cols().len() + 5
    }

    /// Column indices carrying readout stages (evenly spaced, ending at
    /// the last column; deduplicated for narrow crossbars).
    fn readout_cols(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = (1..=Self::READOUTS)
            .map(|k| (k * self.cols).div_ceil(Self::READOUTS) - 1)
            .collect();
        cols.dedup();
        cols
    }

    /// Name of the row-bar node at `(bar i, segment j)`.
    fn row_node(&self, i: usize, j: usize) -> String {
        format!("rb{i}_{j}")
    }

    /// Name of the column-bar node at `(segment i, bar j)`.
    fn col_node(&self, i: usize, j: usize) -> String {
        format!("cb{i}_{j}")
    }

    /// Name of readout stage `k`'s drain; the last is `"out"`.
    fn drain_name(&self, k: usize) -> String {
        if k + 1 == self.readout_cols().len() {
            "out".to_string()
        } else {
            format!("do{k}")
        }
    }
}

impl AnalogMacro for CrossbarMacro {
    fn name(&self) -> &str {
        "crossbar"
    }

    fn macro_type(&self) -> &str {
        "RX-crossbar"
    }

    fn nominal_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let src = c.node("src");
        let inp = c.node("in");
        let vdd = c.node("vdd");
        c.add_vsource("V1", src, Circuit::GROUND, Waveform::dc(5.0)).expect("fresh netlist");
        c.add_resistor("Rsrc", src, inp, Self::R_SOURCE).expect("fresh netlist");
        c.add_vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(5.0)).expect("fresh netlist");
        // Row bars (row-major), then column bars: the natural ordering
        // interleaves the two lattices only through the crosspoints.
        for i in 0..self.rows {
            for j in 0..self.cols {
                let here = c.node(&self.row_node(i, j));
                if j == 0 {
                    c.add_resistor(&format!("Rf{i}"), inp, here, Self::R_FEED)
                        .expect("fresh netlist");
                } else {
                    let west = c.find_node(&self.row_node(i, j - 1)).expect("row node");
                    c.add_resistor(&format!("Rr{i}_{j}"), west, here, Self::R_BAR)
                        .expect("fresh netlist");
                }
            }
        }
        for j in 0..self.cols {
            for i in 0..self.rows {
                let here = c.node(&self.col_node(i, j));
                if i > 0 {
                    let north = c.find_node(&self.col_node(i - 1, j)).expect("col node");
                    c.add_resistor(&format!("Rc{i}_{j}"), north, here, Self::R_BAR)
                        .expect("fresh netlist");
                }
            }
            let tail = c.find_node(&self.col_node(self.rows - 1, j)).expect("col node");
            c.add_resistor(&format!("Rl{j}"), tail, Circuit::GROUND, Self::R_LOAD)
                .expect("fresh netlist");
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                let rn = c.find_node(&self.row_node(i, j)).expect("row node");
                let cn = c.find_node(&self.col_node(i, j)).expect("col node");
                c.add_resistor(&format!("Rx{i}_{j}"), rn, cn, Self::R_CROSS)
                    .expect("fresh netlist");
            }
        }
        // Readout stages: column tails bias NMOS common-source stages.
        for (k, &j) in self.readout_cols().iter().enumerate() {
            let gate = c.find_node(&self.col_node(self.rows - 1, j)).expect("col tail");
            let drain = c.node(&self.drain_name(k));
            c.add_mosfet(
                &format!("M{}", k + 1),
                drain,
                gate,
                Circuit::GROUND,
                Circuit::GROUND,
                MosPolarity::Nmos,
                MosParams::nmos_default(10e-6, 1e-6),
            )
            .expect("fresh netlist");
            c.add_resistor(&format!("Rd{k}"), vdd, drain, Self::R_DRAIN)
                .expect("fresh netlist");
            c.add_capacitor(&format!("Cd{k}"), drain, Circuit::GROUND, Self::C_OUT)
                .expect("fresh netlist");
        }
        c
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        let mut sites = vec![
            "in".to_string(),
            self.row_node(0, self.cols - 1),
            self.col_node(self.rows - 1, 0),
        ];
        let last_readout = *self.readout_cols().last().expect("at least one readout");
        let gate = self.col_node(self.rows - 1, last_readout);
        if !sites.contains(&gate) {
            sites.push(gate);
        }
        sites.push("out".to_string());
        sites
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        let mut faults = exhaustive_bridge_faults(&refs, Self::BRIDGE_R0);
        faults.extend(
            (1..=self.readout_cols().len())
                .map(|k| Fault::pinhole(format!("M{k}"), Self::PINHOLE_R0)),
        );
        FaultDictionary::new(faults)
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![Arc::new(CrossbarDcConfig {
            rows: self.rows,
            cols: self.cols,
            solver: self.solver,
            ordering: self.ordering,
        })]
    }
}

/// Crossbar configuration #1: drive `V1` with DC level `lev`, return
/// `ΔV(out)`.
#[derive(Debug, Clone)]
pub struct CrossbarDcConfig {
    rows: usize,
    cols: usize,
    solver: SolverKind,
    ordering: OrderingKind,
}

impl TestConfiguration for CrossbarDcConfig {
    fn id(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "dc_out"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["lev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(0.5, 8.0).expect("static bounds")])
    }

    fn seed(&self) -> Vec<f64> {
        vec![5.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let sol = DcAnalysis::with_options(circuit, solve_options(self.solver, self.ordering))
            .override_stimulus("V1", Waveform::dc(params[0]))
            .solve()?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        Ok(Measurement::scalar(sol.voltage(out)))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, _params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        // 50 mV on a 0–5 V readout swing.
        vec![0.05]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "RX-crossbar".into(),
            title: format!("DC output ({}x{} crossbar)", self.rows, self.cols),
            controls: vec![PortAction { node: "in".into(), action: "dc(lev)".into() }],
            observes: vec![PortAction { node: "out".into(), action: "dc()".into() }],
            return_value: "dV(out)".into(),
            parameters: vec![ParamSpec { name: "lev".into(), lo: 0.5, hi: 8.0 }],
            variables: vec![],
            seed: vec![("lev".into(), 5.0)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_divider_solves() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        // 5 V over 1k + 1k + 2k: out = 5 * 2/4 = 2.5 V.
        assert!((sol.voltage(c.find_node("out").unwrap()) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn dc_config_measures_divider_ratio() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        let cfg = DividerDcConfig;
        let meas = cfg.measure(&c, &[4.0]).unwrap();
        assert!((meas.as_scalars().unwrap()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dc_config_rejects_wrong_arity() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        assert!(DividerDcConfig.measure(&c, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn step_config_produces_waveform() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        let cfg = DividerStepConfig;
        let meas = cfg.measure(&c, &[1.0, 2.0]).unwrap();
        let w = meas.as_waveform().unwrap();
        assert!(w.len() > 10);
        // Starts at base/2 (divider halves), ends near (base+elev)/2.
        assert!((w.values()[0] - 0.5).abs() < 0.01);
        assert!((w.values().last().unwrap() - 1.5).abs() < 0.01);
    }

    #[test]
    fn return_values_are_deltas() {
        let cfg = DividerDcConfig;
        let nom = Measurement::scalar(2.0);
        let flt = Measurement::scalar(2.4);
        let rv = cfg.return_values(&flt, &nom);
        assert!((rv[0] - 0.4).abs() < 1e-12);
        assert_eq!(cfg.return_values(&nom, &nom), vec![0.0]);
    }

    #[test]
    fn descriptions_roundtrip_through_text() {
        for cfg in DividerMacro::new().configurations() {
            let d = cfg.description();
            let text = d.to_string();
            let parsed = ConfigDescription::parse(&text).unwrap();
            assert_eq!(d, parsed, "config {} description must round-trip", cfg.name());
        }
    }

    #[test]
    fn ladder_unknown_count_matches_circuit() {
        for n in [16, 64, 256] {
            let m = LadderMacro::with_unknowns(n);
            let c = m.nominal_circuit();
            assert_eq!(c.unknown_count(), m.unknowns());
            assert!(m.unknowns() >= n);
        }
    }

    #[test]
    fn ladder_dc_attenuates_mildly() {
        let m = LadderMacro::new(64);
        let c = m.nominal_circuit();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        let v_out = sol.voltage(c.find_node("out").unwrap());
        // 64 sections of 1 kΩ over 1 GΩ shunts: sub-percent droop.
        assert!(v_out > 4.5 && v_out < 5.0, "v_out = {v_out}");
    }

    #[test]
    fn ladder_faults_inject_and_perturb_output() {
        let m = LadderMacro::new(32);
        let c = m.nominal_circuit();
        let nominal = DcAnalysis::new(&c).solve().unwrap();
        let out = c.find_node("out").unwrap();
        for fault in m.fault_dictionary().iter() {
            let faulty = fault.inject(&c).unwrap();
            let sol = DcAnalysis::new(&faulty).solve().unwrap();
            // A ground bridge collapses the output; tap-tap bridges
            // shift it measurably. Either way the circuit stays
            // solvable.
            assert!(sol.voltage(out).is_finite(), "{}", fault.name());
        }
        // At least the out-to-ground bridge must move the output a lot.
        let gnd_bridge = Fault::bridge("out", "0", LadderMacro::BRIDGE_R0);
        let sol = DcAnalysis::new(&gnd_bridge.inject(&c).unwrap()).solve().unwrap();
        assert!((sol.voltage(out) - nominal.voltage(out)).abs() > 0.5);
    }

    #[test]
    fn ladder_configs_measure_and_roundtrip() {
        let m = LadderMacro::new(16);
        let c = m.nominal_circuit();
        for cfg in m.configurations() {
            let meas = cfg.measure(&c, &cfg.seed()).unwrap();
            let rv = cfg.return_values(&meas, &meas);
            assert!(rv.iter().all(|v| v.abs() < 1e-12), "{rv:?}");
            let d = cfg.description();
            assert_eq!(d, ConfigDescription::parse(&d.to_string()).unwrap());
        }
    }

    #[test]
    fn ota_chain_unknowns_and_convergence() {
        let m = OtaChainMacro::with_unknowns(32);
        let c = m.nominal_circuit();
        assert_eq!(c.unknown_count(), m.unknowns());
        let sol = DcAnalysis::new(&c).solve().unwrap();
        let out = sol.voltage(c.find_node("out").unwrap());
        assert!((0.0..=5.0).contains(&out), "out = {out}");
    }

    #[test]
    fn ota_chain_fault_dictionary_injects() {
        let m = OtaChainMacro::new(8);
        let c = m.nominal_circuit();
        let dict = m.fault_dictionary();
        assert!(!dict.is_empty());
        for fault in dict.iter() {
            fault.inject(&c).unwrap();
        }
    }

    /// The smallest sizes the constructors permit must still produce
    /// injectable dictionaries (fault sites are rounded *up* to
    /// existing taps/stages — flooring used to name a nonexistent
    /// `n0`/`d0`/`M0`).
    #[test]
    fn minimum_size_macros_have_injectable_dictionaries() {
        for sections in 2..=5 {
            let m = LadderMacro::new(sections);
            let c = m.nominal_circuit();
            let dict = m.fault_dictionary();
            assert!(!dict.is_empty(), "sections={sections}");
            for fault in dict.iter() {
                fault.inject(&c).unwrap_or_else(|e| {
                    panic!("sections={sections}, fault {}: {e}", fault.name())
                });
            }
        }
        for stages in 2..=4 {
            let m = OtaChainMacro::new(stages);
            let c = m.nominal_circuit();
            for fault in m.fault_dictionary().iter() {
                fault.inject(&c).unwrap_or_else(|e| {
                    panic!("stages={stages}, fault {}: {e}", fault.name())
                });
            }
        }
    }

    #[test]
    fn mesh_unknown_count_and_aspect() {
        for n in [16, 64, 256] {
            let m = MeshMacro::with_unknowns(n);
            let c = m.nominal_circuit();
            assert_eq!(c.unknown_count(), m.unknowns());
            assert!(m.unknowns() >= n);
        }
        let wide = MeshMacro::new(3, 9);
        assert_eq!(wide.shape(), (3, 9));
        assert_eq!(wide.nominal_circuit().unknown_count(), 3 * 9 + 2);
    }

    #[test]
    fn mesh_dc_has_a_gradient_and_ports_work() {
        for ports in [MeshPorts::OppositeCorners, MeshPorts::EdgeMidpoints] {
            let m = MeshMacro::new(6, 6).with_ports(ports);
            let c = m.nominal_circuit();
            let sol = DcAnalysis::new(&c).solve().unwrap();
            let v_in = sol.voltage(c.find_node("in").unwrap());
            let v_out = sol.voltage(c.find_node("out").unwrap());
            // The shunt load pulls real current through the lattice:
            // measurable drop from the source, gradient toward `out`.
            assert!(v_in > 3.0 && v_in < 5.0, "{ports:?}: v_in = {v_in}");
            assert!(v_out > 0.0 && v_out < v_in, "{ports:?}: v_out = {v_out} v_in = {v_in}");
        }
    }

    #[test]
    fn mesh_faults_inject_and_ground_bridge_collapses_output() {
        let m = MeshMacro::new(5, 5);
        let c = m.nominal_circuit();
        let nominal = DcAnalysis::new(&c).solve().unwrap();
        let out = c.find_node("out").unwrap();
        for fault in m.fault_dictionary().iter() {
            let faulty = fault.inject(&c).unwrap();
            let sol = DcAnalysis::new(&faulty).solve().unwrap();
            assert!(sol.voltage(out).is_finite(), "{}", fault.name());
        }
        let gnd = Fault::bridge("out", "0", MeshMacro::BRIDGE_R0);
        let sol = DcAnalysis::new(&gnd.inject(&c).unwrap()).solve().unwrap();
        assert!((sol.voltage(out) - nominal.voltage(out)).abs() > 0.1);
    }

    #[test]
    fn mesh_configs_measure_and_roundtrip() {
        let m = MeshMacro::new(4, 4);
        let c = m.nominal_circuit();
        for cfg in m.configurations() {
            let meas = cfg.measure(&c, &cfg.seed()).unwrap();
            let rv = cfg.return_values(&meas, &meas);
            assert!(rv.iter().all(|v| v.abs() < 1e-12), "{rv:?}");
            let d = cfg.description();
            assert_eq!(d, ConfigDescription::parse(&d.to_string()).unwrap());
        }
    }

    /// The mesh is the workload the AMD ordering exists for: at
    /// n ≥ 400 unknowns the ordered factors must carry at most half the
    /// natural-order fill, and Auto must therefore resolve to AMD.
    #[test]
    fn mesh_amd_halves_fill_and_auto_picks_it() {
        use castg_spice::{sparse_fill_stats, OrderingKind};
        let m = MeshMacro::new(24, 24);
        let c = m.nominal_circuit();
        let natural = sparse_fill_stats(&c, OrderingKind::Natural).unwrap();
        let amd = sparse_fill_stats(&c, OrderingKind::Amd).unwrap();
        assert!(
            amd.lu_nnz * 2 <= natural.lu_nnz,
            "amd {} vs natural {}",
            amd.lu_nnz,
            natural.lu_nnz
        );
        let auto = sparse_fill_stats(&c, OrderingKind::Auto).unwrap();
        assert_eq!(auto.resolved, OrderingKind::Amd);
        assert_eq!(auto.lu_nnz, amd.lu_nnz);
    }

    /// The Norton-biased OTA chain is the workload the BTF ordering
    /// exists for: the cascade must condense into many small strongly
    /// connected components (one per stage pair, roughly), and the
    /// summed per-block fill must not exceed the global-AMD fill.
    #[test]
    fn ota_chain_btf_condenses_and_fill_beats_amd() {
        use castg_spice::{sparse_fill_stats, OrderingKind};
        let m = OtaChainMacro::with_unknowns(512);
        let c = m.nominal_circuit();
        let amd = sparse_fill_stats(&c, OrderingKind::Amd).unwrap();
        let btf = sparse_fill_stats(&c, OrderingKind::Btf).unwrap();
        assert_eq!(btf.resolved, OrderingKind::Btf, "cascade must condense");
        assert!(btf.blocks > 1, "expected >1 diagonal block, got {}", btf.blocks);
        assert!(
            btf.largest_block < m.unknowns() / 2,
            "largest block {} should be far below n={}",
            btf.largest_block,
            m.unknowns()
        );
        assert!(btf.lu_nnz <= amd.lu_nnz, "btf {} vs amd {}", btf.lu_nnz, amd.lu_nnz);
    }

    #[test]
    fn mesh_solver_override_agrees_across_paths() {
        use castg_spice::{OrderingKind, SolverKind};
        let variants = [
            MeshMacro::new(5, 5).with_solver(SolverKind::Dense, OrderingKind::Natural),
            MeshMacro::new(5, 5).with_solver(SolverKind::Sparse, OrderingKind::Natural),
            MeshMacro::new(5, 5).with_solver(SolverKind::Sparse, OrderingKind::Amd),
        ];
        let reference: Vec<f64> = {
            let m = &variants[0];
            let cfg = &m.configurations()[0];
            let meas = cfg.measure(&m.nominal_circuit(), &[5.0]).unwrap();
            meas.as_scalars().unwrap().to_vec()
        };
        for m in &variants[1..] {
            let cfg = &m.configurations()[0];
            let meas = cfg.measure(&m.nominal_circuit(), &[5.0]).unwrap();
            let got = meas.as_scalars().unwrap();
            assert!((got[0] - reference[0]).abs() <= 1e-9 * reference[0].abs().max(1.0));
        }
    }

    #[test]
    fn crossbar_unknowns_solves_and_responds() {
        for n in [32, 64] {
            let m = CrossbarMacro::with_unknowns(n);
            let c = m.nominal_circuit();
            assert_eq!(c.unknown_count(), m.unknowns());
            assert!(m.unknowns() >= n);
        }
        let m = CrossbarMacro::new(4, 4);
        let c = m.nominal_circuit();
        let cfg = &m.configurations()[0];
        let lo = cfg.measure(&c, &[1.0]).unwrap();
        let hi = cfg.measure(&c, &[6.0]).unwrap();
        let d = (lo.as_scalars().unwrap()[0] - hi.as_scalars().unwrap()[0]).abs();
        assert!(d > 0.01, "crossbar output must depend on the input, moved {d}");
        let desc = cfg.description();
        assert_eq!(desc, ConfigDescription::parse(&desc.to_string()).unwrap());
    }

    #[test]
    fn crossbar_dictionary_has_pinholes_and_injects() {
        for (rows, cols) in [(2, 2), (3, 5), (4, 4)] {
            let m = CrossbarMacro::new(rows, cols);
            let c = m.nominal_circuit();
            let dict = m.fault_dictionary();
            assert!(
                dict.iter().any(|f| f.name().starts_with("pinhole")),
                "{rows}x{cols}: dictionary must carry pinhole faults"
            );
            for fault in dict.iter() {
                fault.inject(&c).unwrap_or_else(|e| {
                    panic!("{rows}x{cols}, fault {}: {e}", fault.name())
                });
            }
        }
    }

    #[test]
    fn ota_chain_dc_config_responds_to_input() {
        let m = OtaChainMacro::new(4);
        let c = m.nominal_circuit();
        let cfg = OtaChainDcConfig {
            stages: 4,
            solver: SolverKind::Auto,
            ordering: OrderingKind::Auto,
        };
        let lo = cfg.measure(&c, &[0.5]).unwrap();
        let hi = cfg.measure(&c, &[3.5]).unwrap();
        let d = (lo.as_scalars().unwrap()[0] - hi.as_scalars().unwrap()[0]).abs();
        assert!(d > 0.01, "chain output must depend on the input, moved {d}");
    }
}
