//! A tiny synthetic macro for tests, documentation and quick starts.
//!
//! The real device under test (the paper's CMOS IV-converter) lives in
//! `castg-macros`; this module provides a resistor-divider "macro" whose
//! simulations are near-instant, so the generation and compaction
//! algorithms can be exercised and unit-tested without transistor-level
//! simulation cost.

use std::sync::Arc;

use castg_dsp::metrics;
use castg_faults::{exhaustive_bridge_faults, FaultDictionary};
use castg_numeric::{Bounds, ParamSpace};
use castg_spice::{Circuit, DcAnalysis, Probe, TranAnalysis, Waveform};

use crate::config::{check_params, Measurement};
use crate::descr::{ConfigDescription, ParamSpec, PortAction};
use crate::{AnalogMacro, CoreError, TestConfiguration};

/// A three-node resistive divider with an output capacitor, driven by a
/// voltage source `V1`.
///
/// Fault sites: `vin`, `mid`, `out` (3 bridging faults). Two test
/// configurations are provided: a one-parameter DC output measurement
/// and a two-parameter step-response deviation measurement, mirroring
/// the *shapes* of the paper's configuration set at toy scale.
///
/// # Example
///
/// ```
/// use castg_core::synthetic::DividerMacro;
/// use castg_core::AnalogMacro;
///
/// let m = DividerMacro::new();
/// assert_eq!(m.fault_dictionary().len(), 3);
/// assert_eq!(m.configurations().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DividerMacro {
    _private: (),
}

impl DividerMacro {
    /// Creates the synthetic macro.
    pub fn new() -> Self {
        DividerMacro { _private: () }
    }
}

impl AnalogMacro for DividerMacro {
    fn name(&self) -> &str {
        "divider"
    }

    fn macro_type(&self) -> &str {
        "R-divider"
    }

    fn nominal_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(5.0)).expect("fresh netlist");
        c.add_resistor("R1", vin, mid, 1e3).expect("fresh netlist");
        c.add_resistor("R2", mid, out, 1e3).expect("fresh netlist");
        c.add_resistor("R3", out, Circuit::GROUND, 2e3).expect("fresh netlist");
        c.add_capacitor("C1", out, Circuit::GROUND, 1e-9).expect("fresh netlist");
        c
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        vec!["vin".into(), "mid".into(), "out".into()]
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        FaultDictionary::new(exhaustive_bridge_faults(&refs, 10e3))
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![Arc::new(DividerDcConfig), Arc::new(DividerStepConfig)]
    }
}

/// Configuration #1 of the synthetic macro: drive `V1` with a DC level
/// `lev` and return `ΔV(out)`.
#[derive(Debug, Clone, Default)]
pub struct DividerDcConfig;

impl TestConfiguration for DividerDcConfig {
    fn id(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "dc_out"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["lev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(1.0, 8.0).expect("static bounds")])
    }

    fn seed(&self) -> Vec<f64> {
        vec![5.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let mut c = circuit.clone();
        c.set_stimulus("V1", Waveform::dc(params[0]))?;
        let sol = DcAnalysis::new(&c).solve()?;
        let out = c.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        Ok(Measurement::scalar(sol.voltage(out)))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        // 2 % of the expected output level plus a 1 mV meter floor.
        vec![0.02 * params[0] * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "R-divider".into(),
            title: "DC output".into(),
            controls: vec![PortAction { node: "vin".into(), action: "dc(lev)".into() }],
            observes: vec![PortAction { node: "out".into(), action: "dc()".into() }],
            return_value: "dV(out)".into(),
            parameters: vec![ParamSpec { name: "lev".into(), lo: 1.0, hi: 8.0 }],
            variables: vec![],
            seed: vec![("lev".into(), 5.0)],
        }
    }
}

/// Configuration #2 of the synthetic macro: step `V1` from `base` to
/// `base + elev`, sample `v(out)` and return the maximum absolute
/// deviation from nominal.
#[derive(Debug, Clone, Default)]
pub struct DividerStepConfig;

impl DividerStepConfig {
    const T_STOP: f64 = 10e-6;
    const DT: f64 = 0.2e-6;
}

impl TestConfiguration for DividerStepConfig {
    fn id(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "step_dev"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["base".into(), "elev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            Bounds::new(0.0, 4.0).expect("static bounds"),
            Bounds::new(-4.0, 4.0).expect("static bounds"),
        ])
    }

    fn seed(&self) -> Vec<f64> {
        vec![1.0, 2.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let mut c = circuit.clone();
        c.set_stimulus("V1", Waveform::step(params[0], params[1], 1e-6, 0.1e-6))?;
        let out = c.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        let trace = TranAnalysis::new(&c).run(Self::T_STOP, Self::DT, &[Probe::NodeVoltage(out)])?;
        Ok(Measurement::Waveform(castg_dsp::UniformSamples::new(
            0.0,
            Self::DT,
            trace.column(0).to_vec(),
        )))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_waveform(), nominal.as_waveform()) {
            (Some(m), Some(n)) => vec![metrics::max_abs_deviation(m, n)],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        vec![0.02 * (params[0].abs() + params[1].abs()).max(0.5) * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "R-divider".into(),
            title: "Step response".into(),
            controls: vec![PortAction {
                node: "vin".into(),
                action: "step(base, elev, slew_rate=sl)".into(),
            }],
            observes: vec![PortAction {
                node: "out".into(),
                action: "sample(rate=sa, time=t)".into(),
            }],
            return_value: "Max(dV(out))".into(),
            parameters: vec![
                ParamSpec { name: "base".into(), lo: 0.0, hi: 4.0 },
                ParamSpec { name: "elev".into(), lo: -4.0, hi: 4.0 },
            ],
            variables: vec![("sl".into(), 0.1e-6), ("sa".into(), 5e6), ("t".into(), 10e-6)],
            seed: vec![("base".into(), 1.0), ("elev".into(), 2.0)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_divider_solves() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        // 5 V over 1k + 1k + 2k: out = 5 * 2/4 = 2.5 V.
        assert!((sol.voltage(c.find_node("out").unwrap()) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn dc_config_measures_divider_ratio() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        let cfg = DividerDcConfig;
        let meas = cfg.measure(&c, &[4.0]).unwrap();
        assert!((meas.as_scalars().unwrap()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dc_config_rejects_wrong_arity() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        assert!(DividerDcConfig.measure(&c, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn step_config_produces_waveform() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        let cfg = DividerStepConfig;
        let meas = cfg.measure(&c, &[1.0, 2.0]).unwrap();
        let w = meas.as_waveform().unwrap();
        assert!(w.len() > 10);
        // Starts at base/2 (divider halves), ends near (base+elev)/2.
        assert!((w.values()[0] - 0.5).abs() < 0.01);
        assert!((w.values().last().unwrap() - 1.5).abs() < 0.01);
    }

    #[test]
    fn return_values_are_deltas() {
        let cfg = DividerDcConfig;
        let nom = Measurement::scalar(2.0);
        let flt = Measurement::scalar(2.4);
        let rv = cfg.return_values(&flt, &nom);
        assert!((rv[0] - 0.4).abs() < 1e-12);
        assert_eq!(cfg.return_values(&nom, &nom), vec![0.0]);
    }

    #[test]
    fn descriptions_roundtrip_through_text() {
        for cfg in DividerMacro::new().configurations() {
            let d = cfg.description();
            let text = d.to_string();
            let parsed = ConfigDescription::parse(&text).unwrap();
            assert_eq!(d, parsed, "config {} description must round-trip", cfg.name());
        }
    }
}
