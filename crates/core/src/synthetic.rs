//! Synthetic macros for tests, documentation, quick starts — and
//! scaling work.
//!
//! The real device under test (the paper's CMOS IV-converter) lives in
//! `castg-macros`; this module provides
//!
//! * [`DividerMacro`] — a three-node resistor divider whose simulations
//!   are near-instant, so the generation and compaction algorithms can
//!   be exercised and unit-tested without transistor-level cost;
//! * [`LadderMacro`] — a parameterized RC ladder generating circuits of
//!   **arbitrary unknown count** (tens to thousands). Its MNA matrix is
//!   tridiagonal-plus-a-branch-row, the canonical large-sparse shape,
//!   which makes it the workload for benchmarking the dense-vs-sparse
//!   solver dispatch and for exercising generation/compaction/coverage
//!   at n = 16…1024;
//! * [`OtaChainMacro`] — a chain of MOS common-source stages: the
//!   *nonlinear* scalable family, driving many-transistor Newton solves
//!   through the same dispatch.

use std::sync::Arc;

use castg_dsp::metrics;
use castg_faults::{exhaustive_bridge_faults, Fault, FaultDictionary};
use castg_numeric::{Bounds, ParamSpace};
use castg_spice::{Circuit, DcAnalysis, MosParams, MosPolarity, Probe, TranAnalysis, Waveform};

use crate::config::{check_params, Measurement};
use crate::descr::{ConfigDescription, ParamSpec, PortAction};
use crate::{AnalogMacro, CoreError, TestConfiguration};

/// A three-node resistive divider with an output capacitor, driven by a
/// voltage source `V1`.
///
/// Fault sites: `vin`, `mid`, `out` (3 bridging faults). Two test
/// configurations are provided: a one-parameter DC output measurement
/// and a two-parameter step-response deviation measurement, mirroring
/// the *shapes* of the paper's configuration set at toy scale.
///
/// # Example
///
/// ```
/// use castg_core::synthetic::DividerMacro;
/// use castg_core::AnalogMacro;
///
/// let m = DividerMacro::new();
/// assert_eq!(m.fault_dictionary().len(), 3);
/// assert_eq!(m.configurations().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DividerMacro {
    _private: (),
}

impl DividerMacro {
    /// Creates the synthetic macro.
    pub fn new() -> Self {
        DividerMacro { _private: () }
    }
}

impl AnalogMacro for DividerMacro {
    fn name(&self) -> &str {
        "divider"
    }

    fn macro_type(&self) -> &str {
        "R-divider"
    }

    fn nominal_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(5.0)).expect("fresh netlist");
        c.add_resistor("R1", vin, mid, 1e3).expect("fresh netlist");
        c.add_resistor("R2", mid, out, 1e3).expect("fresh netlist");
        c.add_resistor("R3", out, Circuit::GROUND, 2e3).expect("fresh netlist");
        c.add_capacitor("C1", out, Circuit::GROUND, 1e-9).expect("fresh netlist");
        c
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        vec!["vin".into(), "mid".into(), "out".into()]
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        FaultDictionary::new(exhaustive_bridge_faults(&refs, 10e3))
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![Arc::new(DividerDcConfig), Arc::new(DividerStepConfig)]
    }
}

/// Configuration #1 of the synthetic macro: drive `V1` with a DC level
/// `lev` and return `ΔV(out)`.
#[derive(Debug, Clone, Default)]
pub struct DividerDcConfig;

impl TestConfiguration for DividerDcConfig {
    fn id(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "dc_out"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["lev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(1.0, 8.0).expect("static bounds")])
    }

    fn seed(&self) -> Vec<f64> {
        vec![5.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let sol = DcAnalysis::new(circuit)
            .override_stimulus("V1", Waveform::dc(params[0]))
            .solve()?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        Ok(Measurement::scalar(sol.voltage(out)))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        // 2 % of the expected output level plus a 1 mV meter floor.
        vec![0.02 * params[0] * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "R-divider".into(),
            title: "DC output".into(),
            controls: vec![PortAction { node: "vin".into(), action: "dc(lev)".into() }],
            observes: vec![PortAction { node: "out".into(), action: "dc()".into() }],
            return_value: "dV(out)".into(),
            parameters: vec![ParamSpec { name: "lev".into(), lo: 1.0, hi: 8.0 }],
            variables: vec![],
            seed: vec![("lev".into(), 5.0)],
        }
    }
}

/// Configuration #2 of the synthetic macro: step `V1` from `base` to
/// `base + elev`, sample `v(out)` and return the maximum absolute
/// deviation from nominal.
#[derive(Debug, Clone, Default)]
pub struct DividerStepConfig;

impl DividerStepConfig {
    const T_STOP: f64 = 10e-6;
    const DT: f64 = 0.2e-6;
}

impl TestConfiguration for DividerStepConfig {
    fn id(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "step_dev"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["base".into(), "elev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            Bounds::new(0.0, 4.0).expect("static bounds"),
            Bounds::new(-4.0, 4.0).expect("static bounds"),
        ])
    }

    fn seed(&self) -> Vec<f64> {
        vec![1.0, 2.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        let trace = TranAnalysis::new(circuit)
            .override_stimulus("V1", Waveform::step(params[0], params[1], 1e-6, 0.1e-6))
            .run(Self::T_STOP, Self::DT, &[Probe::NodeVoltage(out)])?;
        Ok(Measurement::Waveform(castg_dsp::UniformSamples::new(
            0.0,
            Self::DT,
            trace.column(0).to_vec(),
        )))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_waveform(), nominal.as_waveform()) {
            (Some(m), Some(n)) => vec![metrics::max_abs_deviation(m, n)],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        vec![0.02 * (params[0].abs() + params[1].abs()).max(0.5) * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "R-divider".into(),
            title: "Step response".into(),
            controls: vec![PortAction {
                node: "vin".into(),
                action: "step(base, elev, slew_rate=sl)".into(),
            }],
            observes: vec![PortAction {
                node: "out".into(),
                action: "sample(rate=sa, time=t)".into(),
            }],
            return_value: "Max(dV(out))".into(),
            parameters: vec![
                ParamSpec { name: "base".into(), lo: 0.0, hi: 4.0 },
                ParamSpec { name: "elev".into(), lo: -4.0, hi: 4.0 },
            ],
            variables: vec![("sl".into(), 0.1e-6), ("sa".into(), 5e6), ("t".into(), 10e-6)],
            seed: vec![("base".into(), 1.0), ("elev".into(), 2.0)],
        }
    }
}

/// A parameterized RC ladder macro: `sections` identical cells of a
/// 1 kΩ series resistor with a 1 GΩ ∥ 10 pF shunt, driven by a voltage
/// source `V1` through a 1 kΩ source resistance into node `in`; the
/// last tap is node `out`. The shunt is deliberately huge: a resistive
/// ladder attenuates like `exp(−sections/√(Rp/Rs))`, and √(Rp/Rs) =
/// 1000 sections keeps the far end of even a 1022-section ladder at a
/// measurable level. The source resistance makes even a bridge from
/// `in` to ground observable at `out` (an ideal source would simply
/// absorb it), so every dictionary fault is detectable at every size
/// in the family.
///
/// The MNA matrix is tridiagonal plus one source branch row — the
/// canonical sparse structure — and the section count maps directly to
/// the unknown count ([`LadderMacro::unknowns`] = `sections + 3`), so
/// one constructor argument dials any system size from toy to
/// thousands of nodes. Fault sites are a fixed number of evenly spaced
/// taps; the dictionary holds all tap-pair bridges plus each tap
/// bridged to ground, all at 10 kΩ.
///
/// # Example
///
/// ```
/// use castg_core::synthetic::LadderMacro;
/// use castg_core::AnalogMacro;
///
/// let m = LadderMacro::new(253); // 256 MNA unknowns
/// assert_eq!(m.unknowns(), 256);
/// assert!(!m.fault_dictionary().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct LadderMacro {
    sections: usize,
}

impl LadderMacro {
    /// Source resistance between `V1` and node `in` (ohms).
    pub const R_SOURCE: f64 = 1e3;
    /// Series resistance per section (ohms).
    pub const R_SERIES: f64 = 1e3;
    /// Shunt resistance per section (ohms).
    pub const R_SHUNT: f64 = 1e9;
    /// Shunt capacitance per section (farads).
    pub const C_SHUNT: f64 = 10e-12;
    /// Dictionary resistance of every bridge fault (ohms).
    pub const BRIDGE_R0: f64 = 10e3;
    /// Number of evenly spaced fault-site taps.
    const FAULT_TAPS: usize = 4;

    /// Creates a ladder with the given number of sections (at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `sections < 2`.
    pub fn new(sections: usize) -> Self {
        assert!(sections >= 2, "a ladder needs at least 2 sections");
        LadderMacro { sections }
    }

    /// Creates the smallest ladder with at least `n` MNA unknowns.
    pub fn with_unknowns(n: usize) -> Self {
        LadderMacro::new(n.saturating_sub(3).max(2))
    }

    /// Number of sections.
    pub fn sections(&self) -> usize {
        self.sections
    }

    /// MNA unknown count of the nominal circuit: `sections` tap nodes
    /// plus the `src` and `in` nodes plus the source branch current.
    pub fn unknowns(&self) -> usize {
        self.sections + 3
    }

    /// Name of tap `i` (`1 ≤ i ≤ sections`); the last tap is `"out"`.
    fn tap_name(&self, i: usize) -> String {
        if i == self.sections {
            "out".to_string()
        } else {
            format!("n{i}")
        }
    }
}

impl AnalogMacro for LadderMacro {
    fn name(&self) -> &str {
        "ladder"
    }

    fn macro_type(&self) -> &str {
        "RC-ladder"
    }

    fn nominal_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let src = c.node("src");
        let mut prev = c.node("in");
        c.add_vsource("V1", src, Circuit::GROUND, Waveform::dc(5.0)).expect("fresh netlist");
        c.add_resistor("Rsrc", src, prev, Self::R_SOURCE).expect("fresh netlist");
        for i in 1..=self.sections {
            let tap = c.node(&self.tap_name(i));
            c.add_resistor(&format!("Rs{i}"), prev, tap, Self::R_SERIES)
                .expect("fresh netlist");
            c.add_resistor(&format!("Rp{i}"), tap, Circuit::GROUND, Self::R_SHUNT)
                .expect("fresh netlist");
            c.add_capacitor(&format!("Cp{i}"), tap, Circuit::GROUND, Self::C_SHUNT)
                .expect("fresh netlist");
            prev = tap;
        }
        c
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        // `in` plus FAULT_TAPS evenly spaced taps (the last is `out`).
        // Round up: taps are numbered from 1, so flooring would name a
        // nonexistent `n0` on ladders shorter than FAULT_TAPS sections.
        let mut sites = vec!["in".to_string()];
        for k in 1..=Self::FAULT_TAPS {
            sites.push(self.tap_name((k * self.sections).div_ceil(Self::FAULT_TAPS)));
        }
        sites.dedup();
        sites
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        let mut faults = exhaustive_bridge_faults(&refs, Self::BRIDGE_R0);
        faults.extend(nodes.iter().map(|n| Fault::bridge(n.clone(), "0", Self::BRIDGE_R0)));
        FaultDictionary::new(faults)
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![
            Arc::new(LadderDcConfig { sections: self.sections }),
            Arc::new(LadderStepConfig { sections: self.sections }),
        ]
    }
}

/// Ladder configuration #1: drive `V1` with DC level `lev`, return
/// `ΔV(out)`.
#[derive(Debug, Clone)]
pub struct LadderDcConfig {
    sections: usize,
}

impl TestConfiguration for LadderDcConfig {
    fn id(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "dc_out"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["lev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(1.0, 8.0).expect("static bounds")])
    }

    fn seed(&self) -> Vec<f64> {
        vec![5.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let sol = DcAnalysis::new(circuit)
            .override_stimulus("V1", Waveform::dc(params[0]))
            .solve()?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        Ok(Measurement::scalar(sol.voltage(out)))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        // 2 % of the expected output level plus a 1 mV meter floor.
        vec![0.02 * params[0] * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "RC-ladder".into(),
            title: format!("DC output ({} sections)", self.sections),
            controls: vec![PortAction { node: "in".into(), action: "dc(lev)".into() }],
            observes: vec![PortAction { node: "out".into(), action: "dc()".into() }],
            return_value: "dV(out)".into(),
            parameters: vec![ParamSpec { name: "lev".into(), lo: 1.0, hi: 8.0 }],
            variables: vec![],
            seed: vec![("lev".into(), 5.0)],
        }
    }
}

/// Ladder configuration #2: step `V1` from `base` to `base + elev` and
/// return the maximum absolute deviation of `v(out)` from nominal.
#[derive(Debug, Clone)]
pub struct LadderStepConfig {
    sections: usize,
}

impl LadderStepConfig {
    const T_STOP: f64 = 2e-6;
    const DT: f64 = 0.05e-6;
}

impl TestConfiguration for LadderStepConfig {
    fn id(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "step_dev"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["base".into(), "elev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            Bounds::new(0.0, 4.0).expect("static bounds"),
            Bounds::new(-4.0, 4.0).expect("static bounds"),
        ])
    }

    fn seed(&self) -> Vec<f64> {
        vec![1.0, 2.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        let trace = TranAnalysis::new(circuit)
            .override_stimulus("V1", Waveform::step(params[0], params[1], 0.2e-6, 0.05e-6))
            .run(Self::T_STOP, Self::DT, &[Probe::NodeVoltage(out)])?;
        Ok(Measurement::Waveform(castg_dsp::UniformSamples::new(
            0.0,
            Self::DT,
            trace.column(0).to_vec(),
        )))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_waveform(), nominal.as_waveform()) {
            (Some(m), Some(n)) => vec![metrics::max_abs_deviation(m, n)],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        vec![0.02 * (params[0].abs() + params[1].abs()).max(0.5) * 0.5 + 1e-3]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "RC-ladder".into(),
            title: format!("Step response ({} sections)", self.sections),
            controls: vec![PortAction {
                node: "in".into(),
                action: "step(base, elev, slew_rate=sl)".into(),
            }],
            observes: vec![PortAction {
                node: "out".into(),
                action: "sample(rate=sa, time=t)".into(),
            }],
            return_value: "Max(dV(out))".into(),
            parameters: vec![
                ParamSpec { name: "base".into(), lo: 0.0, hi: 4.0 },
                ParamSpec { name: "elev".into(), lo: -4.0, hi: 4.0 },
            ],
            variables: vec![("sl".into(), 0.05e-6), ("sa".into(), 20e6), ("t".into(), 2e-6)],
            seed: vec![("base".into(), 1.0), ("elev".into(), 2.0)],
        }
    }
}

/// A chain of NMOS common-source stages: the *nonlinear* scalable
/// synthetic macro.
///
/// Each stage is a resistively biased common-source amplifier (1 MΩ
/// divider to ≈2.5 V, 100 kΩ coupling from the previous drain, 50 kΩ
/// drain load, 1 pF load capacitor); the input source `VIN` drives the
/// first gate and the last drain is node `out`. Every stage adds one
/// MOSFET and two nodes, so [`OtaChainMacro::unknowns`] = `2·stages +
/// 4` scales the many-transistor Newton workload directly. The fault
/// dictionary mixes drain-pair bridges with gate-oxide pinholes in
/// evenly spaced transistors.
///
/// # Example
///
/// ```
/// use castg_core::synthetic::OtaChainMacro;
/// use castg_core::AnalogMacro;
///
/// let m = OtaChainMacro::new(6); // 16 MNA unknowns
/// assert_eq!(m.unknowns(), 16);
/// assert_eq!(m.nominal_circuit().mosfet_names().len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct OtaChainMacro {
    stages: usize,
}

impl OtaChainMacro {
    /// Dictionary resistance of bridge faults (ohms).
    pub const BRIDGE_R0: f64 = 10e3;
    /// Dictionary resistance of pinhole faults (ohms).
    pub const PINHOLE_R0: f64 = 2e3;
    /// Number of fault-site stages (drains / transistors).
    const FAULT_STAGES: usize = 3;

    /// Creates a chain with the given number of stages (at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `stages < 2`.
    pub fn new(stages: usize) -> Self {
        assert!(stages >= 2, "a chain needs at least 2 stages");
        OtaChainMacro { stages }
    }

    /// Creates the smallest chain with at least `n` MNA unknowns.
    pub fn with_unknowns(n: usize) -> Self {
        OtaChainMacro::new(n.saturating_sub(4).div_ceil(2).max(2))
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// MNA unknown count: two nodes per stage (gate, drain) plus `vdd`
    /// and `vin` plus the two source branch currents.
    pub fn unknowns(&self) -> usize {
        2 * self.stages + 4
    }

    /// Name of stage `i`'s drain (`1 ≤ i ≤ stages`); the last is `"out"`.
    fn drain_name(&self, i: usize) -> String {
        if i == self.stages {
            "out".to_string()
        } else {
            format!("d{i}")
        }
    }

    /// Stage indices carrying fault sites (evenly spaced, ending at the
    /// last stage). Rounded up: stages are numbered from 1, so flooring
    /// would name a nonexistent `d0`/`M0` on chains shorter than
    /// FAULT_STAGES stages.
    fn fault_stages(&self) -> Vec<usize> {
        let mut stages: Vec<usize> = (1..=Self::FAULT_STAGES)
            .map(|k| (k * self.stages).div_ceil(Self::FAULT_STAGES))
            .collect();
        stages.dedup();
        stages
    }
}

impl AnalogMacro for OtaChainMacro {
    fn name(&self) -> &str {
        "ota_chain"
    }

    fn macro_type(&self) -> &str {
        "OTA-chain"
    }

    fn nominal_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("vin");
        c.add_vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(5.0)).expect("fresh netlist");
        c.add_vsource("VIN", vin, Circuit::GROUND, Waveform::dc(2.0)).expect("fresh netlist");
        let mut prev = vin;
        for i in 1..=self.stages {
            let g = c.node(&format!("g{i}"));
            let d = c.node(&self.drain_name(i));
            c.add_resistor(&format!("RB1_{i}"), vdd, g, 1e6).expect("fresh netlist");
            c.add_resistor(&format!("RB2_{i}"), g, Circuit::GROUND, 1e6)
                .expect("fresh netlist");
            c.add_resistor(&format!("RC_{i}"), prev, g, 100e3).expect("fresh netlist");
            c.add_mosfet(
                &format!("M{i}"),
                d,
                g,
                Circuit::GROUND,
                Circuit::GROUND,
                MosPolarity::Nmos,
                MosParams::nmos_default(10e-6, 1e-6),
            )
            .expect("fresh netlist");
            c.add_resistor(&format!("RD_{i}"), vdd, d, 50e3).expect("fresh netlist");
            c.add_capacitor(&format!("CL_{i}"), d, Circuit::GROUND, 1e-12)
                .expect("fresh netlist");
            prev = d;
        }
        c
    }

    fn fault_site_nodes(&self) -> Vec<String> {
        self.fault_stages().iter().map(|&i| self.drain_name(i)).collect()
    }

    fn fault_dictionary(&self) -> FaultDictionary {
        let nodes = self.fault_site_nodes();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        let mut faults = exhaustive_bridge_faults(&refs, Self::BRIDGE_R0);
        faults.extend(
            self.fault_stages().iter().map(|&i| Fault::pinhole(format!("M{i}"), Self::PINHOLE_R0)),
        );
        FaultDictionary::new(faults)
    }

    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>> {
        vec![Arc::new(OtaChainDcConfig { stages: self.stages })]
    }
}

/// OTA-chain configuration #1: drive `VIN` with DC level `lev`, return
/// `ΔV(out)`.
#[derive(Debug, Clone)]
pub struct OtaChainDcConfig {
    stages: usize,
}

impl TestConfiguration for OtaChainDcConfig {
    fn id(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "dc_out"
    }

    fn param_names(&self) -> Vec<String> {
        vec!["lev".into()]
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(0.0, 5.0).expect("static bounds")])
    }

    fn seed(&self) -> Vec<f64> {
        vec![2.0]
    }

    fn measure(&self, circuit: &Circuit, params: &[f64]) -> Result<Measurement, CoreError> {
        check_params(self, params)?;
        let sol = DcAnalysis::new(circuit)
            .override_stimulus("VIN", Waveform::dc(params[0]))
            .solve()?;
        let out = circuit.find_node("out").ok_or_else(|| CoreError::Configuration {
            config: self.name().to_string(),
            reason: "macro has no `out` node".to_string(),
        })?;
        Ok(Measurement::scalar(sol.voltage(out)))
    }

    fn return_values(&self, measured: &Measurement, nominal: &Measurement) -> Vec<f64> {
        match (measured.as_scalars(), nominal.as_scalars()) {
            (Some(m), Some(n)) => vec![m[0] - n[0]],
            _ => vec![f64::NAN],
        }
    }

    fn tolerance_box(&self, _params: &[f64], _nominal_returns: &[f64]) -> Vec<f64> {
        // 50 mV on a 0–5 V output swing.
        vec![0.05]
    }

    fn description(&self) -> ConfigDescription {
        ConfigDescription {
            macro_type: "OTA-chain".into(),
            title: format!("DC output ({} stages)", self.stages),
            controls: vec![PortAction { node: "vin".into(), action: "dc(lev)".into() }],
            observes: vec![PortAction { node: "out".into(), action: "dc()".into() }],
            return_value: "dV(out)".into(),
            parameters: vec![ParamSpec { name: "lev".into(), lo: 0.0, hi: 5.0 }],
            variables: vec![],
            seed: vec![("lev".into(), 2.0)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_divider_solves() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        // 5 V over 1k + 1k + 2k: out = 5 * 2/4 = 2.5 V.
        assert!((sol.voltage(c.find_node("out").unwrap()) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn dc_config_measures_divider_ratio() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        let cfg = DividerDcConfig;
        let meas = cfg.measure(&c, &[4.0]).unwrap();
        assert!((meas.as_scalars().unwrap()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dc_config_rejects_wrong_arity() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        assert!(DividerDcConfig.measure(&c, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn step_config_produces_waveform() {
        let m = DividerMacro::new();
        let c = m.nominal_circuit();
        let cfg = DividerStepConfig;
        let meas = cfg.measure(&c, &[1.0, 2.0]).unwrap();
        let w = meas.as_waveform().unwrap();
        assert!(w.len() > 10);
        // Starts at base/2 (divider halves), ends near (base+elev)/2.
        assert!((w.values()[0] - 0.5).abs() < 0.01);
        assert!((w.values().last().unwrap() - 1.5).abs() < 0.01);
    }

    #[test]
    fn return_values_are_deltas() {
        let cfg = DividerDcConfig;
        let nom = Measurement::scalar(2.0);
        let flt = Measurement::scalar(2.4);
        let rv = cfg.return_values(&flt, &nom);
        assert!((rv[0] - 0.4).abs() < 1e-12);
        assert_eq!(cfg.return_values(&nom, &nom), vec![0.0]);
    }

    #[test]
    fn descriptions_roundtrip_through_text() {
        for cfg in DividerMacro::new().configurations() {
            let d = cfg.description();
            let text = d.to_string();
            let parsed = ConfigDescription::parse(&text).unwrap();
            assert_eq!(d, parsed, "config {} description must round-trip", cfg.name());
        }
    }

    #[test]
    fn ladder_unknown_count_matches_circuit() {
        for n in [16, 64, 256] {
            let m = LadderMacro::with_unknowns(n);
            let c = m.nominal_circuit();
            assert_eq!(c.unknown_count(), m.unknowns());
            assert!(m.unknowns() >= n);
        }
    }

    #[test]
    fn ladder_dc_attenuates_mildly() {
        let m = LadderMacro::new(64);
        let c = m.nominal_circuit();
        let sol = DcAnalysis::new(&c).solve().unwrap();
        let v_out = sol.voltage(c.find_node("out").unwrap());
        // 64 sections of 1 kΩ over 1 GΩ shunts: sub-percent droop.
        assert!(v_out > 4.5 && v_out < 5.0, "v_out = {v_out}");
    }

    #[test]
    fn ladder_faults_inject_and_perturb_output() {
        let m = LadderMacro::new(32);
        let c = m.nominal_circuit();
        let nominal = DcAnalysis::new(&c).solve().unwrap();
        let out = c.find_node("out").unwrap();
        for fault in m.fault_dictionary().iter() {
            let faulty = fault.inject(&c).unwrap();
            let sol = DcAnalysis::new(&faulty).solve().unwrap();
            // A ground bridge collapses the output; tap-tap bridges
            // shift it measurably. Either way the circuit stays
            // solvable.
            assert!(sol.voltage(out).is_finite(), "{}", fault.name());
        }
        // At least the out-to-ground bridge must move the output a lot.
        let gnd_bridge = Fault::bridge("out", "0", LadderMacro::BRIDGE_R0);
        let sol = DcAnalysis::new(&gnd_bridge.inject(&c).unwrap()).solve().unwrap();
        assert!((sol.voltage(out) - nominal.voltage(out)).abs() > 0.5);
    }

    #[test]
    fn ladder_configs_measure_and_roundtrip() {
        let m = LadderMacro::new(16);
        let c = m.nominal_circuit();
        for cfg in m.configurations() {
            let meas = cfg.measure(&c, &cfg.seed()).unwrap();
            let rv = cfg.return_values(&meas, &meas);
            assert!(rv.iter().all(|v| v.abs() < 1e-12), "{rv:?}");
            let d = cfg.description();
            assert_eq!(d, ConfigDescription::parse(&d.to_string()).unwrap());
        }
    }

    #[test]
    fn ota_chain_unknowns_and_convergence() {
        let m = OtaChainMacro::with_unknowns(32);
        let c = m.nominal_circuit();
        assert_eq!(c.unknown_count(), m.unknowns());
        let sol = DcAnalysis::new(&c).solve().unwrap();
        let out = sol.voltage(c.find_node("out").unwrap());
        assert!((0.0..=5.0).contains(&out), "out = {out}");
    }

    #[test]
    fn ota_chain_fault_dictionary_injects() {
        let m = OtaChainMacro::new(8);
        let c = m.nominal_circuit();
        let dict = m.fault_dictionary();
        assert!(!dict.is_empty());
        for fault in dict.iter() {
            fault.inject(&c).unwrap();
        }
    }

    /// The smallest sizes the constructors permit must still produce
    /// injectable dictionaries (fault sites are rounded *up* to
    /// existing taps/stages — flooring used to name a nonexistent
    /// `n0`/`d0`/`M0`).
    #[test]
    fn minimum_size_macros_have_injectable_dictionaries() {
        for sections in 2..=5 {
            let m = LadderMacro::new(sections);
            let c = m.nominal_circuit();
            let dict = m.fault_dictionary();
            assert!(!dict.is_empty(), "sections={sections}");
            for fault in dict.iter() {
                fault.inject(&c).unwrap_or_else(|e| {
                    panic!("sections={sections}, fault {}: {e}", fault.name())
                });
            }
        }
        for stages in 2..=4 {
            let m = OtaChainMacro::new(stages);
            let c = m.nominal_circuit();
            for fault in m.fault_dictionary().iter() {
                fault.inject(&c).unwrap_or_else(|e| {
                    panic!("stages={stages}, fault {}: {e}", fault.name())
                });
            }
        }
    }

    #[test]
    fn ota_chain_dc_config_responds_to_input() {
        let m = OtaChainMacro::new(4);
        let c = m.nominal_circuit();
        let cfg = OtaChainDcConfig { stages: 4 };
        let lo = cfg.measure(&c, &[0.5]).unwrap();
        let hi = cfg.measure(&c, &[3.5]).unwrap();
        let d = (lo.as_scalars().unwrap()[0] - hi.as_scalars().unwrap()[0]).abs();
        assert!(d > 0.01, "chain output must depend on the input, moved {d}");
    }
}
