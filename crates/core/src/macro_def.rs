//! The analog-macro abstraction: what the generation algorithm needs to
//! know about a device under test.

use std::sync::Arc;

use castg_faults::FaultDictionary;
use castg_spice::Circuit;

use crate::TestConfiguration;

/// An analog macro (circuit block) for which tests are generated.
///
/// The paper's methodology is macro-type oriented: configuration
/// descriptions are shared by all macros of a type (all IV-converters),
/// node names are standardized, and each individual macro supplies the
/// netlist, the fault universe and the configuration *implementations*
/// (bounds, seeds, box-functions).
pub trait AnalogMacro: Send + Sync {
    /// This macro instance's name (e.g. `"iv_converter"`).
    fn name(&self) -> &str;

    /// The macro *type* the configuration set is shared by
    /// (e.g. `"IV-converter"`).
    fn macro_type(&self) -> &str;

    /// The fault-free netlist.
    fn nominal_circuit(&self) -> Circuit;

    /// Names of the nodes considered as bridging-fault sites.
    fn fault_site_nodes(&self) -> Vec<String>;

    /// The modeled-fault dictionary for this macro (the paper's
    /// exhaustive 45-bridge + 10-pinhole list for the IV-converter).
    fn fault_dictionary(&self) -> FaultDictionary;

    /// The test-configuration implementations available for this macro.
    fn configurations(&self) -> Vec<Arc<dyn TestConfiguration>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::DividerMacro;

    #[test]
    fn synthetic_macro_satisfies_contract() {
        let m = DividerMacro::new();
        assert!(!m.name().is_empty());
        assert!(!m.macro_type().is_empty());
        let c = m.nominal_circuit();
        assert!(c.node_count() > 1);
        assert!(!m.fault_site_nodes().is_empty());
        assert!(!m.fault_dictionary().is_empty());
        assert!(!m.configurations().is_empty());
        // Every fault in the dictionary must inject cleanly.
        for f in m.fault_dictionary().iter() {
            f.inject(&c).unwrap();
        }
    }

    #[test]
    fn trait_is_object_safe() {
        fn takes_dyn(_m: &dyn AnalogMacro) {}
        takes_dyn(&DividerMacro::new());
    }
}
