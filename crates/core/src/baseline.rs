//! The selection-only baseline the paper argues against (§2.2).
//!
//! "It will be shown that test generation by using a fixed predefined set
//! of possible tests to select from … will not result in the most
//! sensitive test set." The fixed predefined set here is the *seed*
//! tests — one per configuration, as supplied by the designer — and the
//! baseline strategy merely selects the most sensitive seed per fault.
//! Comparing this against the tailored optimization quantifies the
//! paper's claim.

use castg_faults::FaultDictionary;

use crate::cache::NominalCache;
use crate::evaluate::{evaluate_test_set, CoverageReport, TestInstance};
use crate::generate::GenerationReport;
use crate::{AnalogMacro, CoreError};

/// The fixed predefined test set: every configuration at its seed
/// parameters.
pub fn seed_test_set(macro_def: &dyn AnalogMacro) -> Vec<TestInstance> {
    macro_def
        .configurations()
        .into_iter()
        .map(|config| {
            let params = config.space().clamp(&config.seed());
            TestInstance { config, params }
        })
        .collect()
}

/// Side-by-side coverage of the seed-selection baseline and an optimized
/// test set.
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Coverage achieved by the fixed seed set.
    pub baseline: CoverageReport,
    /// Coverage achieved by the optimized (generated) tests.
    pub optimized: CoverageReport,
}

impl BaselineComparison {
    /// Faults the optimized set detects that the baseline misses.
    pub fn gained(&self) -> Vec<&str> {
        self.baseline
            .per_fault
            .iter()
            .zip(&self.optimized.per_fault)
            .filter(|(b, o)| !b.detected && o.detected)
            .map(|(_, o)| o.fault.as_str())
            .collect()
    }

    /// Mean sensitivity improvement (baseline − optimized; positive means
    /// the optimized set has more detection margin).
    pub fn mean_margin_gain(&self) -> f64 {
        self.baseline.mean_best_sensitivity() - self.optimized.mean_best_sensitivity()
    }
}

/// Evaluates both the seed baseline and the generated per-fault tests
/// against the dictionary.
///
/// # Errors
///
/// Propagates simulation and injection failures from the underlying
/// coverage evaluations.
pub fn compare_with_baseline(
    macro_def: &dyn AnalogMacro,
    cache: &NominalCache,
    generated: &GenerationReport,
    dictionary: &FaultDictionary,
) -> Result<BaselineComparison, CoreError> {
    let baseline_set = seed_test_set(macro_def);
    let baseline = evaluate_test_set(macro_def, cache, &baseline_set, dictionary)?;

    let configs = macro_def.configurations();
    let optimized_set: Vec<TestInstance> = generated
        .tests
        .iter()
        .filter_map(|t| {
            configs.iter().find(|c| c.id() == t.config_id).map(|c| TestInstance {
                config: std::sync::Arc::clone(c),
                params: t.params.clone(),
            })
        })
        .collect();
    let optimized = evaluate_test_set(macro_def, cache, &optimized_set, dictionary)?;

    Ok(BaselineComparison { baseline, optimized })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{Generator, GeneratorOptions};
    use crate::synthetic::DividerMacro;
    use castg_numeric::{BrentOptions, PowellOptions};

    fn quick_options() -> GeneratorOptions {
        GeneratorOptions {
            threads: 2,
            powell: PowellOptions {
                ftol: 1e-3,
                max_iter: 6,
                line: BrentOptions { tol: 5e-3, max_iter: 10 },
            },
            brent: BrentOptions { tol: 1e-3, max_iter: 20 },
            ..GeneratorOptions::default()
        }
    }

    #[test]
    fn seed_set_has_one_test_per_config() {
        let mac = DividerMacro::new();
        let set = seed_test_set(&mac);
        assert_eq!(set.len(), mac.configurations().len());
        for t in &set {
            assert!(t.config.space().contains(&t.params));
        }
    }

    #[test]
    fn optimized_is_at_least_as_good_as_baseline() {
        let mac = DividerMacro::new();
        let cache = NominalCache::new();
        let dict = mac.fault_dictionary();
        let report =
            Generator::with_options(&mac, &cache, quick_options()).generate(&dict);
        let cmp = compare_with_baseline(&mac, &cache, &report, &dict).unwrap();
        assert!(cmp.optimized.detected() >= cmp.baseline.detected());
        // Optimization must not lose margin on this easy macro.
        assert!(
            cmp.optimized.mean_best_sensitivity()
                <= cmp.baseline.mean_best_sensitivity() + 1e-9
        );
        // gained() lists only faults missed by the baseline.
        for name in cmp.gained() {
            let b = cmp.baseline.per_fault.iter().find(|f| f.fault == name).unwrap();
            assert!(!b.detected);
        }
    }
}
