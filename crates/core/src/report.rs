//! Plain-text table rendering and CSV helpers for the experiment
//! regeneration binaries, plus the canonical byte-stable rendering of a
//! full generate → compact → evaluate pipeline outcome
//! ([`render_pipeline_report`]) shared by the golden-fixture harness
//! and the `castg` CLI.

use std::fmt::Write as _;

use crate::{CompactionReport, CoverageReport, GenerationReport};

/// Renders a float with full, stable precision (used by the pipeline
/// report so fixtures are byte-stable across platforms).
fn full_num(v: f64) -> String {
    format!("{v:.12e}")
}

fn params_str(params: &[f64]) -> String {
    params.iter().map(|p| full_num(*p)).collect::<Vec<_>>().join(";")
}

/// Canonical text rendering of one macro's full pipeline outcome:
/// selected per-fault tests, compaction order, and coverage.
///
/// The pipeline is deterministic (fixed seeds, deterministic
/// optimizers, order-stable parallel fan-out), so this rendering is
/// byte-stable: the golden fixtures under `tests/golden/` pin it, and
/// the `castg` CLI emits it for parsed-netlist macros.
pub fn render_pipeline_report(
    macro_name: &str,
    generation: &GenerationReport,
    compaction: &CompactionReport,
    coverage: &CoverageReport,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "golden report: {macro_name}");
    let _ = writeln!(out, "== selected tests ({}) ==", generation.tests.len());
    for t in &generation.tests {
        let _ = writeln!(
            out,
            "{} -> config {} ({}) params [{}] s_dict {} detected {}",
            t.fault.name(),
            t.config_id,
            t.config_name,
            params_str(&t.params),
            full_num(t.sensitivity_at_dictionary),
            t.detected_at_dictionary,
        );
    }
    let _ = writeln!(
        out,
        "== compaction order ({} from {}) ==",
        compaction.tests.len(),
        compaction.original_count
    );
    for (i, t) in compaction.tests.iter().enumerate() {
        let _ = writeln!(
            out,
            "#{i}: config {} ({}) params [{}] covers [{}]",
            t.config_id,
            t.config_name,
            params_str(&t.params),
            t.covered_faults.join(", "),
        );
    }
    let _ = writeln!(out, "== coverage {}/{} ==", coverage.detected(), coverage.total());
    for f in &coverage.per_fault {
        let _ = writeln!(
            out,
            "{}: best_test {} s {} detected {} outcome {}",
            f.fault,
            f.best_test,
            full_num(f.best_sensitivity),
            f.detected,
            f.outcome,
        );
    }
    let tally = coverage.tally();
    let _ = writeln!(out, "== outcomes ==");
    let _ = writeln!(
        out,
        "detected {} undetected {} unconverged {} singular {} timed_out {} panicked {} \
         injection_failed {}",
        tally.detected,
        tally.undetected,
        tally.unconverged,
        tally.singular,
        tally.timed_out,
        tally.panicked,
        tally.injection_failed,
    );
    let ladder = &coverage.ladder;
    let _ = writeln!(out, "== newton ladder (faulted solves) ==");
    let _ = writeln!(
        out,
        "solves {} iterations {} | plain {} damped {} gmin-stepping {} source-stepping {} \
         pseudo-transient {} unconverged {}",
        ladder.solves(),
        ladder.iterations,
        ladder.plain,
        ladder.damped,
        ladder.gmin_stepping,
        ladder.source_stepping,
        ladder.pseudo_transient,
        ladder.unconverged,
    );
    out
}

/// Escapes a string for inclusion in a JSON string literal (names come
/// from user-authored decks and config files, which admit quotes,
/// backslashes and control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Wall-clock seconds of each pipeline phase, reported verbatim in the
/// JSON summary (machine-dependent by nature; everything else in the
/// rendering is deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineTimings {
    /// Per-fault test generation.
    pub generate_s: f64,
    /// Test-set compaction.
    pub compact_s: f64,
    /// Coverage evaluation (the fault campaign).
    pub evaluate_s: f64,
}

/// Canonical machine-readable rendering of one macro's pipeline
/// outcome: the JSON summary `castg generate --json` writes and the
/// body `castg serve` returns for `POST /v1/campaign`. One shape,
/// shared by both producers and pinned byte-for-byte by the
/// `tests/golden/json_report.json` fixture (timings excepted — they are
/// wall-clock inputs, fixed to constants in the golden run).
#[allow(clippy::too_many_arguments)] // the report's fields, no more
pub fn render_json_report(
    macro_name: &str,
    macro_type: &str,
    faults: usize,
    threads: usize,
    timings: &PipelineTimings,
    tests: usize,
    original_tests: usize,
    coverage: &CoverageReport,
) -> String {
    let tally = coverage.tally();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"macro\": \"{}\",", json_escape(macro_name));
    let _ = writeln!(s, "  \"macro_type\": \"{}\",", json_escape(macro_type));
    let _ = writeln!(s, "  \"faults\": {faults},");
    let _ = writeln!(s, "  \"detected\": {},", coverage.detected());
    let _ = writeln!(s, "  \"tests\": {tests},");
    let _ = writeln!(s, "  \"original_tests\": {original_tests},");
    let _ = writeln!(s, "  \"threads\": {threads},");
    let _ = writeln!(s, "  \"generate_s\": {:.6},", timings.generate_s);
    let _ = writeln!(s, "  \"compact_s\": {:.6},", timings.compact_s);
    let _ = writeln!(s, "  \"evaluate_s\": {:.6},", timings.evaluate_s);
    let faults_per_s = if timings.evaluate_s > 0.0 {
        faults as f64 / timings.evaluate_s
    } else {
        0.0
    };
    let _ = writeln!(s, "  \"faults_per_s\": {faults_per_s:.3},");
    let _ = writeln!(
        s,
        "  \"outcomes\": {{\"detected\": {}, \"undetected\": {}, \"unconverged\": {}, \
         \"singular\": {}, \"timed_out\": {}, \"panicked\": {}, \"injection_failed\": {}}},",
        tally.detected,
        tally.undetected,
        tally.unconverged,
        tally.singular,
        tally.timed_out,
        tally.panicked,
        tally.injection_failed,
    );
    let ladder = &coverage.ladder;
    let _ = writeln!(
        s,
        "  \"convergence_stats\": {{\"solves\": {}, \"iterations\": {}, \"plain\": {}, \
         \"damped\": {}, \"gmin_stepping\": {}, \"source_stepping\": {}, \
         \"pseudo_transient\": {}, \"unconverged\": {}}},",
        ladder.solves(),
        ladder.iterations,
        ladder.plain,
        ladder.damped,
        ladder.gmin_stepping,
        ladder.source_stepping,
        ladder.pseudo_transient,
        ladder.unconverged,
    );
    let _ = writeln!(s, "  \"per_fault\": [");
    for (i, f) in coverage.per_fault.iter().enumerate() {
        let comma = if i + 1 < coverage.per_fault.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"fault\": \"{}\", \"detected\": {}, \"best_test\": {}, \
             \"best_sensitivity\": {:e}, \"outcome\": \"{}\"}}{comma}",
            json_escape(&f.fault),
            f.detected,
            f.best_test,
            f.best_sensitivity,
            json_escape(&f.outcome.to_string()),
        );
    }
    let _ = writeln!(s, "  ]");
    s.push_str("}\n");
    s
}

/// A simple column-aligned text table with an optional markdown
/// rendering; used by the benchmark harness to print the paper's tables.
///
/// # Example
///
/// ```
/// use castg_core::report::TextTable;
///
/// let mut t = TextTable::new(vec!["config".into(), "bridge".into()]);
/// t.push_row(vec!["#1".into(), "22".into()]);
/// let s = t.render();
/// assert!(s.contains("config"));
/// assert!(s.contains("22"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        TextTable { headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity must match headers");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (wi, cell) in w.iter_mut().zip(row) {
                *wi = (*wi).max(cell.len());
            }
        }
        w
    }

    /// Renders with space-aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, wi)) in cells.iter().zip(&w).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<wi$}");
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let rule: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as CSV (cells containing commas/quotes/newlines are
    /// quoted and escaped).
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a float for tables: engineering-friendly short form.
pub fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if (1e-3..1e6).contains(&a) {
        if a >= 100.0 {
            format!("{v:.1}")
        } else {
            format!("{v:.4}")
        }
    } else {
        format!("{v:.3e}")
    }
}

/// Formats a value in SI units with the given suffix (e.g. `fmt_si(2.2e-5,
/// "A")` → `"22.000 µA"`).
pub fn fmt_si(v: f64, unit: &str) -> String {
    const PREFIXES: &[(f64, &str)] = &[
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
    ];
    if v == 0.0 {
        return format!("0 {unit}");
    }
    let a = v.abs();
    for (scale, prefix) in PREFIXES {
        if a >= *scale {
            return format!("{:.3} {}{}", v / scale, prefix, unit);
        }
    }
    format!("{v:.3e} {unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(vec!["a".into(), "bb".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a  "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("333"));
    }

    #[test]
    fn markdown_has_separator() {
        let md = sample().markdown();
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(vec!["x".into()]);
        t.push_row(vec!["a,b".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_enforced() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn num_formatting() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1234.5), "1234.5");
        assert!(fmt_num(3.2e-9).contains('e'));
        assert_eq!(fmt_num(1.5), "1.5000");
    }

    #[test]
    fn si_formatting() {
        assert_eq!(fmt_si(2.2e-5, "A"), "22.000 µA");
        assert_eq!(fmt_si(0.0, "V"), "0 V");
        assert_eq!(fmt_si(39e3, "Ω"), "39.000 kΩ");
        assert_eq!(fmt_si(-5e-10, "F"), "-500.000 pF");
    }

    #[test]
    fn len_and_is_empty() {
        assert!(TextTable::new(vec!["h".into()]).is_empty());
        assert_eq!(sample().len(), 2);
    }
}
