//! Concurrent cache of nominal measurements.
//!
//! Nominal responses `R(T)` depend only on the configuration and the
//! parameter vector — not on the fault — so one cache is shared across
//! the whole (multi-threaded) generation run. With 55 faults probing
//! overlapping parameter regions this roughly halves simulator work.
//!
//! The map is split into a fixed array of lock-sharded segments keyed
//! by the key's hash: thousand-fault campaigns fan `(fault, test)` work
//! items across every core, and all of them consult the nominal cache —
//! a single `RwLock<HashMap>` serializes exactly the hottest moment
//! (the warm-cache read storm right after the first tests complete).
//! Sixteen shards make those reads effectively contention-free while
//! keeping the type a drop-in replacement.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::config::Measurement;
use crate::CoreError;

/// Number of lock shards. A power of two so the shard pick is a mask;
/// comfortably above any realistic worker count's collision rate.
const SHARDS: usize = 16;

/// Cache key: configuration id plus the exact bit patterns of the
/// parameter vector (optimizers re-probe identical points across faults;
/// no quantization is needed beyond exactness).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    config_id: usize,
    param_bits: Vec<u64>,
}

impl Key {
    fn new(config_id: usize, params: &[f64]) -> Self {
        Key { config_id, param_bits: params.iter().map(|p| p.to_bits()).collect() }
    }

    /// Shard index of this key: a cheap FNV-style fold of the exact
    /// parameter bits. Shard *selection* only needs to spread load, so
    /// it must not pay a second full `SipHash` pass on top of the one
    /// the shard's `HashMap` performs anyway.
    fn shard(&self) -> usize {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = (self.config_id as u64) ^ 0xcbf2_9ce4_8422_2325;
        for bits in &self.param_bits {
            h = (h ^ bits).wrapping_mul(FNV_PRIME);
        }
        // Top bits have the best mixing after the final multiply.
        ((h >> 56) as usize) & (SHARDS - 1)
    }
}

/// Thread-safe, lock-sharded map from `(configuration, parameters)` to
/// the nominal [`Measurement`].
#[derive(Debug)]
pub struct NominalCache {
    shards: [RwLock<HashMap<Key, Arc<Measurement>>>; SHARDS],
}

impl Default for NominalCache {
    fn default() -> Self {
        NominalCache { shards: std::array::from_fn(|_| RwLock::new(HashMap::new())) }
    }
}

impl NominalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        NominalCache::default()
    }

    /// Returns the cached measurement or computes and stores it.
    ///
    /// Concurrent callers may race to compute the same entry; the first
    /// stored value wins and later duplicates are discarded (the compute
    /// function must therefore be deterministic, which simulator runs
    /// are).
    ///
    /// # Errors
    ///
    /// Propagates the compute function's error without caching it.
    pub fn get_or_insert<F>(
        &self,
        config_id: usize,
        params: &[f64],
        compute: F,
    ) -> Result<Arc<Measurement>, CoreError>
    where
        F: FnOnce() -> Result<Measurement, CoreError>,
    {
        let key = Key::new(config_id, params);
        let shard = &self.shards[key.shard()];
        if let Some(hit) = shard.read().get(&key) {
            return Ok(Arc::clone(hit));
        }
        let value = Arc::new(compute()?);
        let mut guard = shard.write();
        let entry = guard.entry(key).or_insert_with(|| Arc::clone(&value));
        Ok(Arc::clone(entry))
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Drops all entries.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: f64) -> Result<Measurement, CoreError> {
        Ok(Measurement::scalar(v))
    }

    #[test]
    fn caches_by_config_and_params() {
        let cache = NominalCache::new();
        let a = cache.get_or_insert(1, &[0.5], || m(10.0)).unwrap();
        let b = cache.get_or_insert(1, &[0.5], || panic!("must not recompute")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Different params or config id miss.
        cache.get_or_insert(1, &[0.6], || m(11.0)).unwrap();
        cache.get_or_insert(2, &[0.5], || m(12.0)).unwrap();
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = NominalCache::new();
        let r = cache.get_or_insert(1, &[1.0], || {
            Err(CoreError::InvalidOptions { reason: "boom".into() })
        });
        assert!(r.is_err());
        assert!(cache.is_empty());
        // A later success at the same key works.
        cache.get_or_insert(1, &[1.0], || m(5.0)).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn negative_zero_and_zero_are_distinct_keys() {
        // Bit-exact keying: -0.0 and 0.0 differ. This is deliberate —
        // optimizers produce exact repeats, not near-misses.
        let cache = NominalCache::new();
        cache.get_or_insert(1, &[0.0], || m(1.0)).unwrap();
        cache.get_or_insert(1, &[-0.0], || m(2.0)).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let cache = NominalCache::new();
        cache.get_or_insert(1, &[1.0], || m(1.0)).unwrap();
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NominalCache>();
    }
}
