//! CSV persistence of a [`GenerationReport`] so the expensive 55-fault
//! run is shared by all downstream experiments.

use std::path::Path;

use castg_core::{BestTest, GenerationReport};
use castg_faults::Fault;
use castg_macros::IvConverter;

const HEADER: &str = "fault,config_id,config_name,params,s_dict,detected,critical_scale,\
                      required_intensify,evaluations";

/// Serializes the per-fault best tests to CSV.
pub fn save_generation(path: &Path, report: &GenerationReport) {
    let mut out = String::from(HEADER);
    out.push('\n');
    for t in &report.tests {
        let params =
            t.params.iter().map(|p| format!("{p:e}")).collect::<Vec<_>>().join(";");
        out.push_str(&format!(
            "{},{},{},{},{:e},{},{:e},{},{}\n",
            t.fault.name(),
            t.config_id,
            t.config_name,
            params,
            t.sensitivity_at_dictionary,
            t.detected_at_dictionary,
            t.critical_scale,
            t.required_intensify,
            t.evaluations
        ));
    }
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not persist generation report to {}: {e}", path.display());
    }
}

/// Reconstructs a fault from its [`Fault::name`] using the IV-converter
/// dictionary impacts (`bridge(a,b)` → 10 kΩ bridge, `pinhole(M)` →
/// 2 kΩ pinhole).
pub(crate) fn fault_from_name(name: &str) -> Option<Fault> {
    if let Some(rest) = name.strip_prefix("bridge(").and_then(|r| r.strip_suffix(')')) {
        let (a, b) = rest.split_once(',')?;
        return Some(Fault::bridge(a, b, IvConverter::BRIDGE_R0));
    }
    if let Some(dev) = name.strip_prefix("pinhole(").and_then(|r| r.strip_suffix(')')) {
        return Some(Fault::pinhole(dev, IvConverter::PINHOLE_R0));
    }
    None
}

/// Loads a generation report saved by [`save_generation`]. Returns
/// `None` when the file is absent or malformed (callers then re-run the
/// generation).
pub fn load_generation(path: &Path) -> Option<GenerationReport> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()?.trim() != HEADER {
        return None;
    }
    let mut report = GenerationReport::default();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        // Fault names contain commas (`bridge(a,b)`), so split the eight
        // trailing comma-free fields from the right; the remainder is
        // the fault name.
        let mut cols: Vec<&str> = line.rsplitn(9, ',').collect();
        if cols.len() != 9 {
            return None;
        }
        cols.reverse();
        let fault = fault_from_name(cols[0])?;
        let params: Vec<f64> =
            cols[3].split(';').map(|p| p.parse().ok()).collect::<Option<Vec<f64>>>()?;
        report.tests.push(BestTest {
            fault,
            config_id: cols[1].parse().ok()?,
            config_name: cols[2].to_string(),
            params,
            sensitivity_at_dictionary: cols[4].parse().ok()?,
            detected_at_dictionary: cols[5].parse().ok()?,
            critical_scale: cols[6].parse().ok()?,
            required_intensify: cols[7].parse().ok()?,
            evaluations: cols[8].parse().ok()?,
        });
    }
    if report.tests.is_empty() {
        None
    } else {
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> GenerationReport {
        GenerationReport {
            tests: vec![
                BestTest {
                    fault: Fault::bridge("out", "inn", 10e3),
                    config_id: 3,
                    config_name: "thd".into(),
                    params: vec![4e-5, 2.5e4],
                    sensitivity_at_dictionary: -12.5,
                    detected_at_dictionary: true,
                    critical_scale: 42.0,
                    required_intensify: false,
                    evaluations: 123,
                },
                BestTest {
                    fault: Fault::pinhole("M6", 2e3),
                    config_id: 1,
                    config_name: "dc_transfer".into(),
                    params: vec![-4e-5],
                    sensitivity_at_dictionary: 0.25,
                    detected_at_dictionary: false,
                    critical_scale: 0.4,
                    required_intensify: true,
                    evaluations: 99,
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn roundtrip_through_csv() {
        let dir = std::env::temp_dir().join("castg_persist_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("gen.csv");
        let report = sample_report();
        save_generation(&path, &report);
        let loaded = load_generation(&path).expect("must load back");
        assert_eq!(loaded.tests.len(), 2);
        for (a, b) in report.tests.iter().zip(&loaded.tests) {
            assert_eq!(a.fault.name(), b.fault.name());
            assert_eq!(a.config_id, b.config_id);
            assert_eq!(a.params, b.params);
            assert_eq!(a.detected_at_dictionary, b.detected_at_dictionary);
            assert_eq!(a.required_intensify, b.required_intensify);
            assert!((a.critical_scale - b.critical_scale).abs() < 1e-12);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fault_name_parsing() {
        let f = fault_from_name("bridge(na,nz)").unwrap();
        assert_eq!(f.name(), "bridge(na,nz)");
        assert_eq!(f.base_resistance(), IvConverter::BRIDGE_R0);
        let p = fault_from_name("pinhole(M3)").unwrap();
        assert_eq!(p.base_resistance(), IvConverter::PINHOLE_R0);
        assert!(fault_from_name("stuck(x)").is_none());
        assert!(fault_from_name("bridge(no-comma)").is_none());
    }

    #[test]
    fn missing_file_loads_none() {
        assert!(load_generation(Path::new("/nonexistent/gen.csv")).is_none());
    }
}
