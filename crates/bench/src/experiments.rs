//! One function per paper artifact. See `DESIGN.md` §4 for the index.

use castg_core::{
    compact, compare_with_baseline, evaluate_test_set, test_instances_from_compaction,
    tps_graph, tps_profile, AnalogMacro, CompactionOptions, Evaluator, GenerationReport,
    Generator, NominalCache,
};
use castg_core::report::{fmt_num, fmt_si, TextTable};
use castg_faults::Fault;
use castg_macros::{IvConverter, ProcessVariation};

use crate::{generation_cached, harness_options, iv_macro, write_result};

/// E1 / Fig. 1 — the textual test-configuration description, round-
/// tripped through the parser.
pub fn fig1_description() {
    println!("== Fig. 1: test configuration description (Step response 1) ==");
    let mac = iv_macro(false);
    let configs = mac.configurations();
    let step1 = configs.iter().find(|c| c.id() == 4).expect("config #4 exists");
    let description = step1.description();
    let text = description.to_string();
    println!("{text}");
    let parsed = castg_core::ConfigDescription::parse(&text).expect("round-trip parse");
    assert_eq!(parsed, description, "description must round-trip");
    let path = write_result("fig1_description.txt", &text);
    println!("round-trip parse: ok → {}", path.display());
}

/// E2–E4 / Figs. 2–4 — tps-graphs of the THD configuration for one
/// bridging fault at hard (10 kΩ) and soft (34 kΩ, 75 kΩ) impact.
///
/// The paper's fault sits "between two arbitrarily chosen nodes"; we use
/// `bridge(tail, out)` — strongly detected at the 10 kΩ dictionary
/// impact (hard region) and marginal at 34/75 kΩ, which reproduces the
/// paper's hard→soft contrast: the Fig.-2 scale is hundreds of |S| while
/// Figs. 3-4 sit in [-3, 1]. Returns the three grid minima for the
/// experiment log.
pub fn figs234_tps_graphs(nx: usize, ny: usize) -> Vec<(f64, f64, f64)> {
    println!("== Figs. 2-4: tps-graphs, THD configuration, bridge(tail,out) ==");
    let mac = iv_macro(false);
    let circuit = mac.nominal_circuit();
    let cache = NominalCache::new();
    let configs = mac.configurations();
    let thd = configs.iter().find(|c| c.id() == 3).expect("config #3 exists");
    let ev = Evaluator::new(thd.as_ref(), &circuit, &cache);

    let mut minima = Vec::new();
    for (fig, ohms) in [(2, 10e3), (3, 34e3), (4, 75e3)] {
        let fault = Fault::bridge("tail", "out", ohms);
        let graph = tps_graph(&ev, &fault, nx, ny).expect("2-parameter sweep");
        let ascii = graph.render_ascii();
        println!("--- Fig. {fig}: R = {} ---", fmt_si(ohms, "Ω"));
        println!("{ascii}");
        let (x, y, s) = graph.optimum().expect("non-empty grid");
        println!(
            "optimum: Iin_dc = {}, freq = {}, S = {:.3}; detecting fraction = {:.2}\n",
            fmt_si(x, "A"),
            fmt_si(y, "Hz"),
            s,
            graph.detecting_fraction()
        );
        write_result(&format!("fig{fig}_tps.csv"), &graph.to_csv());
        write_result(&format!("fig{fig}_tps.txt"), &ascii);
        minima.push((x, y, s));
    }
    println!(
        "soft-fault stability (paper §3.2): Fig.3 and Fig.4 optima should coincide: \
         {:?} vs {:?}",
        (minima[1].0, minima[1].1),
        (minima[2].0, minima[2].1)
    );
    minima
}

/// E5 / Fig. 5 — the tolerance box in a two-return-value space: nominal
/// returns, the box, one fault-free process sample (inside) and one
/// faulty response (outside).
pub fn fig5_tolerance_box() {
    println!("== Fig. 5: tolerance box around nominal return values ==");
    let mac = iv_macro(false);
    let circuit = mac.nominal_circuit();
    let cache = NominalCache::new();
    let configs = mac.configurations();
    // Two return values: ΔV(out) (config #1) and ΔI(VDD) (config #2) at
    // a shared DC level.
    let level = [20e-6];
    let mut rows = TextTable::new(vec![
        "response".into(),
        "r1 = dV(out) [V]".into(),
        "r2 = dI(VDD) [A]".into(),
        "inside box?".into(),
    ]);
    let (c1, c2) = (&configs[0], &configs[1]);
    let ev1 = Evaluator::new(c1.as_ref(), &circuit, &cache);
    let ev2 = Evaluator::new(c2.as_ref(), &circuit, &cache);
    let box1 = c1.tolerance_box(&level, &[0.0])[0];
    let box2 = c2.tolerance_box(&level, &[0.0])[0];
    println!("tolerance box half-widths: |r1| ≤ {box1:.4e} V, |r2| ≤ {box2:.4e} A");

    // Fault-free process sample → R(T)₁ (may come from a good macro).
    let process = ProcessVariation::default();
    let sample = process.sample(&circuit, 7);
    let nom1 = ev1.nominal(&level).expect("nominal measurement");
    let nom2 = ev2.nominal(&level).expect("nominal measurement");
    let m1 = c1.measure(&sample, &level).expect("sample measurement");
    let m2 = c2.measure(&sample, &level).expect("sample measurement");
    let r1 = c1.return_values(&m1, &nom1)[0];
    let r2 = c2.return_values(&m2, &nom2)[0];
    rows.push_row(vec![
        "R(T)_1: process sample (good macro)".into(),
        format!("{r1:.4e}"),
        format!("{r2:.4e}"),
        format!("{}", r1.abs() <= box1 && r2.abs() <= box2),
    ]);

    // Faulty response → R(T)₂ (only a faulty macro can produce it).
    let fault = Fault::bridge("na", "out", 10e3);
    let rep1 = ev1.evaluate(&fault, &level).expect("fault evaluation");
    let rep2 = ev2.evaluate(&fault, &level).expect("fault evaluation");
    let f1 = rep1.faulty_returns[0] - rep1.nominal_returns[0];
    let f2 = rep2.faulty_returns[0] - rep2.nominal_returns[0];
    rows.push_row(vec![
        "R(T)_2: faulty macro, bridge(na,out)".into(),
        format!("{f1:.4e}"),
        format!("{f2:.4e}"),
        format!("{}", f1.abs() <= box1 && f2.abs() <= box2),
    ]);
    rows.push_row(vec![
        "nominal".into(),
        "0".into(),
        "0".into(),
        "true".into(),
    ]);
    let rendered = rows.render();
    println!("{rendered}");
    write_result("fig5_tolerance_box.csv", &rows.csv());
    write_result("fig5_tolerance_box.txt", &rendered);
}

/// E6 / Fig. 6 — narrated single-fault generation (the algorithm trace).
pub fn fig6_trace() {
    println!("== Fig. 6: generation scheme trace for one dictionary fault ==");
    let mac = iv_macro(false);
    let cache = NominalCache::new();
    let generator = Generator::with_options(&mac, &cache, harness_options());
    let fault = Fault::bridge("na", "out", IvConverter::BRIDGE_R0);
    let mut lines = Vec::new();
    let best = generator
        .generate_for_fault_logged(&fault, &mut |line| {
            println!("{line}");
            lines.push(line);
        })
        .expect("generation succeeds");
    lines.push(format!(
        "result: config #{} {} at {:?}",
        best.config_id, best.config_name, best.params
    ));
    write_result("fig6_trace.txt", &lines.join("\n"));
}

/// E7 / Fig. 7 — the pinhole fault model: netlist before/after
/// injection.
pub fn fig7_pinhole() {
    println!("== Fig. 7: pinhole fault model (Eckersall), injected into M6 ==");
    let mac = iv_macro(false);
    let circuit = mac.nominal_circuit();
    let fault = Fault::pinhole("M6", IvConverter::PINHOLE_R0);
    let faulty = fault.inject(&circuit).expect("injection");
    let before: Vec<&str> = circuit.devices().iter().map(|d| d.name()).collect();
    let after: Vec<&str> = faulty.devices().iter().map(|d| d.name()).collect();
    let removed: Vec<&&str> = before.iter().filter(|n| !after.contains(n)).collect();
    let added: Vec<&&str> = after.iter().filter(|n| !before.contains(n)).collect();
    let mut out = String::new();
    out.push_str(&format!("fault: {fault}\n"));
    out.push_str(&format!("removed devices: {removed:?}\n"));
    out.push_str(&format!("added devices:   {added:?}\n"));
    out.push_str(&format!(
        "split node:      M6__ph (defect at {:.0} % of the channel from the drain)\n",
        castg_faults::PINHOLE_POSITION_FROM_DRAIN * 100.0
    ));
    println!("{out}");
    write_result("fig7_pinhole.txt", &out);
}

/// E8 / Table 1 — the five test-configuration definitions.
pub fn table1_configs() {
    println!("== Table 1: test configuration definitions (IV-converter) ==");
    let mac = iv_macro(false);
    let mut table = TextTable::new(vec![
        "#".into(),
        "name".into(),
        "stimulus at Iin".into(),
        "return value".into(),
        "parameters [bounds]".into(),
        "seed".into(),
    ]);
    let mut fig1_texts = String::new();
    for c in mac.configurations() {
        let d = c.description();
        let space = c.space();
        let params = c
            .param_names()
            .iter()
            .enumerate()
            .map(|(i, n)| {
                format!(
                    "{n} ∈ [{}, {}]",
                    fmt_num(space.bounds(i).lo()),
                    fmt_num(space.bounds(i).hi())
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        let seed = c
            .seed()
            .iter()
            .map(|v| fmt_num(*v))
            .collect::<Vec<_>>()
            .join(", ");
        table.push_row(vec![
            format!("#{}", c.id()),
            c.name().to_string(),
            d.controls[0].action.clone(),
            d.return_value.clone(),
            params,
            seed,
        ]);
        fig1_texts.push_str(&d.to_string());
        fig1_texts.push('\n');
    }
    let rendered = table.render();
    println!("{rendered}");
    write_result("table1_configs.txt", &rendered);
    write_result("table1_configs.csv", &table.csv());
    write_result("table1_descriptions.txt", &fig1_texts);
}

/// E9 / Table 2 — distribution of best tests over configurations.
pub fn table2_distribution(fresh: bool, calibrated: bool) -> GenerationReport {
    println!("== Table 2: best-test distribution over configurations ==");
    let mac = iv_macro(calibrated);
    let cache = NominalCache::new();
    let (report, _) = generation_cached(&mac, &cache, fresh);
    let mut table = TextTable::new(vec![
        "ID test configuration tc".into(),
        "bridge(45)".into(),
        "pinhole(10)".into(),
    ]);
    for row in report.distribution() {
        table.push_row(vec![
            format!("#{} {}", row.config_id, row.config_name),
            row.bridge.to_string(),
            row.pinhole.to_string(),
        ]);
    }
    let undetected = report.undetected();
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "undetectable at dictionary impact (intensified per §2.2): {} ({:?})",
        undetected.len(),
        undetected.iter().map(|t| t.fault.name()).collect::<Vec<_>>()
    );
    write_result("table2_distribution.txt", &rendered);
    write_result("table2_distribution.csv", &table.csv());
    report
}

/// E10 / Fig. 8 — optimal parameter values for configurations #1–#3,
/// with compaction group labels.
pub fn fig8_scatter(fresh: bool, calibrated: bool) {
    println!("== Fig. 8: optimal test parameter values (configs #1, #2, #3) ==");
    let mac = iv_macro(calibrated);
    let cache = NominalCache::new();
    let (report, _) = generation_cached(&mac, &cache, fresh);
    let compaction = compact(&mac, &cache, &report, &CompactionOptions::default())
        .expect("compaction succeeds");

    let mut table = TextTable::new(vec![
        "config".into(),
        "fault".into(),
        "par1".into(),
        "par2".into(),
        "group".into(),
    ]);
    for cid in [1usize, 2, 3] {
        for t in report.tests_for_config(cid) {
            let group = compaction
                .tests
                .iter()
                .position(|ct| {
                    ct.config_id == cid && ct.covered_faults.contains(&t.fault.name())
                })
                .map(|g| format!("G{g}"))
                .unwrap_or_else(|| "-".into());
            table.push_row(vec![
                format!("#{cid}"),
                t.fault.name(),
                format!("{:.4e}", t.params[0]),
                t.params.get(1).map(|p| format!("{p:.4e}")).unwrap_or_else(|| "-".into()),
                group,
            ]);
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    write_result("fig8_scatter.txt", &rendered);
    write_result("fig8_scatter.csv", &table.csv());
}

/// E11 / Table 3 — the tests defined by configuration #5.
pub fn table3_config5(fresh: bool, calibrated: bool) {
    println!("== Table 3: tests selected from configuration #5 ==");
    let mac = iv_macro(calibrated);
    let cache = NominalCache::new();
    let (report, _) = generation_cached(&mac, &cache, fresh);
    let mut table = TextTable::new(vec![
        "fault".into(),
        "par1 = base [A]".into(),
        "par2 = elev [A]".into(),
        "S at dictionary impact".into(),
    ]);
    for t in report.tests_for_config(5) {
        table.push_row(vec![
            t.fault.name(),
            format!("{:.4e}", t.params[0]),
            format!("{:.4e}", t.params[1]),
            format!("{:.3}", t.sensitivity_at_dictionary),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    println!("(the paper's Table 3 lists exactly 2 such tests)");
    write_result("table3_config5.txt", &rendered);
    write_result("table3_config5.csv", &table.csv());
}

/// E12 / §4.2 — compaction sweep over δ: collapsed set size, screen
/// rejections, and coverage of the compacted set.
pub fn compaction_sweep(fresh: bool, calibrated: bool) {
    println!("== §4.2: test-set collapse vs. δ ==");
    let mac = iv_macro(calibrated);
    let cache = NominalCache::new();
    let (report, _) = generation_cached(&mac, &cache, fresh);
    let dict = mac.fault_dictionary();
    let mut table = TextTable::new(vec![
        "delta".into(),
        "tests".into(),
        "ratio".into(),
        "screen rejections".into(),
        "fault coverage of compacted set".into(),
    ]);
    for delta in [0.0, 0.1, 0.25, 0.5] {
        let options = CompactionOptions { delta, ..CompactionOptions::default() };
        let compaction = compact(&mac, &cache, &report, &options).expect("compaction");
        let tests =
            test_instances_from_compaction(&mac, &compaction).expect("instances resolve");
        let coverage = evaluate_test_set(&mac, &cache, &tests, &dict).expect("coverage");
        table.push_row(vec![
            format!("{delta:.2}"),
            compaction.tests.len().to_string(),
            format!("{:.1}x", compaction.ratio()),
            compaction.screen_rejections.to_string(),
            format!("{}/{} ({:.1} %)", coverage.detected(), coverage.total(),
                100.0 * coverage.coverage()),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    write_result("compaction_sweep.txt", &rendered);
    write_result("compaction_sweep.csv", &table.csv());
}

/// E13 / §2.2 — the fixed-seed selection baseline vs. tailored
/// optimization.
pub fn baseline_ablation(fresh: bool, calibrated: bool) {
    println!("== §2.2 ablation: seed-selection baseline vs. optimized generation ==");
    let mac = iv_macro(calibrated);
    let cache = NominalCache::new();
    let (report, _) = generation_cached(&mac, &cache, fresh);
    let dict = mac.fault_dictionary();
    let cmp = compare_with_baseline(&mac, &cache, &report, &dict).expect("comparison");
    let mut table = TextTable::new(vec![
        "strategy".into(),
        "tests".into(),
        "faults detected".into(),
        "mean best sensitivity".into(),
    ]);
    table.push_row(vec![
        "fixed seed set (selection only)".into(),
        cmp.baseline.test_count.to_string(),
        format!("{}/{}", cmp.baseline.detected(), cmp.baseline.total()),
        format!("{:.3}", cmp.baseline.mean_best_sensitivity()),
    ]);
    table.push_row(vec![
        "tailored optimization (this paper)".into(),
        cmp.optimized.test_count.to_string(),
        format!("{}/{}", cmp.optimized.detected(), cmp.optimized.total()),
        format!("{:.3}", cmp.optimized.mean_best_sensitivity()),
    ]);
    let rendered = table.render();
    println!("{rendered}");
    println!("faults gained by optimization: {:?}", cmp.gained());
    println!("mean margin gain: {:.3}", cmp.mean_margin_gain());
    write_result("baseline_ablation.txt", &rendered);
    write_result("baseline_ablation.csv", &table.csv());
}

/// Small sanity sweep of tps profiles for the 1-parameter configs (used
/// by `regen_all` as a bonus artifact; not a paper figure).
pub fn tps_profiles_1param() {
    println!("== bonus: tps profiles of the 1-parameter configurations ==");
    let mac = iv_macro(false);
    let circuit = mac.nominal_circuit();
    let cache = NominalCache::new();
    let configs = mac.configurations();
    let fault = Fault::bridge("na", "out", 34e3);
    let mut out = String::from("config,param,sensitivity\n");
    for c in configs.iter().filter(|c| c.space().dim() == 1) {
        let ev = Evaluator::new(c.as_ref(), &circuit, &cache);
        let profile = tps_profile(&ev, &fault, 17).expect("profile");
        for (x, s) in &profile {
            out.push_str(&format!("{},{x:.6e},{s:.6e}\n", c.name()));
        }
        let best = profile.iter().cloned().fold((0.0, f64::INFINITY), |acc, p| {
            if p.1 < acc.1 {
                p
            } else {
                acc
            }
        });
        println!("config #{} {}: best S = {:.3} at {}", c.id(), c.name(), best.1,
            fmt_si(best.0, "A"));
    }
    write_result("tps_profiles_1param.csv", &out);
}
