//! Benchmark harness for `castg`: regenerates every table and figure of
//! the paper's evaluation (§3.4/§4.2) and hosts the Criterion
//! performance benches.
//!
//! Each experiment is a library function in [`experiments`] so that the
//! thin `src/bin/*` wrappers, the `regen_all` driver and the integration
//! tests all share one implementation. Results are written to the
//! `results/` directory at the workspace root as CSV plus a rendered
//! text table, and a summary is printed to stdout.
//!
//! The full 55-fault generation run is expensive on small machines, so
//! its outcome is cached in `results/generation.csv`; downstream
//! experiments (Table 2, Table 3, Fig. 8, compaction, baseline) reuse
//! the cache unless it is missing or `--fresh` is passed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod golden;
mod persist;

pub use persist::{load_generation, save_generation};

use std::path::PathBuf;

use castg_core::{GeneratorOptions, NominalCache};
use castg_macros::IvConverter;

/// Where experiment outputs land (workspace-root `results/`).
pub fn results_dir() -> PathBuf {
    // Walk up from the current directory to the workspace root (the
    // directory holding both Cargo.toml and crates/).
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            let r = dir.join("results");
            let _ = std::fs::create_dir_all(&r);
            return r;
        }
        if !dir.pop() {
            let r = PathBuf::from("results");
            let _ = std::fs::create_dir_all(&r);
            return r;
        }
    }
}

/// Writes an experiment artifact under `results/`, returning its path.
pub fn write_result(name: &str, content: &str) -> PathBuf {
    let path = results_dir().join(name);
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// The device under test used by all experiments.
///
/// `calibrated` selects the Monte-Carlo box-functions (paper-faithful,
/// slower to start) versus the analytic boxes (fast demos).
pub fn iv_macro(calibrated: bool) -> IvConverter {
    if calibrated {
        IvConverter::new()
    } else {
        IvConverter::with_analytic_boxes()
    }
}

/// Generator options tuned for the experiment harness.
pub fn harness_options() -> GeneratorOptions {
    GeneratorOptions::default()
}

/// Runs the 55-fault generation or loads it from the results cache.
///
/// Returns the report plus a flag saying whether it was freshly
/// computed.
pub fn generation_cached(
    mac: &IvConverter,
    cache: &NominalCache,
    fresh: bool,
) -> (castg_core::GenerationReport, bool) {
    use castg_core::{AnalogMacro, Generator};
    let path = results_dir().join("generation.csv");
    if !fresh {
        if let Some(report) = load_generation(&path) {
            println!("[generation] loaded {} tests from {}", report.tests.len(), path.display());
            return (report, false);
        }
    }
    println!("[generation] running the full fault dictionary (55 faults)...");
    let generator = Generator::with_options(mac, cache, harness_options());
    let report = generator.generate(&mac.fault_dictionary());
    save_generation(&path, &report);
    println!(
        "[generation] {} tests, {} failures, {} simulator evaluations, {:.1?}",
        report.tests.len(),
        report.failures.len(),
        report.total_evaluations(),
        report.wall_time
    );
    (report, true)
}

/// True when the CLI arguments ask for a fresh (non-cached) run.
pub fn fresh_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--fresh")
}

/// True when the CLI arguments ask for calibrated boxes.
pub fn calibrated_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--calibrated")
}

/// Convenience used by binaries: parse `(--fresh, --calibrated)` from
/// `std::env::args`.
pub fn cli_flags() -> (bool, bool) {
    let args: Vec<String> = std::env::args().collect();
    (fresh_requested(&args), calibrated_requested(&args))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.exists());
    }

    #[test]
    fn flags_parse() {
        assert!(fresh_requested(&["--fresh".to_string()]));
        assert!(!fresh_requested(&[]));
        assert!(calibrated_requested(&["x".into(), "--calibrated".into()]));
    }
}
