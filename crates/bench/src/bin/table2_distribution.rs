//! Regenerates Table 2 (best-test distribution; runs or loads the
//! 55-fault generation). Flags: --fresh, --calibrated.
fn main() {
    let (fresh, calibrated) = castg_bench::cli_flags();
    castg_bench::experiments::table2_distribution(fresh, calibrated);
}
