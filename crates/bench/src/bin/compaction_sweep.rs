//! Regenerates the §4.2 collapse result across delta values.
//! Flags: --fresh, --calibrated.
fn main() {
    let (fresh, calibrated) = castg_bench::cli_flags();
    castg_bench::experiments::compaction_sweep(fresh, calibrated);
}
