//! Regenerates Figs. 2-4 (tps-graphs at 10/34/75 kOhm bridge impact).
fn main() {
    castg_bench::experiments::figs234_tps_graphs(17, 17);
}
