//! Regenerates Fig. 6 (generation scheme) as an algorithm trace.
fn main() {
    castg_bench::experiments::fig6_trace();
}
