//! Regenerates every table and figure of the paper in order, then the
//! golden-report fixtures under `tests/golden/` (the byte-stable
//! pipeline renderings asserted by `tests/golden_reports.rs`).
//! Flags: --fresh (ignore the generation cache), --calibrated
//! (Monte-Carlo box-functions instead of analytic ones).
fn main() {
    use castg_bench::experiments as ex;
    let (fresh, calibrated) = castg_bench::cli_flags();
    ex::fig1_description();
    ex::table1_configs();
    ex::fig7_pinhole();
    ex::fig5_tolerance_box();
    ex::figs234_tps_graphs(17, 17);
    ex::fig6_trace();
    ex::table2_distribution(fresh, calibrated);
    ex::fig8_scatter(false, calibrated);
    ex::table3_config5(false, calibrated);
    ex::compaction_sweep(false, calibrated);
    ex::baseline_ablation(false, calibrated);
    ex::tps_profiles_1param();
    let golden_dir = castg_bench::results_dir()
        .parent()
        .expect("results/ lives under the workspace root")
        .join("tests/golden");
    castg_bench::golden::write_fixtures(&golden_dir);
    println!("\nall artifacts regenerated into results/");
}
