//! Regenerates Fig. 5 (tolerance box in two-return-value space).
fn main() {
    castg_bench::experiments::fig5_tolerance_box();
}
