//! End-to-end fault-campaign throughput benchmark.
//!
//! Runs the full generate → inject → evaluate pipeline on the
//! canonical campaign workloads — the paper's IV-converter dictionary,
//! the scalable RC ladder at n = 256 unknowns, and the 2-D resistive
//! mesh (the fill-reducing-ordering workload) — and emits a
//! machine-readable `BENCH_campaign.json` with wall time, a per-phase
//! breakdown and the evaluation throughput in faults per second, so the
//! perf trajectory of the campaign engine is trackable PR over PR.
//!
//! The mesh scenario also records the sparse factor fill under natural
//! and AMD ordering (`mesh_fill` in the JSON) and **asserts** that AMD
//! at least halves `nnz(L+U)` at n ≥ 256 — the CI smoke run gates on
//! that exit status, so an ordering regression cannot land silently.
//!
//! Robustness gates ride the same exit status: every workload records
//! its per-fault outcome tally and Newton strategy-ladder statistics
//! (`outcomes` / `convergence_stats` in the JSON) and **asserts** zero
//! unconverged, panicked, timed-out and injection-failed faults, and
//! the IV converter's cold-start DC operating point must land in fewer
//! than 25 Newton iterations (`iv_cold_start_iterations`).
//!
//! ```text
//! cargo run --release -p castg-bench --bin campaign_bench -- \
//!     [--quick] [--threads N] [--reps N] [--iv-faults N] [--out PATH]
//! ```
//!
//! `--quick` is the CI smoke configuration: a small fault list, one
//! repetition, same code paths. The binary exits nonzero if any
//! workload produces a non-finite or zero throughput, so CI can gate on
//! it without parsing the JSON.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use castg_core::synthetic::{LadderMacro, MeshMacro, OtaChainMacro};
use castg_core::{
    compact, evaluate_test_set_with_threads, test_instances_from_compaction, AnalogMacro,
    CompactionOptions, Generator, GeneratorOptions, NominalCache, OutcomeTally, TestInstance,
};
use castg_faults::FaultDictionary;
use castg_macros::IvConverter;
use castg_numeric::{BrentOptions, PowellOptions};
use castg_spice::{
    sparse_fill_stats, AnalysisOptions, DcAnalysis, LadderStats, OrderingKind, SolverKind,
};

/// One workload's timings, all in seconds.
struct WorkloadResult {
    name: String,
    faults: usize,
    tests: usize,
    threads: usize,
    reps: usize,
    generate_s: f64,
    compact_s: f64,
    inject_s: f64,
    /// Best-of-`reps` wall time of one full coverage evaluation.
    evaluate_s: f64,
    /// `faults / evaluate_s` for the best repetition.
    faults_per_s: f64,
    /// Fault × test simulation pairs per second for the best repetition.
    pairs_per_s: f64,
    /// Per-fault outcome counts (bit-identical across reps and threads).
    tally: OutcomeTally,
    /// Newton strategy-ladder statistics of the faulted solves.
    ladder: LadderStats,
}

/// The robustness gate every workload must clear: the canonical
/// dictionaries contain no fault the strategy ladder cannot land, so a
/// single unconverged (or panicked, or timed-out, or injection-failed)
/// fault is a convergence regression and fails the CI smoke run.
fn assert_all_converged(name: &str, tally: &OutcomeTally) {
    assert_eq!(
        (tally.unconverged, tally.panicked, tally.timed_out, tally.injection_failed),
        (0, 0, 0, 0),
        "{name}: robustness regression: {tally:?}"
    );
}

fn frugal_options(threads: usize) -> GeneratorOptions {
    GeneratorOptions {
        threads,
        powell: PowellOptions {
            ftol: 1e-3,
            max_iter: 6,
            line: BrentOptions { tol: 5e-3, max_iter: 10 },
        },
        brent: BrentOptions { tol: 1e-3, max_iter: 20 },
        ..GeneratorOptions::default()
    }
}

/// Times one full campaign: generation over `dict`, compaction, one
/// timed injection sweep, and `reps` coverage evaluations of the
/// compacted set (best time kept).
fn run_campaign(
    name: &str,
    mac: &dyn AnalogMacro,
    dict: &FaultDictionary,
    threads: usize,
    reps: usize,
) -> WorkloadResult {
    let cache = NominalCache::new();

    let t0 = Instant::now();
    let generation = Generator::with_options(mac, &cache, frugal_options(threads)).generate(dict);
    let generate_s = t0.elapsed().as_secs_f64();
    assert!(
        generation.failures.is_empty(),
        "{name}: generation failed: {:?}",
        generation.failures
    );

    let t0 = Instant::now();
    let compaction =
        compact(mac, &cache, &generation, &CompactionOptions::default()).expect("compaction");
    let compact_s = t0.elapsed().as_secs_f64();
    let tests = test_instances_from_compaction(mac, &compaction).expect("instances");

    // Injection cost for the whole fault list (the campaign engine pays
    // this once per evaluation, inside the evaluate phase).
    let nominal = mac.nominal_circuit();
    let t0 = Instant::now();
    for fault in dict.iter() {
        let _ = fault.inject(&nominal).expect("dictionary fault must inject");
    }
    let inject_s = t0.elapsed().as_secs_f64();

    let mut evaluate_s = f64::INFINITY;
    let mut tally = OutcomeTally::default();
    let mut ladder = LadderStats::default();
    for _ in 0..reps.max(1) {
        let fresh_cache = NominalCache::new();
        let t0 = Instant::now();
        let coverage = evaluate_test_set_with_threads(mac, &fresh_cache, &tests, dict, threads)
            .expect("coverage evaluation");
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(coverage.total(), dict.len());
        evaluate_s = evaluate_s.min(dt);
        tally = coverage.tally();
        ladder = coverage.ladder;
    }
    assert_all_converged(name, &tally);

    WorkloadResult {
        name: name.to_string(),
        faults: dict.len(),
        tests: tests.len(),
        threads,
        reps,
        generate_s,
        compact_s,
        inject_s,
        evaluate_s,
        faults_per_s: dict.len() as f64 / evaluate_s,
        pairs_per_s: (dict.len() * tests.len()) as f64 / evaluate_s,
        tally,
        ladder,
    }
}

/// Sparse-factor fill of the mesh workload under both orderings, with
/// the reduction factor the CI gate asserts.
struct MeshFill {
    unknowns: usize,
    pattern_nnz: usize,
    lu_nnz_natural: usize,
    lu_nnz_amd: usize,
    reduction: f64,
}

/// Measures natural-vs-AMD factor fill on a mesh of at least
/// `min_unknowns` MNA unknowns.
fn mesh_fill(min_unknowns: usize) -> MeshFill {
    let mac = MeshMacro::with_unknowns(min_unknowns);
    let circuit = mac.nominal_circuit();
    let natural =
        sparse_fill_stats(&circuit, OrderingKind::Natural).expect("nominal mesh is solvable");
    let amd = sparse_fill_stats(&circuit, OrderingKind::Amd).expect("nominal mesh is solvable");
    MeshFill {
        unknowns: natural.unknowns,
        pattern_nnz: natural.pattern_nnz,
        lu_nnz_natural: natural.lu_nnz,
        lu_nnz_amd: amd.lu_nnz,
        reduction: natural.lu_nnz as f64 / amd.lu_nnz as f64,
    }
}

/// Block-triangular statistics of the OTA-chain workload — the
/// cascaded macro whose static (DC) pattern condenses into per-stage
/// diagonal blocks — with the BTF-vs-AMD fill and DC solve-time
/// comparison the CI gate asserts.
struct BtfStats {
    unknowns: usize,
    pattern_nnz: usize,
    blocks: usize,
    largest_block: usize,
    lu_nnz_btf: usize,
    lu_nnz_amd: usize,
    /// Best-of-reps wall time of one full forced-AMD DC solve.
    dc_amd_s: f64,
    /// Best-of-reps wall time of one full forced-BTF DC solve.
    dc_btf_s: f64,
    speedup: f64,
}

/// Measures BTF-vs-AMD factor fill and DC operating-point solve time on
/// an OTA chain of at least `min_unknowns` MNA unknowns.
fn btf_stats(min_unknowns: usize, reps: usize) -> BtfStats {
    let mac = OtaChainMacro::with_unknowns(min_unknowns);
    let circuit = mac.nominal_circuit();
    let amd = sparse_fill_stats(&circuit, OrderingKind::Amd).expect("nominal chain is solvable");
    let btf = sparse_fill_stats(&circuit, OrderingKind::Btf).expect("nominal chain is solvable");

    // Forced-ordering DC solves on the *same* compiled plan, so after
    // the first repetition both paths time steady-state Newton work
    // (refactor + solve) the way campaigns pay for it. One warm-up rep
    // per ordering absorbs the one-time symbolic analysis.
    let time_dc = |ordering| {
        let opts = AnalysisOptions {
            solver: SolverKind::Sparse,
            ordering,
            ..AnalysisOptions::default()
        };
        let mut best = f64::INFINITY;
        for rep in 0..reps.max(2) + 1 {
            let t0 = Instant::now();
            let sol = DcAnalysis::with_options(&circuit, opts).solve().expect("dc solve");
            let dt = t0.elapsed().as_secs_f64();
            assert!(sol.state().iter().all(|v| v.is_finite()));
            if rep > 0 {
                best = best.min(dt);
            }
        }
        best
    };
    let dc_amd_s = time_dc(OrderingKind::Amd);
    let dc_btf_s = time_dc(OrderingKind::Btf);

    BtfStats {
        unknowns: btf.unknowns,
        pattern_nnz: btf.pattern_nnz,
        blocks: btf.blocks,
        largest_block: btf.largest_block,
        lu_nnz_btf: btf.lu_nnz,
        lu_nnz_amd: amd.lu_nnz,
        dc_amd_s,
        dc_btf_s,
        speedup: dc_amd_s / dc_btf_s,
    }
}

/// Evaluation-only campaign with synthetic DC test instances over a
/// macro's `dc_out` configuration: isolates the inject + evaluate
/// engine from optimizer noise, the way dictionary re-screens hammer it
/// in production.
fn run_eval(
    name: &str,
    mac: &dyn AnalogMacro,
    levels: &[f64],
    threads: usize,
    reps: usize,
) -> WorkloadResult {
    let dict = mac.fault_dictionary();
    let config = mac
        .configurations()
        .into_iter()
        .find(|c| c.name() == "dc_out")
        .expect("macro has a dc_out configuration");
    let tests: Vec<TestInstance> = levels
        .iter()
        .map(|&lev| TestInstance { config: Arc::clone(&config), params: vec![lev] })
        .collect();

    let nominal = mac.nominal_circuit();
    let t0 = Instant::now();
    for fault in dict.iter() {
        let _ = fault.inject(&nominal).expect("dictionary fault must inject");
    }
    let inject_s = t0.elapsed().as_secs_f64();

    let mut evaluate_s = f64::INFINITY;
    let mut tally = OutcomeTally::default();
    let mut ladder = LadderStats::default();
    for _ in 0..reps.max(1) {
        let cache = NominalCache::new();
        let t0 = Instant::now();
        let coverage = evaluate_test_set_with_threads(mac, &cache, &tests, &dict, threads)
            .expect("coverage evaluation");
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(coverage.total(), dict.len());
        evaluate_s = evaluate_s.min(dt);
        tally = coverage.tally();
        ladder = coverage.ladder;
    }
    assert_all_converged(name, &tally);

    WorkloadResult {
        name: name.to_string(),
        faults: dict.len(),
        tests: tests.len(),
        threads,
        reps,
        generate_s: 0.0,
        compact_s: 0.0,
        inject_s,
        evaluate_s,
        faults_per_s: dict.len() as f64 / evaluate_s,
        pairs_per_s: (dict.len() * tests.len()) as f64 / evaluate_s,
        tally,
        ladder,
    }
}

fn render_json(
    results: &[WorkloadResult],
    fill: &MeshFill,
    btf: &BtfStats,
    iv_cold_start_iterations: usize,
) -> String {
    let mut out = String::from("{\n  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"faults\": {}, \"tests\": {}, \"threads\": {}, \
             \"reps\": {}, \"generate_s\": {:.6}, \"compact_s\": {:.6}, \
             \"inject_s\": {:.6}, \"evaluate_s\": {:.6}, \"faults_per_s\": {:.3}, \
             \"pairs_per_s\": {:.3}, \
             \"outcomes\": {{\"detected\": {}, \"undetected\": {}, \"unconverged\": {}, \
             \"singular\": {}, \"timed_out\": {}, \"panicked\": {}, \
             \"injection_failed\": {}}}, \
             \"convergence_stats\": {{\"solves\": {}, \"iterations\": {}, \"plain\": {}, \
             \"damped\": {}, \"gmin_stepping\": {}, \"source_stepping\": {}, \
             \"pseudo_transient\": {}, \"unconverged\": {}}}}}",
            r.name,
            r.faults,
            r.tests,
            r.threads,
            r.reps,
            r.generate_s,
            r.compact_s,
            r.inject_s,
            r.evaluate_s,
            r.faults_per_s,
            r.pairs_per_s,
            r.tally.detected,
            r.tally.undetected,
            r.tally.unconverged,
            r.tally.singular,
            r.tally.timed_out,
            r.tally.panicked,
            r.tally.injection_failed,
            r.ladder.solves(),
            r.ladder.iterations,
            r.ladder.plain,
            r.ladder.damped,
            r.ladder.gmin_stepping,
            r.ladder.source_stepping,
            r.ladder.pseudo_transient,
            r.ladder.unconverged,
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"mesh_fill\": {{\"unknowns\": {}, \"pattern_nnz\": {}, \
         \"lu_nnz_natural\": {}, \"lu_nnz_amd\": {}, \"reduction\": {:.3}}},",
        fill.unknowns, fill.pattern_nnz, fill.lu_nnz_natural, fill.lu_nnz_amd, fill.reduction,
    );
    let _ = writeln!(
        out,
        "  \"btf_stats\": {{\"unknowns\": {}, \"pattern_nnz\": {}, \"blocks\": {}, \
         \"largest_block\": {}, \"lu_nnz_btf\": {}, \"lu_nnz_amd\": {}, \
         \"dc_amd_s\": {:.6}, \"dc_btf_s\": {:.6}, \"speedup\": {:.3}}},",
        btf.unknowns,
        btf.pattern_nnz,
        btf.blocks,
        btf.largest_block,
        btf.lu_nnz_btf,
        btf.lu_nnz_amd,
        btf.dc_amd_s,
        btf.dc_btf_s,
        btf.speedup,
    );
    let _ = writeln!(out, "  \"iv_cold_start_iterations\": {iv_cold_start_iterations}");
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut reps = 3usize;
    let mut iv_faults = 12usize;
    let mut out_path = String::from("BENCH_campaign.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                threads = it.next().and_then(|v| v.parse().ok()).expect("--threads N")
            }
            "--reps" => reps = it.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--iv-faults" => {
                iv_faults = it.next().and_then(|v| v.parse().ok()).expect("--iv-faults N")
            }
            "--out" => out_path = it.next().expect("--out PATH").clone(),
            other => panic!("unknown argument {other}"),
        }
    }
    if quick {
        reps = 1;
        iv_faults = iv_faults.min(3);
    }

    let mut results = Vec::new();

    // Cold-start gate: the paper's IV converter must reach its DC
    // operating point from an all-zeros initial state in fewer than 25
    // Newton iterations — the strategy ladder's standing fix for the
    // macro's worst-case cold start. A regression here means the damped
    // rung (or its adaptive clamp boost) stopped doing its job.
    let iv_cold = {
        let mac = IvConverter::with_analytic_boxes();
        let circuit = mac.nominal_circuit();
        let sol = DcAnalysis::new(&circuit).solve().expect("IV cold-start DC solve");
        sol.newton_iterations()
    };
    eprintln!("iv_cold_start_iterations: {iv_cold}");
    assert!(iv_cold < 25, "IV-converter cold start regressed to {iv_cold} Newton iterations");

    // IV-converter: the paper's macro, full generate → inject → evaluate.
    let mac = IvConverter::with_analytic_boxes();
    let dict = FaultDictionary::new(
        mac.fault_dictionary().iter().take(iv_faults).cloned().collect(),
    );
    results.push(run_campaign("iv_converter", &mac, &dict, threads, reps));

    // The same macro through the `castg-netlist` frontend: the deck
    // fixture + description-file configurations. Parsed macros must
    // ride the identical structure-sharing fast path, so its faults/sec
    // is asserted against the compiled macro's below.
    let fixtures = castg_bench::results_dir()
        .parent()
        .expect("results/ lives under the workspace root")
        .join("tests/fixtures");
    let netlist_mac = castg_netlist::NetlistMacro::from_files(
        &fixtures.join("iv_converter.sp"),
        &fixtures.join("iv_configs"),
        castg_netlist::NetlistMacroOptions::default(),
    )
    .expect("IV deck fixtures load");
    let netlist_dict = FaultDictionary::new(
        castg_core::AnalogMacro::fault_dictionary(&netlist_mac)
            .iter()
            .take(iv_faults)
            .cloned()
            .collect(),
    );
    results.push(run_campaign("iv_converter_netlist", &netlist_mac, &netlist_dict, threads, reps));
    {
        let compiled = &results[results.len() - 2];
        let parsed = &results[results.len() - 1];
        let ratio = parsed.faults_per_s / compiled.faults_per_s;
        eprintln!(
            "netlist-vs-compiled evaluate throughput: {:.1} vs {:.1} faults/s ({:.2}x)",
            parsed.faults_per_s, compiled.faults_per_s, ratio
        );
        // The acceptance bound is ±10 % (tracked in the committed
        // BENCH_campaign.json); the CI gate sits at 0.7× because
        // container timing noise on these sub-second evaluate phases is
        // regularly ±15 %, while any structural miss (a parsed macro
        // falling off plan sharing, let alone recompile-per-fault) costs
        // well over 30 %.
        assert!(
            ratio > 0.7,
            "parsed-deck campaign fell off the fast path: {ratio:.2}x the compiled throughput"
        );
    }

    // The bipolar op-amp through the netlist frontend: the
    // junction-device campaign. Every nonlinear device is a pn
    // junction, so the full generate → inject → evaluate pipeline rides
    // the junction-limited Newton path, and the derived dictionary
    // mixes bridges with diode/BJT junction pinholes. The standing
    // robustness gate (zero unconverged / panicked / timed-out /
    // injection-failed faults) applies like everywhere else.
    let bjt_mac = castg_netlist::NetlistMacro::from_files(
        &fixtures.join("bjt_opamp.sp"),
        &fixtures.join("bjt_configs"),
        castg_netlist::NetlistMacroOptions::default(),
    )
    .expect("bjt op-amp deck fixtures load");
    let bjt_full = castg_core::AnalogMacro::fault_dictionary(&bjt_mac);
    let bjt_dict = if quick {
        // Smoke mix: four bridges plus four junction pinholes.
        FaultDictionary::new(
            bjt_full.iter().take(4).chain(bjt_full.iter().skip(45).take(4)).cloned().collect(),
        )
    } else {
        bjt_full
    };
    results.push(run_campaign("bjt_opamp_netlist", &bjt_mac, &bjt_dict, threads, reps));

    // Ladder n = 256: the sparse-path campaign workload.
    if !quick {
        let mac = LadderMacro::with_unknowns(256);
        let dict = mac.fault_dictionary();
        results.push(run_campaign("ladder_n256_pipeline", &mac, &dict, threads, reps));
    }
    let eval_reps = if quick { 1 } else { reps.max(5) };
    results.push(run_eval(
        "ladder_n256_eval",
        &LadderMacro::with_unknowns(256),
        &[2.0, 3.5, 5.0, 6.0, 7.0, 8.0],
        threads,
        eval_reps,
    ));

    // The same ladder eval at an explicitly parallel worker count: the
    // bit-identity differentials exercise threads > 1 on every PR, but
    // the bench trajectory previously only ever *timed* threads = 1.
    let par_threads = threads.max(4);
    results.push(run_eval(
        "ladder_n256_eval_t4",
        &LadderMacro::with_unknowns(256),
        &[2.0, 3.5, 5.0, 6.0, 7.0, 8.0],
        par_threads,
        eval_reps,
    ));

    // Mesh n ≥ 256: the fill-reducing-ordering workload (16×16 grid).
    results.push(run_eval(
        "mesh_n256_eval",
        &MeshMacro::with_unknowns(256),
        &[2.0, 3.5, 5.0, 6.5, 8.0],
        threads,
        eval_reps,
    ));

    // OTA chain n = 512: the block-triangular workload — a cascade whose
    // static pattern condenses into per-stage blocks, where Auto's third
    // gate dispatches BTF.
    results.push(run_eval(
        "ota_chain_n512_eval",
        &OtaChainMacro::with_unknowns(512),
        &[1.6, 2.0, 2.4],
        threads,
        eval_reps,
    ));

    // Fill gate: on a mesh of ≥ 256 unknowns (24×24 here — the margin
    // grows with size, from ~1.9× at 16×16 to ~2.7× at 32×32) the AMD
    // ordering must at least halve nnz(L+U) vs natural order.
    let fill = mesh_fill(578);
    eprintln!(
        "mesh_fill: n={} pattern_nnz={} natural={} amd={} reduction={:.2}x",
        fill.unknowns, fill.pattern_nnz, fill.lu_nnz_natural, fill.lu_nnz_amd, fill.reduction
    );
    assert!(
        fill.unknowns >= 256 && fill.lu_nnz_amd * 2 <= fill.lu_nnz_natural,
        "AMD ordering regressed: nnz(L+U) {} (amd) vs {} (natural) at n={}",
        fill.lu_nnz_amd,
        fill.lu_nnz_natural,
        fill.unknowns
    );

    // BTF gate: the n ≥ 512 OTA chain must condense into more than one
    // nontrivial diagonal block, its summed block fill must not exceed
    // the global-AMD fill, and the forced-BTF DC solve must not be
    // slower than forced-AMD (10 % slack absorbs container timing noise
    // on the sub-millisecond solves; the structural win is ~the fill
    // ratio).
    let btf = btf_stats(512, if quick { 3 } else { reps.max(5) });
    eprintln!(
        "btf_stats: n={} blocks={} largest={} lu_nnz btf={} amd={} dc btf={:.6}s amd={:.6}s ({:.2}x)",
        btf.unknowns,
        btf.blocks,
        btf.largest_block,
        btf.lu_nnz_btf,
        btf.lu_nnz_amd,
        btf.dc_btf_s,
        btf.dc_amd_s,
        btf.speedup,
    );
    assert!(
        btf.blocks > 1 && btf.largest_block < btf.unknowns,
        "BTF condensation regressed: {} blocks, largest {} of n={}",
        btf.blocks,
        btf.largest_block,
        btf.unknowns
    );
    assert!(
        btf.lu_nnz_btf <= btf.lu_nnz_amd,
        "BTF fill regressed: {} (btf) vs {} (amd)",
        btf.lu_nnz_btf,
        btf.lu_nnz_amd
    );
    assert!(
        btf.dc_btf_s <= btf.dc_amd_s * 1.10,
        "BTF DC solve regressed: {:.6}s (btf) vs {:.6}s (amd)",
        btf.dc_btf_s,
        btf.dc_amd_s
    );

    let json = render_json(&results, &fill, &btf, iv_cold);
    std::fs::write(&out_path, &json).expect("write BENCH_campaign.json");
    print!("{json}");

    for r in &results {
        eprintln!(
            "{}: evaluate {:.4}s ({:.1} faults/s, {:.1} pairs/s), generate {:.2}s, inject {:.4}s",
            r.name, r.evaluate_s, r.faults_per_s, r.pairs_per_s, r.generate_s, r.inject_s
        );
        assert!(
            r.faults_per_s.is_finite() && r.faults_per_s > 0.0,
            "{}: degenerate throughput",
            r.name
        );
    }
}
