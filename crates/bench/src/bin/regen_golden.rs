//! Regenerates only the golden-report fixtures under `tests/golden/`
//! (and the deck fixtures under `tests/fixtures/`), skipping the full
//! experiment suite that `regen_all` re-runs first. Use after a change
//! that intentionally moves a pipeline rendering:
//!
//! ```text
//! cargo run --release -p castg-bench --bin regen_golden
//! ```
fn main() {
    let golden_dir = castg_bench::results_dir()
        .parent()
        .expect("results/ lives under the workspace root")
        .join("tests/golden");
    castg_bench::golden::write_fixtures(&golden_dir);
}
