//! Regenerates Table 3 (tests from configuration #5).
//! Flags: --fresh, --calibrated.
fn main() {
    let (fresh, calibrated) = castg_bench::cli_flags();
    castg_bench::experiments::table3_config5(fresh, calibrated);
}
