//! Quick wall-clock profile of the DC operating-point hot path on the
//! IV-converter — a cargo-runnable sanity check between full criterion
//! runs (`cargo run --release --bin prof_dc`).

use castg_macros::IvConverter;
use castg_spice::DcAnalysis;
use std::time::Instant;

fn main() {
    let iv = IvConverter::with_analytic_boxes();
    let circuit = iv.build_circuit();
    println!("nodes={} unknowns={}", circuit.node_count(), circuit.unknown_count());
    let t0 = Instant::now();
    let mut acc = 0.0;
    let reps = 20_000;
    for _ in 0..reps {
        let sol = DcAnalysis::new(std::hint::black_box(&circuit)).solve().unwrap();
        acc += sol.voltages()[1];
    }
    println!("acc={acc} per-solve={:?}", t0.elapsed() / reps);
}
