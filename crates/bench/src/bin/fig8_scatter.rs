//! Regenerates Fig. 8 (optimal parameter values of configs #1-#3).
//! Flags: --fresh, --calibrated.
fn main() {
    let (fresh, calibrated) = castg_bench::cli_flags();
    castg_bench::experiments::fig8_scatter(fresh, calibrated);
}
