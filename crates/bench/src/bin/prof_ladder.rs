//! Wall-clock decomposition of one ladder-campaign cell (n = 256): DC
//! solve on the nominal vs a bridge-injected variant, with and without
//! the shared-plan machinery warm. A scratch diagnostic, not a tracked
//! benchmark (`cargo run --release -p castg-bench --bin prof_ladder`).

use castg_core::synthetic::LadderMacro;
use castg_core::AnalogMacro;
use castg_spice::{DcAnalysis, Waveform};
use std::time::Instant;

fn main() {
    let mac = LadderMacro::with_unknowns(256);
    let nominal = mac.nominal_circuit();
    nominal.compile_plan();
    let fault = castg_faults::Fault::bridge("out", "0", LadderMacro::BRIDGE_R0);

    let t0 = Instant::now();
    let reps = 50u32;
    for _ in 0..reps {
        let _ = std::hint::black_box(fault.inject(&nominal).unwrap());
    }
    println!("inject (delta): {:?}", t0.elapsed() / reps);

    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = std::hint::black_box(nominal.clone());
    }
    println!("circuit clone:  {:?}", t0.elapsed() / reps);

    let variant = fault.inject(&nominal).unwrap();
    // Warm the variant's plan/template/symbolic.
    let _ = DcAnalysis::new(&variant).solve().unwrap();

    let reps = 2000u32;
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..reps {
        let sol = DcAnalysis::new(std::hint::black_box(&variant))
            .override_stimulus("V1", Waveform::dc(5.0))
            .solve()
            .unwrap();
        acc += sol.voltages()[1];
    }
    println!("warm variant solve: {:?} (acc={acc})", t0.elapsed() / reps);

    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..reps {
        let sol = DcAnalysis::new(std::hint::black_box(&nominal)).solve().unwrap();
        acc += sol.voltages()[1];
    }
    println!("warm nominal solve: {:?} (acc={acc})", t0.elapsed() / reps);

    // First-solve cost of a fresh variant: template + canonical
    // symbolic + first refactor (all one-time per campaign variant).
    let reps2 = 200u32;
    let t0 = Instant::now();
    for _ in 0..reps2 {
        let v = fault.inject(&nominal).unwrap();
        let _ = std::hint::black_box(DcAnalysis::new(&v).solve().unwrap());
    }
    println!("inject + cold solve: {:?}", t0.elapsed() / reps2);

    // Full evaluator cell on the warm variant (sensitivity_of).
    {
        use castg_core::{Evaluator, NominalCache};
        let cache = NominalCache::new();
        let config = mac
            .configurations()
            .into_iter()
            .find(|c| c.name() == "dc_out")
            .unwrap();
        let ev = Evaluator::new(config.as_ref(), &nominal, &cache);
        let _ = ev.sensitivity_of(&variant, &[5.0]).unwrap();
        let t0 = Instant::now();
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += ev.sensitivity_of(std::hint::black_box(&variant), &[5.0]).unwrap();
        }
        println!("warm evaluator cell: {:?} (acc={acc})", t0.elapsed() / reps);
    }

    // One full campaign evaluation mirroring the bench workload.
    use castg_core::{evaluate_test_set_with_threads, NominalCache, TestInstance};
    use std::sync::Arc;
    let dict = mac.fault_dictionary();
    let config = mac
        .configurations()
        .into_iter()
        .find(|c| c.name() == "dc_out")
        .unwrap();
    let tests: Vec<TestInstance> = [2.0, 3.5, 5.0, 6.0, 7.0, 8.0]
        .iter()
        .map(|&lev| TestInstance { config: Arc::clone(&config), params: vec![lev] })
        .collect();
    let t0 = Instant::now();
    for _ in 0..20 {
        let _ = std::hint::black_box(mac.nominal_circuit());
    }
    println!("nominal_circuit construction: {:?}", t0.elapsed() / 20);
    let fresh = mac.nominal_circuit();
    let t0 = Instant::now();
    fresh.compile_plan();
    println!("nominal plan compile: {:?}", t0.elapsed());
    let t0 = Instant::now();
    let variants: Vec<_> = dict.iter().map(|f| f.inject(&fresh).unwrap()).collect();
    println!("inject all {}: {:?}", variants.len(), t0.elapsed());
    let t0 = Instant::now();
    for v in &variants {
        let _ = DcAnalysis::new(v).solve().unwrap();
    }
    println!("first solves: {:?}", t0.elapsed());
    let t0 = Instant::now();
    for v in &variants {
        let _ = DcAnalysis::new(v).solve().unwrap();
    }
    println!("second solves: {:?}", t0.elapsed());

    let cache = NominalCache::new();
    let t0 = Instant::now();
    let cov = evaluate_test_set_with_threads(&mac, &cache, &tests, &dict, 1).unwrap();
    println!("campaign evaluate (cold cache): {:?} ({} faults)", t0.elapsed(), cov.total());
    let t0 = Instant::now();
    let _ = evaluate_test_set_with_threads(&mac, &cache, &tests, &dict, 1).unwrap();
    println!("campaign evaluate (warm cache): {:?}", t0.elapsed());
}
