//! Regenerates Fig. 1 (test configuration description example).
fn main() {
    castg_bench::experiments::fig1_description();
}
