//! Regenerates the §2.2 ablation (seed selection vs. optimization).
//! Flags: --fresh, --calibrated.
fn main() {
    let (fresh, calibrated) = castg_bench::cli_flags();
    castg_bench::experiments::baseline_ablation(fresh, calibrated);
}
