//! Regenerates Fig. 7 (the pinhole fault model) as a netlist diff.
fn main() {
    castg_bench::experiments::fig7_pinhole();
}
