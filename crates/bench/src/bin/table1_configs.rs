//! Regenerates Table 1 (test configuration definitions).
fn main() {
    castg_bench::experiments::table1_configs();
}
