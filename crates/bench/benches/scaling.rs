//! Dense-vs-sparse scaling benches on the `LadderMacro` and
//! `MeshMacro` families.
//!
//! The DC operating point of an `n`-unknown ladder costs the dense path
//! O(n²) assembly-clear + O(n³) factorization per Newton iteration; the
//! sparse path pays O(nnz) for both (the ladder's MNA matrix is
//! tridiagonal plus one branch row, and the symbolic analysis is reused
//! across iterations). The curves cross around the `Auto` threshold
//! (n = 64); by n = 512 the sparse path must be ≥ 5× faster — the
//! acceptance bar for the sparse-solver PR — and in practice it is
//! orders of magnitude ahead.
//!
//! The mesh group adds the *ordering* dimension: the 2-D grid's
//! natural-order factor fill grows like O(n·√n), so past a few hundred
//! unknowns Sparse-AMD pulls away from Sparse-Natural. Each mesh size
//! prints its `nnz(L+U)` under both orderings before the timing runs,
//! so the fill reduction and the wall-clock effect land in the same
//! bench log.
//!
//! The dense arm is capped at n = 512: one dense solve at n = 1024 runs
//! for seconds, which is exactly the point of the sparse path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use castg_core::synthetic::{LadderMacro, MeshMacro};
use castg_core::AnalogMacro;
use castg_spice::{sparse_fill_stats, AnalysisOptions, DcAnalysis, OrderingKind, SolverKind};

fn opts(solver: SolverKind) -> AnalysisOptions {
    AnalysisOptions { solver, ..AnalysisOptions::default() }
}

fn opts_ordered(solver: SolverKind, ordering: OrderingKind) -> AnalysisOptions {
    AnalysisOptions { solver, ordering, ..AnalysisOptions::default() }
}

fn bench_dc_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ladder_dc_operating_point");
    group.sample_size(10);
    for n in [64usize, 256, 512, 1024] {
        let mac = LadderMacro::with_unknowns(n);
        let circuit = mac.nominal_circuit();

        if n <= 512 {
            group.bench_function(format!("dense_n{n}"), |b| {
                b.iter(|| {
                    let sol = DcAnalysis::with_options(black_box(&circuit), opts(SolverKind::Dense))
                        .solve()
                        .unwrap();
                    black_box(sol.state()[0]);
                })
            });
        }
        group.bench_function(format!("sparse_n{n}"), |b| {
            b.iter(|| {
                let sol = DcAnalysis::with_options(black_box(&circuit), opts(SolverKind::Sparse))
                    .solve()
                    .unwrap();
                black_box(sol.state()[0]);
            })
        });
    }
    group.finish();
}

fn bench_mesh_ordering_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_dc_operating_point");
    group.sample_size(10);
    for n in [256usize, 576, 1024] {
        let mac = MeshMacro::with_unknowns(n);
        let circuit = mac.nominal_circuit();
        let natural = sparse_fill_stats(&circuit, OrderingKind::Natural).unwrap();
        let amd = sparse_fill_stats(&circuit, OrderingKind::Amd).unwrap();
        println!(
            "mesh n={}: pattern nnz {}, nnz(L+U) natural {} vs amd {} ({:.2}x)",
            natural.unknowns,
            natural.pattern_nnz,
            natural.lu_nnz,
            amd.lu_nnz,
            natural.lu_nnz as f64 / amd.lu_nnz as f64
        );

        if n <= 512 {
            group.bench_function(format!("dense_n{n}"), |b| {
                b.iter(|| {
                    let sol = DcAnalysis::with_options(black_box(&circuit), opts(SolverKind::Dense))
                        .solve()
                        .unwrap();
                    black_box(sol.state()[0]);
                })
            });
        }
        for (label, ordering) in
            [("sparse_natural", OrderingKind::Natural), ("sparse_amd", OrderingKind::Amd)]
        {
            group.bench_function(format!("{label}_n{n}"), |b| {
                b.iter(|| {
                    let sol = DcAnalysis::with_options(
                        black_box(&circuit),
                        opts_ordered(SolverKind::Sparse, ordering),
                    )
                    .solve()
                    .unwrap();
                    black_box(sol.state()[0]);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dc_scaling, bench_mesh_ordering_scaling);
criterion_main!(benches);
