//! Dense-vs-sparse scaling benches on the `LadderMacro` family.
//!
//! The DC operating point of an `n`-unknown ladder costs the dense path
//! O(n²) assembly-clear + O(n³) factorization per Newton iteration; the
//! sparse path pays O(nnz) for both (the ladder's MNA matrix is
//! tridiagonal plus one branch row, and the symbolic analysis is reused
//! across iterations). The curves cross around the `Auto` threshold
//! (n = 64); by n = 512 the sparse path must be ≥ 5× faster — the
//! acceptance bar for the sparse-solver PR — and in practice it is
//! orders of magnitude ahead.
//!
//! The dense arm is capped at n = 512: one dense solve at n = 1024 runs
//! for seconds, which is exactly the point of the sparse path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use castg_core::synthetic::LadderMacro;
use castg_core::AnalogMacro;
use castg_spice::{AnalysisOptions, DcAnalysis, SolverKind};

fn opts(solver: SolverKind) -> AnalysisOptions {
    AnalysisOptions { solver, ..AnalysisOptions::default() }
}

fn bench_dc_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ladder_dc_operating_point");
    group.sample_size(10);
    for n in [64usize, 256, 512, 1024] {
        let mac = LadderMacro::with_unknowns(n);
        let circuit = mac.nominal_circuit();

        if n <= 512 {
            group.bench_function(format!("dense_n{n}"), |b| {
                b.iter(|| {
                    let sol = DcAnalysis::with_options(black_box(&circuit), opts(SolverKind::Dense))
                        .solve()
                        .unwrap();
                    black_box(sol.state()[0]);
                })
            });
        }
        group.bench_function(format!("sparse_n{n}"), |b| {
            b.iter(|| {
                let sol = DcAnalysis::with_options(black_box(&circuit), opts(SolverKind::Sparse))
                    .solve()
                    .unwrap();
                black_box(sol.state()[0]);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dc_scaling);
criterion_main!(benches);
