//! Criterion benches for the dense-LU substrate: the allocating
//! `LuFactors` path against the zero-allocation `LuWorkspace` path at
//! MNA-typical sizes. Every Newton iteration of the simulator pays one
//! factor + one solve, so these two curves bound the per-iteration
//! linear-algebra cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use castg_numeric::{LuFactors, LuWorkspace, Matrix};

/// Deterministic well-conditioned test matrix (diagonally dominant).
fn test_system(n: usize) -> (Matrix, Vec<f64>) {
    let mut seed = 0x9e3779b97f4a7c15_u64 ^ (n as u64);
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = next();
        }
        a[(i, i)] += n as f64;
    }
    let b: Vec<f64> = (0..n).map(|_| next()).collect();
    (a, b)
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_factor_solve");
    for n in [8usize, 32, 128] {
        let (a, b) = test_system(n);

        // The pre-workspace hot path: clone the assembled matrix,
        // factor the clone, collect a fresh solution vector.
        group.bench_function(format!("alloc_n{n}"), |bench| {
            bench.iter(|| {
                let lu = LuFactors::factor(black_box(&a).clone()).unwrap();
                let x = lu.solve(black_box(&b)).unwrap();
                black_box(x[0]);
            })
        });

        // The workspace path: swap the matrix into the workspace,
        // factor in place, substitute into a reused buffer. The
        // re-assembly that a real Newton loop performs is modeled by
        // clone_from into the swapped-back scratch (same copy cost an
        // `assemble_into` replay pays).
        group.bench_function(format!("workspace_n{n}"), |bench| {
            let mut ws = LuWorkspace::new(n);
            let mut scratch = a.clone();
            let mut x = vec![0.0; n];
            bench.iter(|| {
                scratch.clone_from(black_box(&a));
                ws.factor_in_place(&mut scratch).unwrap();
                ws.solve_into(black_box(&b), &mut x).unwrap();
                black_box(x[0]);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lu);
criterion_main!(benches);
