//! Criterion benches for the numeric substrate: LU factorization and
//! the Brent/Powell minimizers the generation loop runs on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use castg_numeric::{
    brent_min, powell_min, BrentOptions, Bounds, LuFactors, Matrix, ParamSpace, PowellOptions,
};

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_factor_solve");
    for n in [8usize, 16, 32] {
        // Diagonally dominant dense system of MNA-like size.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            }
            a[(i, i)] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        group.bench_function(format!("n={n}"), |bencher| {
            bencher.iter(|| {
                let lu = LuFactors::factor(black_box(a.clone())).unwrap();
                black_box(lu.solve(black_box(&b)).unwrap());
            })
        });
    }
    group.finish();
}

fn bench_brent(c: &mut Criterion) {
    c.bench_function("brent_quartic", |b| {
        b.iter(|| {
            let m = brent_min(
                |x| (x - 0.7).powi(4) + 0.3 * (x - 0.7).powi(2),
                black_box(-4.0),
                black_box(4.0),
                &BrentOptions::default(),
            );
            black_box(m.x);
        })
    });
}

fn bench_powell(c: &mut Criterion) {
    let space = ParamSpace::new(vec![
        Bounds::new(-2.0, 2.0).unwrap(),
        Bounds::new(-2.0, 2.0).unwrap(),
    ]);
    c.bench_function("powell_rosenbrock", |b| {
        b.iter(|| {
            let r = powell_min(
                |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
                black_box(&[-1.2, 1.0]),
                &space,
                &PowellOptions::default(),
            );
            black_box(r.value);
        })
    });
}

criterion_group!(benches, bench_lu, bench_brent, bench_powell);
criterion_main!(benches);
