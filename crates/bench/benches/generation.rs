//! Criterion benches for the test-generation pipeline itself:
//! sensitivity evaluation on the IV-converter and full single-fault
//! generation on the fast synthetic macro.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use castg_core::synthetic::DividerMacro;
use castg_core::{AnalogMacro, Evaluator, Generator, NominalCache};
use castg_faults::Fault;
use castg_macros::IvConverter;

fn bench_sensitivity_eval(c: &mut Criterion) {
    let mac = IvConverter::with_analytic_boxes();
    let circuit = mac.nominal_circuit();
    let cache = NominalCache::new();
    let configs = mac.configurations();
    let dc = configs.iter().find(|k| k.id() == 1).unwrap();
    let ev = Evaluator::new(dc.as_ref(), &circuit, &cache);
    let faulty = ev.inject(&Fault::bridge("na", "out", 10e3)).unwrap();
    // Warm the nominal cache so the bench isolates the faulty solve.
    ev.sensitivity_of(&faulty, &[20e-6]).unwrap();
    c.bench_function("sensitivity_dc_transfer_iv", |b| {
        b.iter(|| {
            let s = ev.sensitivity_of(black_box(&faulty), &[20e-6]).unwrap();
            black_box(s);
        })
    });
}

fn bench_single_fault_generation(c: &mut Criterion) {
    let mac = DividerMacro::new();
    let cache = NominalCache::new();
    let generator = Generator::new(&mac, &cache);
    let fault = Fault::bridge("out", "0", 10e3);
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.bench_function("single_fault_divider_macro", |b| {
        b.iter(|| {
            let best = generator.generate_for_fault(black_box(&fault)).unwrap();
            black_box(best.critical_scale);
        })
    });
    group.finish();
}

fn bench_fault_injection(c: &mut Criterion) {
    let mac = IvConverter::with_analytic_boxes();
    let circuit = mac.nominal_circuit();
    let bridge = Fault::bridge("na", "out", 10e3);
    let pinhole = Fault::pinhole("M6", 2e3);
    let mut group = c.benchmark_group("fault_injection");
    group.bench_function("bridge", |b| {
        b.iter(|| black_box(bridge.inject(black_box(&circuit)).unwrap()))
    });
    group.bench_function("pinhole", |b| {
        b.iter(|| black_box(pinhole.inject(black_box(&circuit)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sensitivity_eval,
    bench_single_fault_generation,
    bench_fault_injection
);
criterion_main!(benches);
