//! Criterion decomposition of one campaign cell on the n = 256 ladder:
//! what a warm `(fault, test)` DC measurement spends its time on.

use castg_core::synthetic::LadderMacro;
use castg_core::AnalogMacro;
use castg_spice::{DcAnalysis, Waveform};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mac = LadderMacro::with_unknowns(256);
    let nominal = mac.nominal_circuit();
    nominal.compile_plan();
    let fault = castg_faults::Fault::bridge("out", "0", LadderMacro::BRIDGE_R0);
    let variant = fault.inject(&nominal).unwrap();
    let _ = DcAnalysis::new(&variant).solve().unwrap();

    c.bench_function("ladder256_warm_cell_solve", |b| {
        b.iter(|| {
            DcAnalysis::new(std::hint::black_box(&variant))
                .override_stimulus("V1", Waveform::dc(5.0))
                .solve()
                .unwrap()
        })
    });
    c.bench_function("ladder256_delta_inject", |b| {
        b.iter(|| fault.inject(std::hint::black_box(&nominal)).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
