//! Criterion benches for test-set coverage evaluation
//! ([`castg_core::evaluate_test_set`]): the full fault × test
//! sensitivity sweep that scores a compacted test set against a fault
//! dictionary. This is the evaluate half of the generate→evaluate hot
//! path; the generation half lives in `generation.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use castg_core::synthetic::DividerMacro;
use castg_core::{
    evaluate_test_set, evaluate_test_set_with_threads, AnalogMacro, NominalCache, TestInstance,
};

/// Builds a test set that pairs every configuration of the macro with a
/// few parameter points, so the coverage sweep exercises a realistic
/// tests × faults grid without depending on generator randomness.
fn divider_test_set(mac: &DividerMacro) -> Vec<TestInstance> {
    let mut tests = Vec::new();
    for config in AnalogMacro::configurations(mac) {
        for scale in [0.25, 0.5, 1.0] {
            let params: Vec<f64> = config.seed().iter().map(|p| p * scale).collect();
            tests.push(TestInstance { config: Arc::clone(&config), params });
        }
    }
    tests
}

fn bench_coverage_divider(c: &mut Criterion) {
    let mac = DividerMacro::new();
    let cache = NominalCache::new();
    let dict = mac.fault_dictionary();
    let tests = divider_test_set(&mac);
    // Warm the nominal cache so the bench isolates the faulty solves.
    evaluate_test_set(&mac, &cache, &tests, &dict).unwrap();
    let mut group = c.benchmark_group("coverage");
    group.bench_function("evaluate_test_set_divider", |b| {
        b.iter(|| {
            let report =
                evaluate_test_set(black_box(&mac), &cache, &tests, &dict).unwrap();
            black_box(report.detected());
        })
    });
    // Serial path isolates the per-simulation hot-path cost from the
    // worker fan-out (the divider's 3-fault dictionary is too small to
    // amortize thread spawns well; real dictionaries are larger).
    group.bench_function("evaluate_test_set_divider_serial", |b| {
        b.iter(|| {
            let report =
                evaluate_test_set_with_threads(black_box(&mac), &cache, &tests, &dict, 1)
                    .unwrap();
            black_box(report.detected());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coverage_divider);
criterion_main!(benches);
