//! Criterion benches for the MNA simulator substrate: DC operating
//! point, transient stepping, and the THD measurement pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use castg_macros::IvConverter;
use castg_spice::{DcAnalysis, IntegrationMethod, Probe, TranAnalysis, Waveform};

fn bench_dc_operating_point(c: &mut Criterion) {
    let iv = IvConverter::with_analytic_boxes();
    let circuit = iv.build_circuit();
    c.bench_function("dc_operating_point_iv_converter", |b| {
        b.iter(|| {
            let sol = DcAnalysis::new(black_box(&circuit)).solve().unwrap();
            black_box(sol.voltages()[1]);
        })
    });
}

fn bench_transient_microsecond(c: &mut Criterion) {
    let iv = IvConverter::with_analytic_boxes();
    let mut circuit = iv.build_circuit();
    circuit.set_stimulus("IIN", Waveform::step(0.0, 20e-6, 0.1e-6, 10e-9)).unwrap();
    let out = circuit.find_node("out").unwrap();
    c.bench_function("transient_1us_100steps_iv_converter", |b| {
        b.iter(|| {
            let tr = TranAnalysis::new(black_box(&circuit))
                .run(1e-6, 10e-9, &[Probe::NodeVoltage(out)])
                .unwrap();
            black_box(tr.len());
        })
    });
}

fn bench_transient_methods(c: &mut Criterion) {
    let iv = IvConverter::with_analytic_boxes();
    let mut circuit = iv.build_circuit();
    circuit.set_stimulus("IIN", Waveform::sine(20e-6, 5e-6, 100e3)).unwrap();
    let out = circuit.find_node("out").unwrap();
    let mut group = c.benchmark_group("transient_integration_method");
    for (name, method) in [
        ("backward_euler", IntegrationMethod::BackwardEuler),
        ("trapezoidal", IntegrationMethod::Trapezoidal),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let tr = TranAnalysis::with_options(
                    black_box(&circuit),
                    castg_spice::AnalysisOptions::default(),
                    method,
                )
                .run(20e-6, 50e-9, &[Probe::NodeVoltage(out)])
                .unwrap();
                black_box(tr.len());
            })
        });
    }
    group.finish();
}

fn bench_thd_measurement(c: &mut Criterion) {
    use castg_core::AnalogMacro;
    let iv = IvConverter::with_analytic_boxes();
    let circuit = iv.nominal_circuit();
    let configs = iv.configurations();
    let thd = configs.iter().find(|k| k.id() == 3).unwrap();
    let mut group = c.benchmark_group("thd_measurement");
    group.sample_size(10);
    group.bench_function("thd_20uA_10kHz", |b| {
        b.iter(|| {
            let m = thd.measure(black_box(&circuit), &[20e-6, 10e3]).unwrap();
            black_box(m);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dc_operating_point,
    bench_transient_microsecond,
    bench_transient_methods,
    bench_thd_measurement
);
criterion_main!(benches);
