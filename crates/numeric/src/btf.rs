//! Block-triangular form (BTF) preordering for sparse LU.
//!
//! Circuit matrices are rarely irreducible: a cascade of amplifier
//! stages, a flattened `.subckt` hierarchy, or any macro whose signal
//! flow is mostly one-way produces an MNA matrix that a row/column
//! permutation can bring to *block upper triangular* form
//!
//! ```text
//!         ┌ B00 B01 B02 ┐
//! P·A·Q = │     B11 B12 │
//!         └         B22 ┘
//! ```
//!
//! where only the diagonal blocks `Bkk` need factoring — the
//! off-diagonal blocks enter the triangular solves unchanged. This is
//! the decomposition KLU applies to every circuit matrix; it bounds
//! fill by the sum of the per-block fills (never worse than a global
//! ordering restricted to the blocks) and makes the diagonal blocks an
//! embarrassingly parallel factorization workload.
//!
//! The pipeline, per Duff & Reid:
//!
//! 1. **Maximum transversal** ([`SparsePattern::max_transversal`]) — an
//!    MC21-style augmenting-path bipartite matching that pairs every
//!    column with a distinct row holding a structural entry, i.e. a row
//!    permutation putting a zero-free diagonal on the pattern. Fails
//!    (returns `None`) iff the pattern is structurally singular.
//! 2. **SCC condensation** — Tarjan's algorithm on the directed graph
//!    whose edge `c → c'` exists when column `c` has an entry in the
//!    row matched to `c'`. The strongly connected components, laid out
//!    in Tarjan's emission order (reverse topological), are exactly the
//!    diagonal blocks of the finest block-triangular form.
//! 3. **Per-block AMD** — each diagonal block of size ≥ 2 gets its own
//!    [`SparsePattern::amd_ordering`] run on the block's local
//!    subpattern; the local permutation is applied to the row and
//!    column segment *identically*, which preserves both the matched
//!    (zero-free) diagonal and the block-triangular envelope.
//!
//! The result is a [`BtfOrder`]: composed row/column permutations plus
//! block boundaries, consumed by `SparseLu::set_btf_order` to restrict
//! factorization to the diagonal blocks.

use crate::sparse::SparsePattern;

/// Marker for "unmatched" in the transversal arrays.
const UNMATCHED: usize = usize::MAX;

impl SparsePattern {
    /// Computes a maximum transversal: a matching `colmatch[c] = r`
    /// pairing every column `c` with a distinct row `r` such that
    /// `(r, c)` is a structural entry — equivalently, a row permutation
    /// that puts a zero-free diagonal on the pattern.
    ///
    /// Returns `None` when no complete matching exists, i.e. the
    /// pattern is **structurally singular** (every numeric matrix with
    /// this pattern is singular).
    ///
    /// This is Duff's MC21 algorithm: a cheap greedy assignment pass,
    /// then one augmenting-path depth-first search per still-unmatched
    /// column. Deterministic — ties resolve in ascending row order.
    pub fn max_transversal(&self) -> Option<Vec<usize>> {
        let n = self.n;
        let mut colmatch = vec![UNMATCHED; n];
        let mut rowmatch = vec![UNMATCHED; n];

        // Cheap pass: take the first free row in each column.
        for (c, cm) in colmatch.iter_mut().enumerate() {
            for &r in &self.row_idx[self.col_ptr[c]..self.col_ptr[c + 1]] {
                if rowmatch[r] == UNMATCHED {
                    rowmatch[r] = c;
                    *cm = r;
                    break;
                }
            }
        }

        // Augmenting-path pass for the remaining free columns. The
        // `visited` stamp prevents revisiting a column within one
        // root's search; `col_stack`/`pos_stack`/`row_used` form an
        // explicit DFS stack (columns, scan positions, and the row by
        // which each stacked column was entered).
        let mut visited = vec![UNMATCHED; n];
        let mut col_stack = Vec::with_capacity(n);
        let mut pos_stack: Vec<usize> = Vec::with_capacity(n);
        let mut row_used = Vec::with_capacity(n);
        for root in 0..n {
            if colmatch[root] != UNMATCHED {
                continue;
            }
            col_stack.clear();
            pos_stack.clear();
            row_used.clear();
            col_stack.push(root);
            pos_stack.push(self.col_ptr[root]);
            row_used.push(UNMATCHED);
            visited[root] = root;
            let mut augmented = false;
            'dfs: while let Some(&c) = col_stack.last() {
                let end = self.col_ptr[c + 1];
                let pos = pos_stack.last_mut().expect("stacks move together");
                while *pos < end {
                    let r = self.row_idx[*pos];
                    *pos += 1;
                    let owner = rowmatch[r];
                    if owner == UNMATCHED {
                        // Free row found: augment along the stack.
                        *row_used.last_mut().expect("stacks move together") = r;
                        for k in (0..col_stack.len()).rev() {
                            let col = col_stack[k];
                            let row = row_used[k];
                            rowmatch[row] = col;
                            colmatch[col] = row;
                        }
                        augmented = true;
                        break 'dfs;
                    }
                    if visited[owner] != root {
                        visited[owner] = root;
                        *row_used.last_mut().expect("stacks move together") = r;
                        col_stack.push(owner);
                        pos_stack.push(self.col_ptr[owner]);
                        row_used.push(UNMATCHED);
                        continue 'dfs;
                    }
                }
                col_stack.pop();
                pos_stack.pop();
                row_used.pop();
            }
            if !augmented {
                // A column with no augmenting path certifies a
                // structurally singular pattern (König/Hall).
                return None;
            }
        }
        Some(colmatch)
    }

    /// Computes the full block-triangular preordering: maximum
    /// transversal, Tarjan SCC condensation, and a fill-reducing AMD
    /// ordering local to each diagonal block.
    ///
    /// Returns `None` when the pattern is structurally singular (no
    /// zero-free diagonal exists).
    pub fn btf_order(&self) -> Option<BtfOrder> {
        let n = self.n;
        let colmatch = self.max_transversal()?;
        if n == 0 {
            return Some(BtfOrder { rowperm: Vec::new(), colperm: Vec::new(), block_ptr: vec![0] });
        }

        // Tarjan's SCC algorithm (iterative) on column vertices; the
        // successor set of column c is { column matched to row r : r in
        // pattern column c }. Components are emitted successors-first
        // (reverse topological), so laying them out in emission order
        // yields a block *upper* triangular permuted matrix.
        let mut rowmatch = vec![UNMATCHED; n];
        for (c, &r) in colmatch.iter().enumerate() {
            rowmatch[r] = c;
        }
        const UNSET: usize = usize::MAX;
        let mut index = vec![UNSET; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut tarjan_stack: Vec<usize> = Vec::with_capacity(n);
        let mut call_stack: Vec<(usize, usize)> = Vec::with_capacity(n);
        let mut next_index = 0usize;
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut block_ptr: Vec<usize> = vec![0];

        for start in 0..n {
            if index[start] != UNSET {
                continue;
            }
            call_stack.push((start, self.col_ptr[start]));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            on_stack[start] = true;
            tarjan_stack.push(start);
            while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
                let end = self.col_ptr[v + 1];
                let mut descended = false;
                while *pos < end {
                    let w = rowmatch[self.row_idx[*pos]];
                    *pos += 1;
                    if index[w] == UNSET {
                        call_stack.push((w, self.col_ptr[w]));
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        on_stack[w] = true;
                        tarjan_stack.push(w);
                        descended = true;
                        break;
                    } else if on_stack[w] && index[w] < lowlink[v] {
                        lowlink[v] = index[w];
                    }
                }
                if descended {
                    continue;
                }
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    if lowlink[v] < lowlink[parent] {
                        lowlink[parent] = lowlink[v];
                    }
                }
                if lowlink[v] == index[v] {
                    // Pop one complete component; sort ascending for a
                    // deterministic within-block layout.
                    let first = tarjan_stack
                        .iter()
                        .rposition(|&w| w == v)
                        .expect("v is on its own component stack");
                    let mut scc: Vec<usize> = tarjan_stack.split_off(first);
                    for &w in &scc {
                        on_stack[w] = false;
                    }
                    scc.sort_unstable();
                    order.extend_from_slice(&scc);
                    block_ptr.push(order.len());
                }
            }
        }
        debug_assert_eq!(order.len(), n);

        // Compose the global permutations: column k of the permuted
        // matrix is original column order[k]; its matched row goes to
        // position k so the zero-free diagonal survives.
        let mut colperm = order;
        let mut rowperm: Vec<usize> = colperm.iter().map(|&c| colmatch[c]).collect();

        // Per-block AMD: reorder each diagonal block's local subpattern
        // for fill, applying the same local permutation to the row and
        // column segments (keeps matched pairs together, so the
        // diagonal stays zero-free and the envelope stays triangular).
        let mut cpos = vec![0usize; n];
        for (k, &c) in colperm.iter().enumerate() {
            cpos[c] = k;
        }
        for b in 0..block_ptr.len() - 1 {
            let (s, e) = (block_ptr[b], block_ptr[b + 1]);
            let bs = e - s;
            if bs < 2 {
                continue;
            }
            let mut entries: Vec<(usize, usize)> = Vec::new();
            for (k, &c) in colperm.iter().enumerate().take(e).skip(s) {
                for &r in &self.row_idx[self.col_ptr[c]..self.col_ptr[c + 1]] {
                    let kk = cpos[rowmatch[r]];
                    if kk >= s && kk < e {
                        entries.push((kk - s, k - s));
                    }
                }
            }
            let local = crate::sparse::SparseMatrix::from_entries(bs, &entries);
            let perm = local.pattern().amd_ordering();
            let old_cols: Vec<usize> = (s..e).map(|k| colperm[k]).collect();
            let old_rows: Vec<usize> = (s..e).map(|k| rowperm[k]).collect();
            for (i, &p) in perm.iter().enumerate() {
                colperm[s + i] = old_cols[p];
                rowperm[s + i] = old_rows[p];
                cpos[old_cols[p]] = s + i;
            }
        }

        Some(BtfOrder { rowperm, colperm, block_ptr })
    }
}

/// A block-triangular preordering of a square sparse pattern: composed
/// row/column permutations plus diagonal-block boundaries.
///
/// Position `k` of the permuted matrix holds original column
/// `colperm[k]`, with original row `rowperm[k]` brought to the
/// diagonal; `P·A·Q` is block upper triangular with diagonal blocks
/// `block_ptr[b]..block_ptr[b+1]`, each carrying a zero-free diagonal
/// and a local fill-reducing ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtfOrder {
    pub(crate) rowperm: Vec<usize>,
    pub(crate) colperm: Vec<usize>,
    pub(crate) block_ptr: Vec<usize>,
}

impl BtfOrder {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.colperm.len()
    }

    /// The composed row permutation: original row `rowperm[k]` sits on
    /// the diagonal at position `k` of the permuted matrix.
    pub fn rowperm(&self) -> &[usize] {
        &self.rowperm
    }

    /// The composed column permutation: position `k` holds original
    /// column `colperm[k]`.
    pub fn colperm(&self) -> &[usize] {
        &self.colperm
    }

    /// Diagonal-block boundaries: block `b` spans permuted positions
    /// `block_ptr()[b]..block_ptr()[b+1]`; always starts with 0 and
    /// ends with `dim()`.
    pub fn block_ptr(&self) -> &[usize] {
        &self.block_ptr
    }

    /// Number of diagonal blocks.
    pub fn block_count(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// Number of diagonal blocks of size ≥ 2 — the blocks that actually
    /// require factorization work (1×1 blocks are scalar divisions).
    pub fn nontrivial_blocks(&self) -> usize {
        (0..self.block_count())
            .filter(|&b| self.block_ptr[b + 1] - self.block_ptr[b] >= 2)
            .count()
    }

    /// Size of the largest diagonal block.
    pub fn largest_block(&self) -> usize {
        (0..self.block_count())
            .map(|b| self.block_ptr[b + 1] - self.block_ptr[b])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::sparse::SparseMatrix;

    fn pattern(n: usize, entries: &[(usize, usize)]) -> SparseMatrix {
        SparseMatrix::from_entries(n, entries)
    }

    #[test]
    fn transversal_on_diagonal_is_identity() {
        let m = pattern(4, &[(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert_eq!(m.pattern().max_transversal(), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn transversal_needs_augmenting_path() {
        // Column 0 can match rows {0,1}; column 1 only row 0; the cheap
        // pass gives row 0 to column 0, forcing an augmenting path.
        let m = pattern(2, &[(0, 0), (1, 0), (0, 1)]);
        let t = m.pattern().max_transversal().expect("structurally nonsingular");
        assert_eq!(t, vec![1, 0]);
    }

    #[test]
    fn transversal_detects_structural_singularity() {
        // Two columns share the single row 0: no complete matching.
        let m = pattern(2, &[(0, 0), (0, 1)]);
        assert_eq!(m.pattern().max_transversal(), None);
        // Empty column.
        let m = pattern(3, &[(0, 0), (1, 1), (0, 2), (1, 2)]);
        assert_eq!(m.pattern().max_transversal(), None);
    }

    #[test]
    fn btf_of_diagonal_is_n_blocks() {
        let m = pattern(5, &[(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
        let b = m.pattern().btf_order().unwrap();
        assert_eq!(b.block_count(), 5);
        assert_eq!(b.nontrivial_blocks(), 0);
        assert_eq!(b.largest_block(), 1);
    }

    #[test]
    fn btf_of_dense_is_one_block() {
        let mut entries = Vec::new();
        for r in 0..4 {
            for c in 0..4 {
                entries.push((r, c));
            }
        }
        let m = pattern(4, &entries);
        let b = m.pattern().btf_order().unwrap();
        assert_eq!(b.block_count(), 1);
        assert_eq!(b.largest_block(), 4);
    }

    #[test]
    fn btf_degenerate_sizes() {
        let b = pattern(0, &[]).pattern().btf_order().unwrap();
        assert_eq!(b.block_count(), 0);
        assert_eq!(b.dim(), 0);
        let b = pattern(1, &[(0, 0)]).pattern().btf_order().unwrap();
        assert_eq!(b.block_count(), 1);
        assert_eq!(b.block_ptr(), &[0, 1]);
    }

    #[test]
    fn btf_layout_is_block_upper_triangular() {
        // Lower block triangular input: two coupled 2x2 blocks, block
        // {2,3} feeding block {0,1} through entry (2,1) — BTF must flip
        // the layout so couplings land above the diagonal blocks.
        let m = pattern(
            4,
            &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 1), (2, 2), (2, 3), (3, 2), (3, 3)],
        );
        let b = m.pattern().btf_order().unwrap();
        assert_eq!(b.block_count(), 2);
        assert_eq!(b.nontrivial_blocks(), 2);
        // Every entry of the permuted matrix must sit at or above its
        // column's block: for entry (r, c), the block of the permuted
        // row position must be ≤ the block of the permuted column.
        let mut rpos = [0usize; 4];
        for (k, &r) in b.rowperm().iter().enumerate() {
            rpos[r] = k;
        }
        let mut cpos = [0usize; 4];
        for (k, &c) in b.colperm().iter().enumerate() {
            cpos[c] = k;
        }
        let block_of = |k: usize| {
            (0..b.block_count())
                .find(|&x| k >= b.block_ptr()[x] && k < b.block_ptr()[x + 1])
                .unwrap()
        };
        for &(r, c) in
            &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 1), (2, 2), (2, 3), (3, 2), (3, 3)]
        {
            assert!(
                block_of(rpos[r]) <= block_of(cpos[c]),
                "entry ({r},{c}) fell below the block diagonal"
            );
        }
    }

    #[test]
    fn btf_permutations_are_bijections_with_zero_free_diagonal() {
        let m = pattern(
            6,
            &[
                (0, 0),
                (1, 1),
                (0, 1),
                (2, 2),
                (3, 3),
                (2, 3),
                (3, 2),
                (1, 4),
                (4, 4),
                (5, 5),
                (4, 5),
            ],
        );
        let p = m.pattern();
        let b = p.btf_order().unwrap();
        let mut seen_r = [false; 6];
        let mut seen_c = [false; 6];
        for k in 0..6 {
            assert!(!seen_r[b.rowperm()[k]]);
            assert!(!seen_c[b.colperm()[k]]);
            seen_r[b.rowperm()[k]] = true;
            seen_c[b.colperm()[k]] = true;
            // Diagonal position k must be a structural entry.
            let c = b.colperm()[k];
            let r = b.rowperm()[k];
            assert!(
                p.row_idx[p.col_ptr[c]..p.col_ptr[c + 1]].contains(&r),
                "permuted diagonal {k} = original ({r},{c}) is not structural"
            );
        }
    }
}
