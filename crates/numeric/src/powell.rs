//! Powell's direction-set minimization with rectangular bounds.
//!
//! The paper optimizes multi-parameter test configurations with Powell's
//! method (per F. S. Acton, *Numerical Methods that Work*, pp. 264–267),
//! using Brent's method to explore the one-dimensional search directions.
//! Bounds are honoured by restricting every line search to the feasible
//! segment of the search line, so the objective is never evaluated outside
//! the parameter constraints (§3.1 of the paper requires this).

use crate::{brent_min, BrentOptions, ParamSpace};

/// Options controlling [`powell_min`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowellOptions {
    /// Relative tolerance on the objective decrease per outer iteration.
    pub ftol: f64,
    /// Maximum number of outer iterations (full direction sweeps).
    pub max_iter: usize,
    /// Options for the inner Brent line searches.
    pub line: BrentOptions,
}

impl Default for PowellOptions {
    fn default() -> Self {
        PowellOptions {
            ftol: 1e-6,
            max_iter: 40,
            line: BrentOptions { tol: 1e-6, max_iter: 60 },
        }
    }
}

/// Result of a Powell minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct PowellResult {
    /// Location of the located minimum (always inside the bounds).
    pub x: Vec<f64>,
    /// Objective value at [`PowellResult::x`].
    pub value: f64,
    /// Total number of objective evaluations.
    pub evaluations: usize,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Minimizes `f` over the rectangular domain `space`, starting from `x0`.
///
/// Directions are maintained in the *normalized* unit-cube coordinates of
/// the domain so that parameters with wildly different magnitudes (e.g.
/// amperes vs. hertz) are search-conditioned equally. The classic Powell
/// update replaces the direction of largest decrease with the overall
/// displacement direction after each sweep; directions are reset to the
/// coordinate axes when they threaten to become linearly dependent.
///
/// Non-finite objective values are treated as `+inf` (see [`brent_min`]).
///
/// # Panics
///
/// Panics if `x0` has a different dimension than `space` or lies outside
/// it (callers should clamp first — a seed outside the constraint box is
/// a configuration bug worth failing loudly on).
///
/// # Example
///
/// ```
/// use castg_numeric::{powell_min, Bounds, ParamSpace, PowellOptions};
///
/// let space = ParamSpace::new(vec![
///     Bounds::new(-5.0, 5.0)?,
///     Bounds::new(-5.0, 5.0)?,
/// ]);
/// // Shifted quadratic bowl with minimum at (1, -2).
/// let f = |x: &[f64]| (x[0] - 1.0).powi(2) + 2.0 * (x[1] + 2.0).powi(2);
/// let r = powell_min(f, &[0.0, 0.0], &space, &PowellOptions::default());
/// assert!((r.x[0] - 1.0).abs() < 1e-4);
/// assert!((r.x[1] + 2.0).abs() < 1e-4);
/// # Ok::<(), castg_numeric::NumericError>(())
/// ```
pub fn powell_min<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    space: &ParamSpace,
    opts: &PowellOptions,
) -> PowellResult {
    let n = space.dim();
    assert_eq!(x0.len(), n, "seed dimension {} != space dimension {n}", x0.len());
    assert!(space.contains(x0), "seed {x0:?} lies outside the parameter bounds");

    let mut evaluations = 0usize;
    // Work in normalized coordinates; evaluate in physical coordinates.
    let unit = ParamSpace::new(
        (0..n).map(|_| crate::Bounds::new(0.0, 1.0).expect("unit bounds")).collect(),
    );
    let mut eval_unit = |u: &[f64]| {
        evaluations += 1;
        let v = f(&space.denormalize(u));
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    let mut x = space.normalize(x0);
    let mut fx = eval_unit(&x);
    if n == 0 {
        return PowellResult { x: x0.to_vec(), value: fx, evaluations, iterations: 0, converged: true };
    }

    // Initial directions: the coordinate axes of the unit cube.
    let mut dirs: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();

    let mut iterations = 0usize;
    for iter in 0..opts.max_iter {
        iterations = iter + 1;
        let x_start = x.clone();
        let f_start = fx;
        let mut biggest_drop = 0.0_f64;
        let mut biggest_dir = 0usize;

        for (idx, d) in dirs.iter().enumerate() {
            let f_before = fx;
            let (x_new, f_new) = line_minimize(&mut eval_unit, &unit, &x, d, fx, &opts.line);
            x = x_new;
            fx = f_new;
            if f_before - fx > biggest_drop {
                biggest_drop = f_before - fx;
                biggest_dir = idx;
            }
        }

        // Convergence: relative decrease of the whole sweep.
        if 2.0 * (f_start - fx).abs() <= opts.ftol * (f_start.abs() + fx.abs()) + 1e-25 {
            return PowellResult {
                x: space.denormalize(&x),
                value: fx,
                evaluations,
                iterations,
                converged: true,
            };
        }

        // Powell's update: try the average displacement direction.
        let disp: Vec<f64> = x.iter().zip(&x_start).map(|(a, b)| a - b).collect();
        let disp_norm: f64 = disp.iter().map(|v| v * v).sum::<f64>().sqrt();
        if disp_norm > 1e-14 {
            // Extrapolated point x + disp (clamped into the cube).
            let x_e: Vec<f64> =
                x.iter().zip(&disp).map(|(a, d)| (a + d).clamp(0.0, 1.0)).collect();
            let f_e = eval_unit(&x_e);
            if f_e < f_start {
                // Acton/NR criterion for replacing a direction.
                let t = 2.0 * (f_start - 2.0 * fx + f_e)
                    * (f_start - fx - biggest_drop).powi(2)
                    - biggest_drop * (f_start - f_e).powi(2);
                if t < 0.0 {
                    let d_new: Vec<f64> = disp.iter().map(|v| v / disp_norm).collect();
                    let (x_new, f_new) =
                        line_minimize(&mut eval_unit, &unit, &x, &d_new, fx, &opts.line);
                    x = x_new;
                    fx = f_new;
                    dirs.remove(biggest_dir);
                    dirs.push(d_new);
                }
            }
        }

        // Re-orthogonalize periodically to avoid degenerate direction sets.
        if (iter + 1) % (2 * n.max(1)) == 0 {
            for (i, d) in dirs.iter_mut().enumerate() {
                for (j, v) in d.iter_mut().enumerate() {
                    *v = if i == j { 1.0 } else { 0.0 };
                }
            }
        }
    }

    PowellResult { x: space.denormalize(&x), value: fx, evaluations, iterations, converged: false }
}

/// One bounded line minimization: Brent over the feasible `t`-segment of
/// `x + t·d`. Returns the (possibly unchanged) point and value.
fn line_minimize<F: FnMut(&[f64]) -> f64>(
    eval: &mut F,
    space: &ParamSpace,
    x: &[f64],
    d: &[f64],
    fx: f64,
    line_opts: &BrentOptions,
) -> (Vec<f64>, f64) {
    let Some((t_lo, t_hi)) = space.line_extent(x, d) else {
        return (x.to_vec(), fx);
    };
    if t_hi - t_lo < 1e-14 {
        return (x.to_vec(), fx);
    }
    let m = brent_min(
        |t| {
            let p: Vec<f64> =
                x.iter().zip(d).map(|(xi, di)| (xi + t * di).clamp(0.0, 1.0)).collect();
            eval(&p)
        },
        t_lo,
        t_hi,
        line_opts,
    );
    if m.value < fx {
        let p: Vec<f64> =
            x.iter().zip(d).map(|(xi, di)| (xi + m.x * di).clamp(0.0, 1.0)).collect();
        (p, m.value)
    } else {
        (x.to_vec(), fx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bounds;

    fn cube(n: usize, lo: f64, hi: f64) -> ParamSpace {
        ParamSpace::new((0..n).map(|_| Bounds::new(lo, hi).unwrap()).collect())
    }

    #[test]
    fn minimizes_sphere() {
        let space = cube(3, -10.0, 10.0);
        let r = powell_min(
            |x| x.iter().map(|v| v * v).sum(),
            &[5.0, -7.0, 2.0],
            &space,
            &PowellOptions::default(),
        );
        assert!(r.converged);
        for xi in &r.x {
            assert!(xi.abs() < 1e-3, "{:?}", r.x);
        }
    }

    #[test]
    fn minimizes_rosenbrock() {
        let space = cube(2, -2.0, 2.0);
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let opts = PowellOptions { max_iter: 200, ..PowellOptions::default() };
        let r = powell_min(rosen, &[-1.2, 1.0], &space, &opts);
        assert!(r.value < 1e-4, "value {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 0.05, "{:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 0.05, "{:?}", r.x);
    }

    #[test]
    fn respects_bounds_when_minimum_is_outside() {
        // Unconstrained minimum at (8, 8); box caps at 5.
        let space = cube(2, 0.0, 5.0);
        let f = |x: &[f64]| (x[0] - 8.0).powi(2) + (x[1] - 8.0).powi(2);
        let r = powell_min(f, &[1.0, 1.0], &space, &PowellOptions::default());
        assert!((r.x[0] - 5.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] - 5.0).abs() < 1e-4, "{:?}", r.x);
        assert!(space.contains(&r.x));
    }

    #[test]
    fn never_evaluates_outside_bounds() {
        let space = cube(2, -1.0, 1.0);
        let r = powell_min(
            |x| {
                assert!(
                    x.iter().all(|v| (-1.0 - 1e-9..=1.0 + 1e-9).contains(v)),
                    "evaluated outside box: {x:?}"
                );
                (x[0] - 0.3).powi(2) + (x[1] + 0.4).powi(2)
            },
            &[0.0, 0.0],
            &space,
            &PowellOptions::default(),
        );
        assert!((r.x[0] - 0.3).abs() < 1e-4);
    }

    #[test]
    fn handles_anisotropic_scaling() {
        // One parameter in microamps, one in hertz — like config #3.
        let space = ParamSpace::new(vec![
            Bounds::new(0.0, 40e-6).unwrap(),
            Bounds::new(1e3, 100e3).unwrap(),
        ]);
        let f = |x: &[f64]| {
            let a = (x[0] - 25e-6) / 40e-6;
            let b = (x[1] - 60e3) / 99e3;
            a * a + b * b
        };
        let r = powell_min(f, &[10e-6, 10e3], &space, &PowellOptions::default());
        assert!((r.x[0] - 25e-6).abs() < 1e-7, "{:?}", r.x);
        assert!((r.x[1] - 60e3).abs() < 500.0, "{:?}", r.x);
    }

    #[test]
    fn one_dimensional_space_degenerates_to_line_search() {
        let space = cube(1, -4.0, 4.0);
        let r = powell_min(|x| (x[0] + 3.0).powi(2), &[0.0], &space, &PowellOptions::default());
        assert!((r.x[0] + 3.0).abs() < 1e-5);
    }

    #[test]
    fn survives_nan_regions() {
        let space = cube(2, -2.0, 2.0);
        let f = |x: &[f64]| {
            if x[0] > 1.5 {
                f64::NAN
            } else {
                (x[0] - 1.0).powi(2) + x[1].powi(2)
            }
        };
        let r = powell_min(f, &[-1.0, 1.0], &space, &PowellOptions::default());
        assert!(r.value.is_finite());
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    #[should_panic(expected = "outside the parameter bounds")]
    fn rejects_seed_outside_bounds() {
        let space = cube(2, 0.0, 1.0);
        powell_min(|x| x[0], &[2.0, 0.5], &space, &PowellOptions::default());
    }

    #[test]
    fn reports_evaluation_count() {
        let space = cube(2, -1.0, 1.0);
        let r = powell_min(
            |x| x[0] * x[0] + x[1] * x[1],
            &[0.5, 0.5],
            &space,
            &PowellOptions::default(),
        );
        assert!(r.evaluations > 0);
        assert!(r.iterations >= 1);
    }
}
