use std::fmt;
use std::ops::{Index, IndexMut};

use crate::NumericError;

/// A dense, row-major matrix of `f64` values.
///
/// The modified-nodal-analysis matrices produced by the circuit simulator
/// are small (tens of unknowns), so a dense representation with an
/// in-place LU factorization is both simpler and faster than a sparse one.
///
/// # Example
///
/// ```
/// use castg_numeric::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// assert_eq!(m[(0, 0)], 2.0);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.clone() }
    }

    /// Reuses the existing storage when the element counts match, so
    /// hot loops can refresh a scratch matrix without reallocating.
    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        self.data.clone_from(&source.data);
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resets every entry to zero, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `value` to the entry at `(row, col)`.
    ///
    /// This is the natural operation for MNA stamping, where several
    /// devices contribute to the same matrix position.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self[(row, col)] += value;
    }

    /// Computes `self * x` for a vector `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch { expected: self.cols, actual: x.len() });
        }
        let mut y = vec![0.0; self.rows];
        if self.cols > 0 {
            for (yi, row) in y.iter_mut().zip(self.data.chunks_exact(self.cols)) {
                *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
            }
        }
        Ok(y)
    }

    /// Returns the maximum absolute entry (the max-norm), or zero for an
    /// empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Returns a view of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major storage, for in-crate kernels that stride it flat.
    #[inline]
    pub(crate) fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major storage, for in-crate kernels.
    #[inline]
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_index() {
        let mut m = Matrix::zeros(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        m[(2, 1)] = 5.0;
        assert_eq!(m[(2, 1)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_builds_expected_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn add_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add(0, 0, 1.5);
        m.add(0, 0, 2.5);
        assert_eq!(m[(0, 0)], 4.0);
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let y = m.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn clone_from_reuses_storage_and_copies_contents() {
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut dst = Matrix::zeros(2, 2);
        dst.clone_from(&src);
        assert_eq!(dst, src);
        // Dimension changes are handled too.
        let mut small = Matrix::zeros(1, 1);
        small.clone_from(&src);
        assert_eq!(small, src);
    }

    #[test]
    fn mul_vec_rejects_wrong_dimension() {
        let m = Matrix::zeros(2, 3);
        let err = m.mul_vec(&[1.0]).unwrap_err();
        assert_eq!(err, NumericError::DimensionMismatch { expected: 3, actual: 1 });
    }

    #[test]
    fn max_abs_finds_largest_magnitude() {
        let m = Matrix::from_rows(&[&[1.0, -9.0], &[3.0, 4.0]]);
        assert_eq!(m.max_abs(), 9.0);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.clear();
        assert_eq!(m.max_abs(), 0.0);
    }

    #[test]
    fn display_contains_every_entry() {
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let s = m.to_string();
        assert!(s.contains("1.0"));
        assert!(s.contains("2.0"));
    }
}
