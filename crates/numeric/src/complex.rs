//! Minimal complex arithmetic and a complex-valued LU solver for AC
//! (small-signal) circuit analysis.
//!
//! The AC system `(G + jωC)·x = b` is dense and small, mirroring the
//! real-valued MNA system, so the solver mirrors [`crate::LuFactors`].

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

use crate::NumericError;

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + j·im`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real value.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Magnitude `|z|`.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase in radians.
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Complex {
        Complex { re: self.re, im: -self.im }
    }

    /// Whether both parts are finite.
    pub fn is_finite(&self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, o: Complex) -> Complex {
        // Smith's algorithm avoids overflow for extreme magnitudes.
        if o.re.abs() >= o.im.abs() {
            let r = o.im / o.re;
            let d = o.re + o.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = o.re / o.im;
            let d = o.re * r + o.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

/// A dense row-major complex matrix with in-place LU solving, used for
/// the AC MNA system.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        CMatrix { n, data: vec![Complex::ZERO; n * n] }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Complex {
        assert!(r < self.n && c < self.n);
        self.data[r * self.n + c]
    }

    /// Adds `v` to entry `(r, c)` (MNA stamping).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn add(&mut self, r: usize, c: usize, v: Complex) {
        assert!(r < self.n && c < self.n);
        self.data[r * self.n + c] += v;
    }

    /// Resets every entry to zero, keeping the allocation — so one
    /// matrix can be refilled and re-solved per frequency point.
    pub fn clear(&mut self) {
        self.data.fill(Complex::ZERO);
    }

    /// Solves `A·x = b` in place by LU with partial pivoting (consumes
    /// the matrix).
    ///
    /// # Errors
    ///
    /// [`NumericError::SingularMatrix`] when no usable pivot exists;
    /// [`NumericError::DimensionMismatch`] for a wrong-sized `b`.
    pub fn solve(mut self, b: &[Complex]) -> Result<Vec<Complex>, NumericError> {
        let n = self.n;
        if b.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: b.len() });
        }
        let mut x: Vec<Complex> = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves `A·x = rhs` where `rhs` enters holding the right-hand side
    /// and exits holding the solution. Destroys the matrix contents
    /// (callers [`clear`](CMatrix::clear) and refill for the next
    /// system), but keeps every allocation — this is the hot path of
    /// the AC frequency sweep.
    ///
    /// # Errors
    ///
    /// [`NumericError::SingularMatrix`] when no usable pivot exists;
    /// [`NumericError::DimensionMismatch`] for a wrong-sized `rhs`.
    pub fn solve_in_place(&mut self, rhs: &mut [Complex]) -> Result<(), NumericError> {
        let n = self.n;
        if rhs.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: rhs.len() });
        }
        let x = rhs;
        // Elimination with partial pivoting on |pivot|.
        for k in 0..n {
            let mut p = k;
            let mut best = self.get(k, k).abs();
            for i in k + 1..n {
                let m = self.get(i, k).abs();
                if m > best {
                    best = m;
                    p = i;
                }
            }
            if !(best.is_finite()) || best < 1e-300 {
                return Err(NumericError::SingularMatrix { pivot: k });
            }
            if p != k {
                for c in 0..n {
                    self.data.swap(k * n + c, p * n + c);
                }
                x.swap(k, p);
            }
            let pivot = self.get(k, k);
            for i in k + 1..n {
                let f = self.get(i, k) / pivot;
                if f.abs() == 0.0 {
                    continue;
                }
                for c in k..n {
                    let v = self.get(k, c) * f;
                    self.data[i * n + c] = self.data[i * n + c] - v;
                }
                x[i] = x[i] - x[k] * f;
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (c, xc) in x.iter().enumerate().skip(i + 1) {
                acc = acc - self.get(i, c) * *xc;
            }
            x[i] = acc / self.get(i, i);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert!(approx(z * Complex::ONE, z, 1e-15));
        assert!(approx(z + Complex::ZERO, z, 1e-15));
        assert!(approx(z / z, Complex::ONE, 1e-12));
        assert!(approx(Complex::J * Complex::J, -Complex::ONE, 1e-15));
        assert!(approx(z.conj().conj(), z, 1e-15));
    }

    #[test]
    fn division_extreme_magnitudes() {
        let a = Complex::new(1e200, 1e200);
        let b = Complex::new(1e200, -1e200);
        let q = a / b;
        assert!(q.is_finite());
        assert!(approx(q, Complex::new(0.0, 1.0), 1e-12), "{q:?}");
    }

    #[test]
    fn solves_complex_2x2() {
        // (1+j)x + 2y = 5+3j ; 3x + (1-j)y = 4
        let mut m = CMatrix::zeros(2);
        m.add(0, 0, Complex::new(1.0, 1.0));
        m.add(0, 1, Complex::real(2.0));
        m.add(1, 0, Complex::real(3.0));
        m.add(1, 1, Complex::new(1.0, -1.0));
        let b = [Complex::new(5.0, 3.0), Complex::real(4.0)];
        let m2 = m.clone();
        let x = m.solve(&b).unwrap();
        // Verify by substitution.
        for (r, br) in b.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (c, xc) in x.iter().enumerate() {
                acc += m2.get(r, c) * *xc;
            }
            assert!(approx(acc, *br, 1e-12), "row {r}: {acc:?} vs {br:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut m = CMatrix::zeros(2);
        m.add(0, 1, Complex::ONE);
        m.add(1, 0, Complex::ONE);
        let x = m.solve(&[Complex::real(2.0), Complex::real(3.0)]).unwrap();
        assert!(approx(x[0], Complex::real(3.0), 1e-12));
        assert!(approx(x[1], Complex::real(2.0), 1e-12));
    }

    #[test]
    fn cleared_matrix_is_reusable_in_place() {
        // Two systems through one matrix allocation, as the AC sweep
        // does per frequency point.
        let mut m = CMatrix::zeros(2);
        m.add(0, 0, Complex::real(2.0));
        m.add(1, 1, Complex::real(4.0));
        let mut x = [Complex::real(2.0), Complex::real(8.0)];
        m.solve_in_place(&mut x).unwrap();
        assert!(approx(x[0], Complex::real(1.0), 1e-12));
        assert!(approx(x[1], Complex::real(2.0), 1e-12));

        m.clear();
        m.add(0, 1, Complex::ONE);
        m.add(1, 0, Complex::ONE);
        let mut y = [Complex::real(5.0), Complex::real(6.0)];
        m.solve_in_place(&mut y).unwrap();
        assert!(approx(y[0], Complex::real(6.0), 1e-12));
        assert!(approx(y[1], Complex::real(5.0), 1e-12));
    }

    #[test]
    fn solve_in_place_rejects_wrong_rhs_length() {
        let mut m = CMatrix::zeros(2);
        m.add(0, 0, Complex::ONE);
        m.add(1, 1, Complex::ONE);
        let mut short = [Complex::ZERO];
        assert!(matches!(
            m.solve_in_place(&mut short),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn singular_matrix_rejected() {
        let m = CMatrix::zeros(2);
        assert!(matches!(
            m.solve(&[Complex::ZERO, Complex::ZERO]),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let m = CMatrix::zeros(2);
        assert!(matches!(
            m.solve(&[Complex::ZERO]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rc_divider_impedance() {
        // Series R with shunt C: v_out/v_in = (1/jwC)/(R + 1/jwC).
        // At w = 1/(RC): |H| = 1/sqrt(2).
        let r = 1e3;
        let c = 1e-9;
        let w = 1.0 / (r * c);
        // MNA: node equation (1/R + jwC) v = (1/R) vin
        let mut m = CMatrix::zeros(1);
        m.add(0, 0, Complex::new(1.0 / r, w * c));
        let x = m.solve(&[Complex::real(1.0 / r)]).unwrap();
        assert!((x[0].abs() - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((x[0].arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }
}
