//! Brent's derivative-free one-dimensional minimization.
//!
//! The paper optimizes single-parameter test configurations with Brent's
//! method (R. P. Brent, *Algorithms for Minimization without Derivatives*,
//! 1973, ch. 5) and uses the same routine for the line searches inside
//! Powell's method.

/// Result of a one-dimensional minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// Abscissa of the located minimum.
    pub x: f64,
    /// Objective value at [`Minimum::x`].
    pub value: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Options controlling [`brent_min`] and [`golden_section_min`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrentOptions {
    /// Relative tolerance on the abscissa. Should be no smaller than the
    /// square root of machine epsilon (~1.5e-8) — below that the parabola
    /// fits are dominated by rounding noise.
    pub tol: f64,
    /// Hard cap on iterations.
    pub max_iter: usize,
}

impl Default for BrentOptions {
    fn default() -> Self {
        // sqrt(machine eps) is the classical floor for Brent's tolerance.
        BrentOptions { tol: 3e-8, max_iter: 100 }
    }
}

const GOLDEN: f64 = 0.381_966_011_250_105_1; // (3 - sqrt(5)) / 2
const TINY: f64 = 1e-21;

/// Minimizes `f` over the closed interval `[a, b]` with Brent's method.
///
/// The routine combines golden-section steps (guaranteed linear
/// convergence) with parabolic interpolation (superlinear near a smooth
/// minimum) and never evaluates outside `[a, b]`. Non-finite objective
/// values are treated as `+inf`, so the minimizer simply avoids those
/// regions — the circuit simulator occasionally fails to converge for
/// grossly faulted circuits and this keeps the search robust.
///
/// # Panics
///
/// Panics if `a > b` or either bound is non-finite.
///
/// # Example
///
/// ```
/// use castg_numeric::{brent_min, BrentOptions};
///
/// let m = brent_min(|x| x * x * (x - 1.0), 0.2, 2.0, &BrentOptions::default());
/// assert!((m.x - 2.0 / 3.0).abs() < 1e-7); // local minimum of x^3 - x^2
/// ```
pub fn brent_min<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, opts: &BrentOptions) -> Minimum {
    assert!(a.is_finite() && b.is_finite() && a <= b, "invalid interval [{a}, {b}]");
    let mut evaluations = 0usize;
    let mut eval = |x: f64| {
        evaluations += 1;
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    let (mut lo, mut hi) = (a, b);
    let mut x = lo + GOLDEN * (hi - lo);
    let mut w = x;
    let mut v = x;
    let mut fx = eval(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut d = 0.0_f64;
    let mut e = 0.0_f64; // step taken two iterations ago

    for _ in 0..opts.max_iter {
        let m = 0.5 * (lo + hi);
        let tol1 = opts.tol * x.abs() + TINY;
        let tol2 = 2.0 * tol1;
        if (x - m).abs() <= tol2 - 0.5 * (hi - lo) {
            return Minimum { x, value: fx, evaluations, converged: true };
        }

        let mut use_golden = true;
        if e.abs() > tol1 {
            // Fit a parabola through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let q0 = (x - v) * (fx - fw);
            let mut p = (x - v) * q0 - (x - w) * r;
            let mut q = 2.0 * (q0 - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_prev = e;
            e = d;
            // Accept the parabolic step only if it falls inside the
            // interval and represents less than half the step before last.
            if p.abs() < (0.5 * q * e_prev).abs() && p > q * (lo - x) && p < q * (hi - x) {
                d = p / q;
                let u = x + d;
                if (u - lo) < tol2 || (hi - u) < tol2 {
                    d = if m > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x < m { hi - x } else { lo - x };
            d = GOLDEN * e;
        }

        let u = if d.abs() >= tol1 { x + d } else { x + if d > 0.0 { tol1 } else { -tol1 } };
        let fu = eval(u);

        if fu <= fx {
            if u < x {
                hi = x;
            } else {
                lo = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    Minimum { x, value: fx, evaluations, converged: false }
}

/// Pure golden-section minimization over `[a, b]`.
///
/// Slower than [`brent_min`] but immune to pathological parabola fits;
/// used as a cross-check in tests and available to callers that prefer
/// the guaranteed reduction rate.
///
/// # Panics
///
/// Panics if `a > b` or either bound is non-finite.
pub fn golden_section_min<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    opts: &BrentOptions,
) -> Minimum {
    assert!(a.is_finite() && b.is_finite() && a <= b, "invalid interval [{a}, {b}]");
    let mut evaluations = 0usize;
    let mut eval = |x: f64| {
        evaluations += 1;
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };
    let (mut lo, mut hi) = (a, b);
    let mut x1 = lo + GOLDEN * (hi - lo);
    let mut x2 = hi - GOLDEN * (hi - lo);
    let mut f1 = eval(x1);
    let mut f2 = eval(x2);
    for _ in 0..opts.max_iter {
        if (hi - lo).abs() <= opts.tol * (x1.abs() + x2.abs()).max(1.0) {
            break;
        }
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = lo + GOLDEN * (hi - lo);
            f1 = eval(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = hi - GOLDEN * (hi - lo);
            f2 = eval(x2);
        }
    }
    if f1 < f2 {
        Minimum { x: x1, value: f1, evaluations, converged: true }
    } else {
        Minimum { x: x2, value: f2, evaluations, converged: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_quadratic_minimum() {
        let m = brent_min(|x| (x - 3.0).powi(2), -10.0, 10.0, &BrentOptions::default());
        assert!(m.converged);
        assert!((m.x - 3.0).abs() < 1e-7);
    }

    #[test]
    fn finds_minimum_at_interval_edge() {
        // Monotone decreasing on the interval: minimum is at the right edge.
        let m = brent_min(|x| -x, 0.0, 1.0, &BrentOptions::default());
        assert!((m.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn handles_non_smooth_objective() {
        let m = brent_min(|x: f64| (x - 0.7).abs(), 0.0, 2.0, &BrentOptions::default());
        assert!((m.x - 0.7).abs() < 1e-6);
    }

    #[test]
    fn treats_nan_as_infinite() {
        // NaN pocket in the middle; minimum at x = 1.5 is still found.
        let m = brent_min(
            |x: f64| if (0.2..0.4).contains(&x) { f64::NAN } else { (x - 1.5).powi(2) },
            0.0,
            2.0,
            &BrentOptions::default(),
        );
        assert!((m.x - 1.5).abs() < 1e-6);
        assert!(m.value.is_finite());
    }

    #[test]
    fn respects_iteration_cap() {
        let opts = BrentOptions { tol: 1e-15, max_iter: 3 };
        let m = brent_min(|x| (x - 3.0).powi(2), -1e6, 1e6, &opts);
        assert!(!m.converged);
        assert!(m.evaluations <= 6);
    }

    #[test]
    fn golden_section_agrees_with_brent() {
        let opts = BrentOptions::default();
        let f = |x: f64| (x - 1.2).powi(4) + 0.5 * x;
        let b = brent_min(f, -4.0, 4.0, &opts);
        let g = golden_section_min(f, -4.0, 4.0, &opts);
        assert!((b.x - g.x).abs() < 1e-4, "brent {} vs golden {}", b.x, g.x);
    }

    #[test]
    fn brent_uses_fewer_evaluations_than_golden_on_smooth_function() {
        let f = |x: f64| (x - 0.321).powi(2) + 1.0;
        let opts = BrentOptions { tol: 1e-10, max_iter: 200 };
        let b = brent_min(f, -10.0, 10.0, &opts);
        let g = golden_section_min(f, -10.0, 10.0, &opts);
        assert!(b.evaluations < g.evaluations, "{} !< {}", b.evaluations, g.evaluations);
    }

    #[test]
    fn never_evaluates_outside_interval() {
        let (lo, hi) = (-0.5, 0.25);
        brent_min(
            |x| {
                assert!((lo..=hi).contains(&x), "evaluated at {x}");
                x.sin()
            },
            lo,
            hi,
            &BrentOptions::default(),
        );
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn rejects_inverted_interval() {
        brent_min(|x| x, 1.0, 0.0, &BrentOptions::default());
    }

    #[test]
    fn degenerate_interval_returns_the_point() {
        let m = brent_min(|x| x * x, 2.0, 2.0, &BrentOptions::default());
        assert_eq!(m.x, 2.0);
        assert_eq!(m.value, 4.0);
    }
}
