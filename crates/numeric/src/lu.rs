use crate::{Matrix, NumericError};

/// Pivots with absolute value below this threshold are treated as zero.
const PIVOT_EPS: f64 = 1e-300;

/// The shared elimination kernel behind [`LuFactors`] and
/// [`LuWorkspace`]: factors `a` in place (packed `L`/`U`, unit lower
/// diagonal implicit), filling `perm` with the row permutation and
/// returning its sign. `pivot_buf` is caller-provided scratch so
/// repeated factorizations allocate nothing.
fn factor_core(
    a: &mut Matrix,
    perm: &mut Vec<usize>,
    pivot_buf: &mut Vec<f64>,
) -> Result<f64, NumericError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(NumericError::DimensionMismatch { expected: n, actual: a.cols() });
    }
    perm.clear();
    perm.extend(0..n);
    let mut perm_sign = 1.0;

    // The kernel strides the raw row-major storage: MNA systems are
    // small (tens of unknowns), so per-element bounds checks and index
    // arithmetic would otherwise be a measurable fraction of the work.
    let d = a.data_mut();
    for k in 0..n {
        // Partial pivoting: bring the largest entry of column k (at or
        // below the diagonal) onto the diagonal.
        let mut pivot_row = k;
        let mut pivot_val = d[k * n + k].abs();
        let mut off = (k + 1) * n + k;
        for i in k + 1..n {
            let v = d[off].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = i;
            }
            off += n;
        }
        if !pivot_val.is_finite() || pivot_val < PIVOT_EPS {
            return Err(NumericError::SingularMatrix { pivot: k });
        }
        if pivot_row != k {
            let (head, tail) = d.split_at_mut(pivot_row * n);
            head[k * n..k * n + n].swap_with_slice(&mut tail[..n]);
            perm.swap(k, pivot_row);
            perm_sign = -perm_sign;
        }

        let pivot_off = k * n + k;
        let inv_pivot = 1.0 / d[pivot_off];
        // One copy of the pivot row per column keeps the row update
        // borrow-checker friendly without unsafe; the O(n) copy is
        // dominated by the O(n^2) elimination work below it.
        pivot_buf.clear();
        pivot_buf.extend_from_slice(&d[pivot_off + 1..k * n + n]);
        let (_, rest) = d.split_at_mut((k + 1) * n);
        for row in rest.chunks_exact_mut(n) {
            let lower = &mut row[k..];
            let factor = lower[0] * inv_pivot;
            lower[0] = factor;
            if factor != 0.0 {
                for (dst, src) in lower[1..].iter_mut().zip(pivot_buf.iter()) {
                    *dst -= factor * src;
                }
            }
        }
    }
    Ok(perm_sign)
}

/// Substitution kernel shared by the solve paths: given packed factors
/// and the permutation, writes the solution of `A·x = b` into `x`.
fn solve_core(lu: &Matrix, perm: &[usize], b: &[f64], x: &mut [f64]) {
    let n = lu.rows();
    if n == 0 {
        return;
    }
    let d = lu.data();
    // Apply permutation: x = P·b, then forward substitution (L has an
    // implicit unit diagonal).
    for (xi, &p) in x.iter_mut().zip(perm) {
        *xi = b[p];
    }
    for (i, row) in d.chunks_exact(n).enumerate().skip(1) {
        let dot: f64 = row[..i].iter().zip(&x[..i]).map(|(l, v)| l * v).sum();
        x[i] -= dot;
    }
    // Backward substitution with U.
    for i in (0..n).rev() {
        let row = &d[i * n..(i + 1) * n];
        let dot: f64 = row[i + 1..].iter().zip(&x[i + 1..]).map(|(u, v)| u * v).sum();
        x[i] = (x[i] - dot) / row[i];
    }
}

/// LU factorization with partial (row) pivoting: `P·A = L·U`.
///
/// This is the linear solver behind every Newton–Raphson iteration of the
/// circuit simulator. The factors are stored packed in a single matrix
/// (unit lower triangle implicit), alongside the row permutation.
///
/// `LuFactors` consumes its input and allocates a fresh solution vector
/// per [`solve`](LuFactors::solve); hot loops that re-factor every
/// iteration should use [`LuWorkspace`], which reuses one matrix, pivot
/// and solution buffer for an entire analysis. Both paths share the same
/// elimination kernel and produce bit-identical results.
///
/// # Example
///
/// ```
/// use castg_numeric::{LuFactors, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = LuFactors::factor(a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), castg_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: Matrix,
    perm: Vec<usize>,
    /// Sign of the permutation; kept so a determinant can be recovered.
    perm_sign: f64,
}

impl LuFactors {
    /// Factors a square matrix, consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for a non-square input
    /// and [`NumericError::SingularMatrix`] when no usable pivot exists in
    /// some column.
    pub fn factor(mut a: Matrix) -> Result<Self, NumericError> {
        let mut perm = Vec::with_capacity(a.rows());
        let mut pivot_buf = Vec::with_capacity(a.rows());
        let perm_sign = factor_core(&mut a, &mut perm, &mut pivot_buf)?;
        Ok(LuFactors { lu: a, perm, perm_sign })
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut x = vec![0.0; self.lu.rows()];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a caller-provided buffer, allocating
    /// nothing.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b` or `x` has the
    /// wrong length.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), NumericError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: b.len() });
        }
        if x.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: x.len() });
        }
        solve_core(&self.lu, &self.perm, b, x);
        Ok(())
    }

    /// Determinant of the original matrix, computed from the factors.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }
}

/// Reusable LU factor/solve state for hot loops.
///
/// A Newton iteration re-assembles and re-factors the same-sized system
/// hundreds of times per analysis. `LuWorkspace` keeps the factor
/// matrix, the permutation, the elimination scratch row and nothing
/// else, so after the first factorization the entire
/// factor-then-solve cycle performs **zero heap allocations**:
///
/// 1. [`factor_in_place`](LuWorkspace::factor_in_place) *swaps* the
///    caller's assembled matrix with the workspace buffer (O(1), no
///    copy) and eliminates in place. The caller gets back an equally
///    sized scratch matrix to re-assemble into next iteration.
/// 2. [`solve_into`](LuWorkspace::solve_into) substitutes into a
///    caller-provided solution buffer.
///
/// The workspace regrows transparently when the system dimension
/// changes between calls. Results are bit-identical to the allocating
/// [`LuFactors`] path — both share one elimination kernel.
///
/// # Example
///
/// ```
/// use castg_numeric::{LuWorkspace, Matrix};
///
/// let mut ws = LuWorkspace::new(2);
/// let mut a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let mut x = vec![0.0; 2];
/// ws.factor_in_place(&mut a)?;
/// ws.solve_into(&[10.0, 12.0], &mut x)?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// // `a` is now a 2×2 scratch buffer, ready to be re-assembled.
/// assert_eq!(a.rows(), 2);
/// # Ok::<(), castg_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuWorkspace {
    lu: Matrix,
    perm: Vec<usize>,
    perm_sign: f64,
    pivot_buf: Vec<f64>,
    factored: bool,
}

impl LuWorkspace {
    /// Creates a workspace pre-sized for `n × n` systems.
    pub fn new(n: usize) -> Self {
        LuWorkspace {
            lu: Matrix::zeros(n, n),
            perm: Vec::with_capacity(n),
            perm_sign: 1.0,
            pivot_buf: Vec::with_capacity(n),
            factored: false,
        }
    }

    /// Factors `a`, taking its storage by swap: afterwards the workspace
    /// holds the factors and `a` holds an `n × n` scratch buffer with
    /// unspecified contents (same allocation the workspace previously
    /// held, regrown if the dimension changed).
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] for a non-square input and
    /// [`NumericError::SingularMatrix`] when elimination finds no usable
    /// pivot; the workspace is left unfactored and the next
    /// [`solve_into`](LuWorkspace::solve_into) fails cleanly.
    pub fn factor_in_place(&mut self, a: &mut Matrix) -> Result<(), NumericError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: a.cols() });
        }
        std::mem::swap(&mut self.lu, a);
        if a.rows() != n || a.cols() != n {
            // Dimension changed since the last use: regrow the buffer
            // handed back to the caller (one-time cost per change).
            *a = Matrix::zeros(n, n);
        }
        self.factored = false;
        self.perm_sign = factor_core(&mut self.lu, &mut self.perm, &mut self.pivot_buf)?;
        self.factored = true;
        Ok(())
    }

    /// Solves `A·x = b` with the factors of the last successful
    /// [`factor_in_place`](LuWorkspace::factor_in_place), allocating
    /// nothing.
    ///
    /// # Errors
    ///
    /// [`NumericError::NotFactored`] if no factorization is stored (never
    /// factored, or the last attempt failed);
    /// [`NumericError::DimensionMismatch`] for wrong-sized `b` or `x`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), NumericError> {
        if !self.factored {
            return Err(NumericError::NotFactored);
        }
        let n = self.lu.rows();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: b.len() });
        }
        if x.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: x.len() });
        }
        solve_core(&self.lu, &self.perm, b, x);
        Ok(())
    }

    /// Determinant of the last factored matrix.
    ///
    /// # Errors
    ///
    /// [`NumericError::NotFactored`] if no factorization is stored.
    pub fn det(&self) -> Result<f64, NumericError> {
        if !self.factored {
            return Err(NumericError::NotFactored);
        }
        let mut d = self.perm_sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        Ok(d)
    }

    /// Dimension the workspace is currently sized for.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Whether a usable factorization is stored.
    pub fn is_factored(&self) -> bool {
        self.factored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_once(rows: &[&[f64]], b: &[f64]) -> Vec<f64> {
        LuFactors::factor(Matrix::from_rows(rows)).unwrap().solve(b).unwrap()
    }

    #[test]
    fn solves_identity() {
        let x = solve_once(&[&[1.0, 0.0], &[0.0, 1.0]], &[3.0, -4.0]);
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_2x2_requiring_pivot() {
        // Leading zero forces a row swap.
        let x = solve_once(&[&[0.0, 2.0], &[3.0, 1.0]], &[4.0, 5.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solves_3x3_known_system() {
        let x = solve_once(
            &[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]],
            &[8.0, -11.0, -3.0],
        );
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(&expected) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn rejects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = LuFactors::factor(a).unwrap_err();
        assert!(matches!(err, NumericError::SingularMatrix { .. }));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        let err = LuFactors::factor(a).unwrap_err();
        assert!(matches!(err, NumericError::DimensionMismatch { .. }));
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let lu = LuFactors::factor(Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn solve_into_rejects_wrong_out_length() {
        let lu = LuFactors::factor(Matrix::identity(3)).unwrap();
        let mut x = vec![0.0; 2];
        assert!(matches!(
            lu.solve_into(&[1.0, 2.0, 3.0], &mut x),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_of_known_matrix() {
        let lu = LuFactors::factor(Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])).unwrap();
        assert!((lu.det() - (-6.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_survives_pivoting() {
        let lu = LuFactors::factor(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]])).unwrap();
        assert!((lu.det() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn large_random_system_has_small_residual() {
        // Deterministic pseudo-random fill; no rand dependency needed here.
        let n = 25;
        let mut seed = 0x9e3779b97f4a7c15_u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += n as f64; // diagonally dominant => well conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let a_copy = a.clone();
        let x = LuFactors::factor(a).unwrap().solve(&b).unwrap();
        let r = a_copy.mul_vec(&x).unwrap();
        let resid = r.iter().zip(&b).map(|(ri, bi)| (ri - bi).abs()).fold(0.0_f64, f64::max);
        assert!(resid < 1e-10, "residual too large: {resid}");
    }

    #[test]
    fn workspace_matches_factors_bitwise() {
        let a = Matrix::from_rows(&[
            &[2.0, 1.0, -1.0],
            &[-3.0, -1.0, 2.0],
            &[-2.0, 1.0, 2.0],
        ]);
        let b = [8.0, -11.0, -3.0];
        let reference = LuFactors::factor(a.clone()).unwrap().solve(&b).unwrap();

        let mut ws = LuWorkspace::new(3);
        let mut scratch = a;
        let mut x = vec![0.0; 3];
        ws.factor_in_place(&mut scratch).unwrap();
        ws.solve_into(&b, &mut x).unwrap();
        for (got, want) in x.iter().zip(&reference) {
            assert_eq!(got.to_bits(), want.to_bits(), "not bit-identical");
        }
        assert!((ws.det().unwrap() - LuFactors::factor(
            Matrix::from_rows(&[
                &[2.0, 1.0, -1.0],
                &[-3.0, -1.0, 2.0],
                &[-2.0, 1.0, 2.0],
            ])
        ).unwrap().det()).abs() < 1e-15);
    }

    #[test]
    fn workspace_hands_back_usable_scratch() {
        let mut ws = LuWorkspace::new(2);
        let mut a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        ws.factor_in_place(&mut a).unwrap();
        // The swapped-out buffer must be ready for re-assembly.
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
        a.clear();
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 2.0;
        let mut x = vec![0.0; 2];
        ws.factor_in_place(&mut a).unwrap();
        ws.solve_into(&[3.0, 8.0], &mut x).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn workspace_regrows_across_dimension_changes() {
        let mut ws = LuWorkspace::new(2);
        let mut small = Matrix::identity(2);
        ws.factor_in_place(&mut small).unwrap();
        assert_eq!(ws.dim(), 2);

        // Larger system: the workspace must regrow and hand back a
        // matching scratch buffer.
        let mut big = Matrix::identity(5);
        ws.factor_in_place(&mut big).unwrap();
        assert_eq!(ws.dim(), 5);
        assert_eq!(big.rows(), 5);
        assert_eq!(big.cols(), 5);
        let mut x = vec![0.0; 5];
        ws.solve_into(&[1.0, 2.0, 3.0, 4.0, 5.0], &mut x).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0, 5.0]);

        // And shrink back down again.
        let mut small_again = Matrix::identity(3);
        ws.factor_in_place(&mut small_again).unwrap();
        assert_eq!(ws.dim(), 3);
        assert_eq!(small_again.rows(), 3);
    }

    #[test]
    fn workspace_solve_requires_factorization() {
        let ws = LuWorkspace::new(2);
        let mut x = vec![0.0; 2];
        assert!(matches!(ws.solve_into(&[1.0, 2.0], &mut x), Err(NumericError::NotFactored)));
        assert!(matches!(ws.det(), Err(NumericError::NotFactored)));
        assert!(!ws.is_factored());
    }

    #[test]
    fn workspace_failed_factorization_clears_state() {
        let mut ws = LuWorkspace::new(2);
        let mut good = Matrix::identity(2);
        ws.factor_in_place(&mut good).unwrap();
        assert!(ws.is_factored());

        let mut singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(ws.factor_in_place(&mut singular).is_err());
        assert!(!ws.is_factored());
        let mut x = vec![0.0; 2];
        assert!(matches!(ws.solve_into(&[1.0, 2.0], &mut x), Err(NumericError::NotFactored)));
    }

    #[test]
    fn workspace_rejects_non_square() {
        let mut ws = LuWorkspace::new(2);
        let mut rect = Matrix::zeros(2, 3);
        assert!(matches!(
            ws.factor_in_place(&mut rect),
            Err(NumericError::DimensionMismatch { .. })
        ));
        // The rectangular input must be left untouched by the failed call.
        assert_eq!(rect.rows(), 2);
        assert_eq!(rect.cols(), 3);
    }

    #[test]
    fn workspace_solve_rejects_wrong_lengths() {
        let mut ws = LuWorkspace::new(2);
        let mut a = Matrix::identity(2);
        ws.factor_in_place(&mut a).unwrap();
        let mut x2 = vec![0.0; 2];
        let mut x3 = vec![0.0; 3];
        assert!(ws.solve_into(&[1.0], &mut x2).is_err());
        assert!(ws.solve_into(&[1.0, 2.0], &mut x3).is_err());
    }
}
