use crate::{Matrix, NumericError};

/// LU factorization with partial (row) pivoting: `P·A = L·U`.
///
/// This is the linear solver behind every Newton–Raphson iteration of the
/// circuit simulator. The factors are stored packed in a single matrix
/// (unit lower triangle implicit), alongside the row permutation.
///
/// # Example
///
/// ```
/// use castg_numeric::{LuFactors, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = LuFactors::factor(a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), castg_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: Matrix,
    perm: Vec<usize>,
    /// Sign of the permutation; kept so a determinant can be recovered.
    perm_sign: f64,
}

/// Pivots with absolute value below this threshold are treated as zero.
const PIVOT_EPS: f64 = 1e-300;

impl LuFactors {
    /// Factors a square matrix, consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for a non-square input
    /// and [`NumericError::SingularMatrix`] when no usable pivot exists in
    /// some column.
    pub fn factor(mut a: Matrix) -> Result<Self, NumericError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: a.cols() });
        }
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut pivot_buf: Vec<f64> = Vec::with_capacity(n);

        for k in 0..n {
            // Partial pivoting: bring the largest entry of column k (at or
            // below the diagonal) onto the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = a[(k, k)].abs();
            for i in k + 1..n {
                let v = a[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if !pivot_val.is_finite() || pivot_val < PIVOT_EPS {
                return Err(NumericError::SingularMatrix { pivot: k });
            }
            if pivot_row != k {
                a.swap_rows(k, pivot_row);
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }

            let inv_pivot = 1.0 / a[(k, k)];
            // One copy of the pivot row per column keeps the row update
            // borrow-checker friendly without unsafe; the O(n) copy is
            // dominated by the O(n^2) elimination work below it.
            pivot_buf.clear();
            pivot_buf.extend_from_slice(&a.row(k)[k + 1..]);
            for i in k + 1..n {
                let factor = a[(i, k)] * inv_pivot;
                a[(i, k)] = factor;
                if factor != 0.0 {
                    let lower = a.row_mut(i);
                    for (dst, src) in lower[k + 1..].iter_mut().zip(&pivot_buf) {
                        *dst -= factor * src;
                    }
                }
            }
        }
        Ok(LuFactors { lu: a, perm, perm_sign })
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: b.len() });
        }
        // Apply permutation: y = P·b, then forward substitution (L has an
        // implicit unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let row = self.lu.row(i);
            let dot: f64 = row[..i].iter().zip(&x[..i]).map(|(l, v)| l * v).sum();
            x[i] -= dot;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let dot: f64 = row[i + 1..].iter().zip(&x[i + 1..]).map(|(u, v)| u * v).sum();
            x[i] = (x[i] - dot) / row[i];
        }
        Ok(x)
    }

    /// Determinant of the original matrix, computed from the factors.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_once(rows: &[&[f64]], b: &[f64]) -> Vec<f64> {
        LuFactors::factor(Matrix::from_rows(rows)).unwrap().solve(b).unwrap()
    }

    #[test]
    fn solves_identity() {
        let x = solve_once(&[&[1.0, 0.0], &[0.0, 1.0]], &[3.0, -4.0]);
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_2x2_requiring_pivot() {
        // Leading zero forces a row swap.
        let x = solve_once(&[&[0.0, 2.0], &[3.0, 1.0]], &[4.0, 5.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solves_3x3_known_system() {
        let x = solve_once(
            &[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]],
            &[8.0, -11.0, -3.0],
        );
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(&expected) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn rejects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = LuFactors::factor(a).unwrap_err();
        assert!(matches!(err, NumericError::SingularMatrix { .. }));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        let err = LuFactors::factor(a).unwrap_err();
        assert!(matches!(err, NumericError::DimensionMismatch { .. }));
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let lu = LuFactors::factor(Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn determinant_of_known_matrix() {
        let lu = LuFactors::factor(Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])).unwrap();
        assert!((lu.det() - (-6.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_survives_pivoting() {
        let lu = LuFactors::factor(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]])).unwrap();
        assert!((lu.det() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn large_random_system_has_small_residual() {
        // Deterministic pseudo-random fill; no rand dependency needed here.
        let n = 25;
        let mut seed = 0x9e3779b97f4a7c15_u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += n as f64; // diagonally dominant => well conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let a_copy = a.clone();
        let x = LuFactors::factor(a).unwrap().solve(&b).unwrap();
        let r = a_copy.mul_vec(&x).unwrap();
        let resid = r.iter().zip(&b).map(|(ri, bi)| (ri - bi).abs()).fold(0.0_f64, f64::max);
        assert!(resid < 1e-10, "residual too large: {resid}");
    }
}
