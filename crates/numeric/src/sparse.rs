//! Sparse (CSC) matrix storage and LU factorization for large MNA
//! systems.
//!
//! Dense LU is O(n³) and fine for macro-sized netlists (n ≲ 128); the
//! ladder and chain macros used for scaling work push n into the
//! hundreds or thousands, where the MNA matrix is extremely sparse
//! (a handful of entries per row). This module provides the sparse
//! counterpart of [`Matrix`](crate::Matrix) + [`LuWorkspace`](crate::LuWorkspace):
//!
//! * [`SparseMatrix`] — a compressed-sparse-column matrix with a
//!   **fixed sparsity pattern**. The pattern is built once per circuit
//!   (from the stamp plan's slot list) and shared via `Arc`; per Newton
//!   iteration only the values are cleared and re-stamped, so assembly
//!   is O(nnz) instead of the dense path's O(n²) clear.
//! * [`SparseLu`] — a left-looking (Gilbert–Peierls) LU factorization
//!   with threshold partial pivoting. The first factorization performs
//!   the symbolic analysis (depth-first reachability per column, fill
//!   pattern, pivot order); subsequent factorizations of a matrix with
//!   the **same pattern** replay that symbolic skeleton numerically
//!   (a KLU-style *refactorization*), skipping all graph traversal and
//!   pivot search. A refactorization whose recycled pivot turns
//!   numerically unacceptable falls back to a fresh pivoting
//!   factorization transparently.
//!
//! Row indices inside L/U are stored in *pivot order* (the permuted row
//! space), so the triangular solves and the refactorization loop are
//! straight array walks with no indirection through the permutation.
//!
//! # Fill-reducing column ordering
//!
//! Natural MNA order is near-optimal for chain/ladder netlists, but a
//! 2-D mesh or crossbar fills catastrophically under it (a grid of `n`
//! unknowns factored in row-major order produces O(n·√n) fill).
//! [`SparsePattern::amd_ordering`] computes a deterministic approximate
//! minimum degree permutation of the symmetrized pattern, and
//! [`SparseLu::set_ordering`] makes subsequent full factorizations
//! eliminate columns in that order: the factorization computes
//! `P·A·Q = L·U` (row permutation `P` from threshold pivoting with
//! diagonal preference, column pre-ordering `Q`), and
//! [`solve_into`](SparseLu::solve_into) scatters solutions back to
//! original coordinates, so callers never observe the permutation. The
//! ordering travels inside [`SparseSymbolic`] ([`SparseSymbolic::ordering`]),
//! which means seeded workspaces, refactorizations and stability
//! fallbacks all keep factoring under the ordering they were analyzed
//! with — one AMD run per pattern, shared everywhere the skeleton is.
//! With the identity ordering every code path (and every bit of every
//! result) is unchanged from before orderings existed.
//!
//! # Example
//!
//! ```
//! use castg_numeric::{SparseLu, SparseMatrix, StampTarget};
//!
//! // 2×2 system: [[4, 3], [6, 3]] · x = [10, 12]  →  x = [1, 2].
//! let mut a = SparseMatrix::from_entries(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
//! a.add(0, 0, 4.0);
//! a.add(0, 1, 3.0);
//! a.add(1, 0, 6.0);
//! a.add(1, 1, 3.0);
//! let mut lu = SparseLu::new();
//! let mut x = vec![0.0; 2];
//! lu.factor(&a)?;
//! lu.solve_into(&[10.0, 12.0], &mut x)?;
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[1] - 2.0).abs() < 1e-12);
//! # Ok::<(), castg_numeric::NumericError>(())
//! ```

use std::ops::Range;
use std::sync::Arc;

use crate::btf::BtfOrder;
use crate::{Matrix, NumericError};

/// Pivots with absolute value below this threshold are treated as zero
/// (mirrors the dense kernel's convention).
const PIVOT_EPS: f64 = 1e-300;

/// Threshold for preferring the diagonal entry during pivot selection:
/// the diagonal is taken whenever it is within this factor of the
/// column's largest candidate. Diagonal pivots keep the fill pattern of
/// diagonally-dominant MNA systems stable across refactorizations.
const DIAG_PREFERENCE: f64 = 0.1;

/// A refactorization pivot must stay within this factor of its column's
/// largest entry, or the workspace falls back to a fresh pivoting
/// factorization.
const REFACTOR_TOL: f64 = 1e-8;

/// A target that MNA device stamps can be accumulated into.
///
/// Implemented by the dense [`Matrix`](crate::Matrix) and by
/// [`SparseMatrix`]; the circuit simulator's assembly loop is generic
/// over this trait so one compiled stamp plan drives both solver paths.
pub trait StampTarget {
    /// Resets every (structural) entry to zero, keeping the allocation
    /// and, for sparse targets, the pattern.
    fn clear(&mut self);

    /// Adds `value` to the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds — or, for pattern-fixed
    /// sparse targets, not part of the pattern.
    fn add(&mut self, row: usize, col: usize, value: f64);
}

impl StampTarget for Matrix {
    fn clear(&mut self) {
        Matrix::clear(self);
    }

    fn add(&mut self, row: usize, col: usize, value: f64) {
        Matrix::add(self, row, col, value);
    }
}

/// The immutable structure of a [`SparseMatrix`]: dimension plus CSC
/// column pointers and sorted row indices. Shared by `Arc` between the
/// matrix, its clones, and the [`SparseLu`] symbolic analysis, so
/// "same pattern" checks are pointer comparisons.
#[derive(Debug, PartialEq, Eq)]
pub struct SparsePattern {
    pub(crate) n: usize,
    pub(crate) col_ptr: Vec<usize>,
    pub(crate) row_idx: Vec<usize>,
}

impl SparsePattern {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Structural fill density `nnz / n²` (zero for an empty matrix).
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.n * self.n) as f64
    }

    /// Index into the value array for slot `(row, col)`, if the slot is
    /// part of the pattern.
    ///
    /// Assembly fast paths resolve their slots through this once and
    /// then stamp by [`SparseMatrix::values_mut`] index, skipping the
    /// per-add binary search.
    pub fn slot(&self, row: usize, col: usize) -> Option<usize> {
        let lo = self.col_ptr[col];
        let hi = self.col_ptr[col + 1];
        self.row_idx[lo..hi].binary_search(&row).ok().map(|p| lo + p)
    }

    /// Computes a fill-reducing **approximate minimum degree** (AMD)
    /// column ordering for this pattern: `perm[k]` is the original
    /// column eliminated at step `k`.
    ///
    /// The algorithm is the element-absorption minimum-degree family
    /// AMD belongs to, run on the symmetrized graph of `A + Aᵀ`
    /// (diagonal dropped): eliminating a vertex turns its neighborhood
    /// into a quotient-graph *element*, elements reached through the
    /// pivot are absorbed into the new one, and external degrees of the
    /// affected vertices are recomputed by a mark-based union. Ties
    /// break to the smallest vertex index, so the ordering is fully
    /// deterministic. The result is always a valid permutation of
    /// `0..n`, including on degenerate patterns (empty columns, dense
    /// rows, `n ≤ 1`).
    ///
    /// Natural MNA order is near-optimal for chain/ladder netlists;
    /// mesh- and crossbar-like netlists fill catastrophically under it,
    /// and this ordering is what [`SparseLu`] consumes (via
    /// [`SparseLu::set_ordering`]) to keep their factors sparse.
    pub fn amd_ordering(&self) -> Vec<usize> {
        let n = self.n;
        if n <= 1 {
            return (0..n).collect();
        }
        // Symmetrized adjacency A + Aᵀ, diagonal dropped.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in 0..n {
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                let r = self.row_idx[p];
                if r != c {
                    adj[r].push(c);
                    adj[c].push(r);
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }

        // Quotient-graph state: eliminated vertices become elements;
        // a live vertex sees plain neighbors (`adj`) plus the member
        // lists of the elements it belongs to (`var_elems`).
        let mut elems: Vec<Vec<usize>> = Vec::new();
        let mut var_elems: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut alive = vec![true; n];
        let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
        let mut mark = vec![0usize; n];
        let mut generation = 0usize;
        let mut perm = Vec::with_capacity(n);

        // Pivot selection: lazy min-heap on `(degree, vertex)` — the
        // lexicographic order *is* "minimum external degree, ties to
        // the smallest index", so the selection is identical to a
        // linear scan, at O(log n) per operation instead of O(n) per
        // step. Stale entries (eliminated vertices, superseded
        // degrees) are skipped on pop; every degree update pushes a
        // fresh entry.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut queue: BinaryHeap<Reverse<(usize, usize)>> =
            degree.iter().enumerate().map(|(v, &d)| Reverse((d, v))).collect();

        for _ in 0..n {
            let pivot = loop {
                let Reverse((d, v)) = queue.pop().expect("a live vertex remains");
                if alive[v] && degree[v] == d {
                    break v;
                }
            };
            alive[pivot] = false;
            perm.push(pivot);

            // Members of the new element: live neighbors of the pivot,
            // direct and through its absorbed elements.
            generation += 1;
            let mut members: Vec<usize> = Vec::new();
            for &v in &adj[pivot] {
                if alive[v] && mark[v] != generation {
                    mark[v] = generation;
                    members.push(v);
                }
            }
            let absorbed = std::mem::take(&mut var_elems[pivot]);
            for &e in &absorbed {
                for &v in &elems[e] {
                    if alive[v] && mark[v] != generation {
                        mark[v] = generation;
                        members.push(v);
                    }
                }
            }
            members.sort_unstable();
            adj[pivot].clear();

            // Rewire every member: drop the pivot, dead vertices and
            // co-members (now covered by the new element) from its
            // plain adjacency, and replace absorbed elements by the
            // new one. Every live member of an absorbed element is a
            // member of the new element, so the absorbed lists can be
            // freed outright.
            let enew = elems.len();
            for &v in &members {
                adj[v].retain(|&u| alive[u] && mark[u] != generation);
                var_elems[v].retain(|e| !absorbed.contains(e));
                var_elems[v].push(enew);
            }
            for e in absorbed {
                elems[e] = Vec::new();
            }
            elems.push(members.clone());

            // Exact external degrees of the affected vertices.
            for &v in &members {
                generation += 1;
                mark[v] = generation;
                let mut d = 0;
                for &u in &adj[v] {
                    if alive[u] && mark[u] != generation {
                        mark[u] = generation;
                        d += 1;
                    }
                }
                for &e in &var_elems[v] {
                    for &u in &elems[e] {
                        if alive[u] && mark[u] != generation {
                            mark[u] = generation;
                            d += 1;
                        }
                    }
                }
                degree[v] = d;
                queue.push(Reverse((d, v)));
            }
        }
        perm
    }

    /// The pattern extended by the given `(row, col)` slots: identical
    /// content to rebuilding from the union of all slots, built by a
    /// linear merge instead of an O(nnz log nnz) sort. Slots already
    /// present are ignored; when nothing new remains, the existing
    /// `Arc` is returned unchanged (content-equal patterns are
    /// interchangeable — every consumer keys on content, and pointer
    /// sharing only widens symbolic reuse).
    ///
    /// This is the fault-campaign fast path: a bridge delta-stamp adds
    /// at most two off-diagonal slots to a nominal pattern with
    /// thousands.
    ///
    /// # Panics
    ///
    /// Panics if a slot is out of bounds.
    pub fn merged_with(self: &Arc<Self>, extra: &[(usize, usize)]) -> Arc<SparsePattern> {
        let n = self.n;
        let mut add: Vec<(usize, usize)> = extra
            .iter()
            .map(|&(r, c)| {
                assert!(r < n && c < n, "slot ({r},{c}) out of bounds for dim {n}");
                (c, r)
            })
            .filter(|&(c, r)| self.slot(r, c).is_none())
            .collect();
        add.sort_unstable();
        add.dedup();
        if add.is_empty() {
            return Arc::clone(self);
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::with_capacity(self.row_idx.len() + add.len());
        col_ptr.push(0);
        let mut next = add.iter().copied().peekable();
        for c in 0..n {
            let seg = &self.row_idx[self.col_ptr[c]..self.col_ptr[c + 1]];
            let mut s = 0;
            while let Some(&(ac, ar)) = next.peek() {
                if ac != c {
                    break;
                }
                while s < seg.len() && seg[s] < ar {
                    row_idx.push(seg[s]);
                    s += 1;
                }
                row_idx.push(ar);
                next.next();
            }
            row_idx.extend_from_slice(&seg[s..]);
            col_ptr.push(row_idx.len());
        }
        Arc::new(SparsePattern { n, col_ptr, row_idx })
    }
}

/// A square CSC matrix with a fixed, `Arc`-shared sparsity pattern.
///
/// Built once from the full slot list of a circuit's stamp plan;
/// stamping ([`add`](SparseMatrix::add)) binary-searches the (short)
/// column segment, and [`clear`](SparseMatrix::clear) zeroes only the
/// structural nonzeros. Cloning shares the pattern and copies values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    pattern: Arc<SparsePattern>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds an all-zero matrix whose pattern is the union of the
    /// given `(row, col)` slots (duplicates are merged). Every slot
    /// must satisfy `row < n && col < n`.
    ///
    /// # Panics
    ///
    /// Panics if a slot is out of bounds.
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> Self {
        let mut slots: Vec<(usize, usize)> = entries
            .iter()
            .map(|&(r, c)| {
                assert!(r < n && c < n, "slot ({r},{c}) out of bounds for dim {n}");
                (c, r)
            })
            .collect();
        slots.sort_unstable();
        slots.dedup();
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(slots.len());
        for &(c, r) in &slots {
            col_ptr[c + 1] += 1;
            row_idx.push(r);
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        SparseMatrix {
            pattern: Arc::new(SparsePattern { n, col_ptr, row_idx }),
            values: vec![0.0; slots.len()],
        }
    }

    /// Builds an all-zero matrix with an existing (shared) pattern.
    pub fn with_pattern(pattern: Arc<SparsePattern>) -> Self {
        let nnz = pattern.nnz();
        SparseMatrix { pattern, values: vec![0.0; nnz] }
    }

    /// The shared pattern.
    pub fn pattern(&self) -> &Arc<SparsePattern> {
        &self.pattern
    }

    /// Mutable access to the structural-nonzero value array (indexed by
    /// [`SparsePattern::slot`]). The fast assembly path of precompiled
    /// stamp plans accumulates directly through this.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.pattern.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.pattern.nnz()
    }

    /// Value of entry `(row, col)`; structural zeros read as `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.pattern.n && col < self.pattern.n);
        self.pattern.slot(row, col).map_or(0.0, |s| self.values[s])
    }

    /// Densifies (tests and diagnostics only).
    pub fn to_dense(&self) -> Matrix {
        let n = self.pattern.n;
        let mut m = Matrix::zeros(n, n);
        for c in 0..n {
            for p in self.pattern.col_ptr[c]..self.pattern.col_ptr[c + 1] {
                m[(self.pattern.row_idx[p], c)] = self.values[p];
            }
        }
        m
    }

    /// Iterates the structural entries as `(row, col, value)` in
    /// column-major order (including explicit zeros).
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let pat = &self.pattern;
        (0..pat.n).flat_map(move |c| {
            (pat.col_ptr[c]..pat.col_ptr[c + 1])
                .map(move |p| (pat.row_idx[p], c, self.values[p]))
        })
    }

    /// Computes `self * x` (tests and residual checks).
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        let n = self.pattern.n;
        if x.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: x.len() });
        }
        let mut y = vec![0.0; n];
        for (c, &xc) in x.iter().enumerate() {
            if xc != 0.0 {
                for p in self.pattern.col_ptr[c]..self.pattern.col_ptr[c + 1] {
                    y[self.pattern.row_idx[p]] += self.values[p] * xc;
                }
            }
        }
        Ok(y)
    }
}

impl StampTarget for SparseMatrix {
    fn clear(&mut self) {
        self.values.fill(0.0);
    }

    fn add(&mut self, row: usize, col: usize, value: f64) {
        match self.pattern.slot(row, col) {
            Some(s) => self.values[s] += value,
            None => panic!("slot ({row},{col}) is not part of the sparsity pattern"),
        }
    }
}

/// Marker for "row not yet chosen as a pivot" in `pinv`.
const EMPTY: usize = usize::MAX;

/// The value-independent skeleton of a sparse LU factorization: the
/// analyzed pattern, the fill structure of L and U, and the pivot
/// order.
///
/// One full (pivoting) factorization computes this; any number of
/// [`SparseLu`] workspaces can then share it by `Arc` (see
/// [`SparseLu::seed_symbolic`]) and run pure numeric refactorizations
/// against it — the mechanism fault-campaign engines use to pay one
/// symbolic analysis per circuit variant instead of one per solve.
#[derive(Debug)]
pub struct SparseSymbolic {
    /// Pattern this skeleton was computed for.
    pattern: Arc<SparsePattern>,
    /// L strictly-lower CSC structure in pivot-order row coordinates;
    /// unit diagonal implicit.
    lp: Vec<usize>,
    li: Vec<usize>,
    /// U strictly-upper CSC structure in pivot-order row coordinates
    /// (row < col); the diagonal lives in the numeric workspace.
    up: Vec<usize>,
    ui: Vec<usize>,
    /// `pinv[orig_row] = pivot position`; `rowperm[pivot_pos] = orig_row`.
    pinv: Vec<usize>,
    rowperm: Vec<usize>,
    /// Column pre-ordering: `colperm[k]` is the original column
    /// eliminated at step `k` (identity for natural order). Solution
    /// component `k` of the permuted solve belongs to original unknown
    /// `colperm[k]`.
    colperm: Vec<usize>,
    /// Whether `colperm` is a non-identity permutation (the solve path
    /// needs a scatter through it only then).
    permuted: bool,
    /// Diagonal-block boundaries in pivot positions: block `b` spans
    /// `block_ptr[b]..block_ptr[b+1]`. A plain (non-BTF) factorization
    /// is the single block `[0, n]`.
    block_ptr: Vec<usize>,
    /// Off-diagonal coupling structure (BTF only; empty otherwise):
    /// per-column CSC of the entries of `P·A·Q` that land *above* the
    /// diagonal blocks. Row indices are pivot positions in earlier
    /// blocks; the values stay raw `A` entries (never factored), stored
    /// in `SparseLu::ox`.
    op: Vec<usize>,
    oi: Vec<usize>,
    /// The BTF preordering this skeleton factors under, if any —
    /// carried so stability fallbacks and reseeded workspaces keep the
    /// same block structure.
    btf: Option<Arc<BtfOrder>>,
}

impl SparseSymbolic {
    /// The pattern the skeleton was analyzed for.
    pub fn pattern(&self) -> &Arc<SparsePattern> {
        &self.pattern
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.rowperm.len()
    }

    /// Structural nonzeros in the L factor (unit diagonal excluded).
    pub fn l_nnz(&self) -> usize {
        self.li.len()
    }

    /// Structural nonzeros in the U factor (diagonal excluded).
    pub fn u_nnz(&self) -> usize {
        self.ui.len()
    }

    /// Structural nonzeros the factorization stores: `L + U` with the
    /// diagonal counted once, plus (for BTF skeletons) the raw
    /// off-diagonal coupling entries — the fill metric ordering quality
    /// is judged by. Identical to [`block_fill`](SparseSymbolic::block_fill)
    /// for non-BTF skeletons.
    pub fn fill_nnz(&self) -> usize {
        self.block_fill() + self.oi.len()
    }

    /// Summed fill of the diagonal blocks alone (`L + U` nonzeros with
    /// the diagonal counted once, excluding the raw off-diagonal
    /// coupling entries) — the part of the storage that factorization
    /// actually creates.
    pub fn block_fill(&self) -> usize {
        self.li.len() + self.ui.len() + self.dim()
    }

    /// Diagonal-block boundaries in pivot positions: block `b` spans
    /// `blocks()[b]..blocks()[b+1]`. A plain factorization reports the
    /// single block `[0, n]`.
    pub fn blocks(&self) -> &[usize] {
        &self.block_ptr
    }

    /// Number of diagonal blocks (1 for any non-BTF skeleton of a
    /// nonempty matrix).
    pub fn block_count(&self) -> usize {
        self.block_ptr.len().saturating_sub(1)
    }

    /// Number of raw off-diagonal coupling entries (0 for non-BTF
    /// skeletons).
    pub fn off_nnz(&self) -> usize {
        self.oi.len()
    }

    /// The BTF preordering this skeleton factors under, if any.
    pub fn btf(&self) -> Option<&Arc<BtfOrder>> {
        self.btf.as_ref()
    }

    /// The column pre-ordering this skeleton factors under:
    /// `ordering()[k]` is the original column eliminated at step `k`
    /// (the identity for natural order).
    pub fn ordering(&self) -> &[usize] {
        &self.colperm
    }

    /// Whether the skeleton factors under a non-identity column
    /// ordering.
    pub fn is_permuted(&self) -> bool {
        self.permuted
    }
}

/// Sparse LU workspace: factors a [`SparseMatrix`] and solves against
/// the stored factors, reusing the symbolic analysis across
/// factorizations of the same pattern.
///
/// See the [module docs](self) for the algorithm; the API mirrors
/// [`LuWorkspace`](crate::LuWorkspace) (factor, then solve into a
/// caller-provided buffer, allocating nothing on the steady-state
/// path). The symbolic skeleton lives behind an `Arc`
/// ([`SparseSymbolic`]): cloning a workspace — or seeding a fresh one
/// with [`seed_symbolic`](SparseLu::seed_symbolic) — shares the
/// analysis, so only the numeric refactorization is paid per instance.
#[derive(Debug, Clone, Default)]
pub struct SparseLu {
    /// Shared fill structure + pivot order; `None` until the first
    /// factorization (or until seeded).
    symbolic: Option<Arc<SparseSymbolic>>,
    /// Numeric payload of L (aligned with the symbolic `li`).
    lx: Vec<f64>,
    /// Numeric payload of U (aligned with the symbolic `ui`), diagonal
    /// split out into `udiag`.
    ux: Vec<f64>,
    udiag: Vec<f64>,
    /// Dense accumulator in pivot-order coordinates.
    work: Vec<f64>,
    /// Per-row marker for the symbolic DFS (`mark` generation counter).
    flag: Vec<usize>,
    mark: usize,
    /// Explicit DFS stack of `(row, next-child-position)` pairs.
    dfs: Vec<(usize, usize)>,
    /// Column pattern in topological order (pivot positions / rows).
    reach: Vec<usize>,
    /// Column pre-ordering requested via
    /// [`set_ordering`](SparseLu::set_ordering); consulted (not
    /// consumed) by every full factorization whose dimension matches.
    ordering: Option<Vec<usize>>,
    /// Position-space scratch for the permuted solve path.
    solve_buf: Vec<f64>,
    factored: bool,
    /// Numeric payload of the raw off-diagonal coupling entries
    /// (aligned with the symbolic `oi`; empty for non-BTF skeletons).
    ox: Vec<f64>,
    /// Block-triangular preordering requested via
    /// [`set_btf_order`](SparseLu::set_btf_order); consulted (not
    /// consumed) by every full factorization whose dimension matches.
    btf: Option<Arc<BtfOrder>>,
    /// Worker threads for block-parallel refactorization (0 or 1 =
    /// serial). Results are bit-identical at every thread count.
    threads: usize,
    /// Cached per-worker accumulators for the parallel refactorization
    /// (each sized `n`, kept zeroed between uses).
    thread_work: Vec<Vec<f64>>,
}

impl SparseLu {
    /// Creates an empty workspace; the first
    /// [`factor`](SparseLu::factor) sizes it.
    pub fn new() -> Self {
        SparseLu::default()
    }

    /// Whether a usable factorization is stored.
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Dimension of the stored factorization (0 before the first
    /// factor).
    pub fn dim(&self) -> usize {
        self.symbolic.as_ref().map_or(0, |s| s.dim())
    }

    /// The shared symbolic skeleton, if one has been computed (by this
    /// workspace or whichever workspace it was seeded from).
    pub fn symbolic(&self) -> Option<Arc<SparseSymbolic>> {
        self.symbolic.clone()
    }

    /// Sets a fill-reducing column pre-ordering (for example
    /// [`SparsePattern::amd_ordering`]) for subsequent **full**
    /// factorizations: step `k` of the elimination processes original
    /// column `perm[k]`, and solutions are scattered back to original
    /// coordinates, so callers never see the permutation. The ordering
    /// persists across factorizations (it is consulted, not consumed)
    /// and is ignored for matrices whose dimension does not match its
    /// length. A stored skeleton whose ordering differs from `perm` is
    /// dropped, so the next [`factor`](SparseLu::factor) honors the
    /// request with a full factorization instead of silently
    /// refactoring under the old ordering; a skeleton already using
    /// `perm` is kept.
    ///
    /// # Panics
    ///
    /// The next matching full factorization panics if `perm` is not a
    /// permutation of `0..perm.len()`.
    pub fn set_ordering(&mut self, perm: Vec<usize>) {
        if self.symbolic.as_ref().is_some_and(|s| s.colperm != perm || s.btf.is_some()) {
            self.symbolic = None;
            self.factored = false;
        }
        self.btf = None;
        self.ordering = Some(perm);
    }

    /// Sets a block-triangular preordering (see
    /// [`SparsePattern::btf_order`]) for subsequent **full**
    /// factorizations: elimination is restricted to the diagonal
    /// blocks, the off-diagonal coupling entries are stored raw, and
    /// the solve back-substitutes through them in reverse block order.
    /// Supersedes a pending [`set_ordering`](SparseLu::set_ordering)
    /// request; a stored skeleton with a different block structure is
    /// dropped so the next [`factor`](SparseLu::factor) honors the
    /// request.
    ///
    /// The order **must** describe the pattern of the matrices this
    /// workspace will factor (computed from it, or from a pattern with
    /// identical structure): the next matching full factorization
    /// panics if a structural entry falls below the block diagonal.
    pub fn set_btf_order(&mut self, order: Arc<BtfOrder>) {
        let matches = |s: &SparseSymbolic| {
            s.btf.as_ref().is_some_and(|b| {
                b.colperm == order.colperm && b.block_ptr == order.block_ptr
            })
        };
        if self.symbolic.as_ref().is_some_and(|s| !matches(s)) {
            self.symbolic = None;
            self.factored = false;
        }
        self.ordering = None;
        self.btf = Some(order);
    }

    /// Sets the worker-thread count for block-parallel numeric
    /// refactorization (0 or 1 = serial). Only BTF skeletons with more
    /// than one diagonal block fan out; results are **bit-identical**
    /// at every thread count (each block's arithmetic is self-contained
    /// and unchanged by the partitioning).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Adopts a shared symbolic skeleton computed elsewhere: the next
    /// [`factor`](SparseLu::factor) of a matrix with the skeleton's
    /// pattern runs as a pure numeric refactorization (falling back to
    /// a fresh pivoting factorization if a recycled pivot has become
    /// numerically unacceptable). Clears any stored factorization.
    ///
    /// The seeded analysis supersedes a pending
    /// [`set_ordering`](SparseLu::set_ordering) request whose
    /// permutation differs from the skeleton's: whoever computed the
    /// skeleton fixed its ordering, and subsequent factorizations
    /// (including stability fallbacks) eliminate under it — a stale
    /// explicit request must not make the fallback path diverge from
    /// the refactorization path.
    pub fn seed_symbolic(&mut self, symbolic: Arc<SparseSymbolic>) {
        if self.ordering.as_ref().is_some_and(|p| p[..] != symbolic.colperm[..]) {
            self.ordering = None;
        }
        // Likewise the skeleton's block structure (or lack of one) wins
        // over a pending BTF request, so stability fallbacks re-factor
        // under the blocks the skeleton was analyzed with.
        self.btf = symbolic.btf.clone();
        let n = symbolic.dim();
        self.lx.clear();
        self.lx.resize(symbolic.l_nnz(), 0.0);
        self.ux.clear();
        self.ux.resize(symbolic.u_nnz(), 0.0);
        self.ox.clear();
        self.ox.resize(symbolic.off_nnz(), 0.0);
        self.udiag.clear();
        self.udiag.resize(n, 0.0);
        self.work.clear();
        self.work.resize(n, 0.0);
        self.solve_buf.clear();
        self.solve_buf.resize(n, 0.0);
        self.symbolic = Some(symbolic);
        self.factored = false;
    }

    /// Factors `a`. If `a` shares the pattern of the stored symbolic
    /// skeleton (same `Arc`), the skeleton — fill pattern, pivot order,
    /// traversal order — is replayed numerically with no graph work;
    /// otherwise (or when a recycled pivot is numerically unacceptable)
    /// a full left-looking factorization with threshold partial
    /// pivoting runs and records a fresh skeleton.
    ///
    /// # Errors
    ///
    /// [`NumericError::SingularMatrix`] when a column has no usable
    /// pivot. The workspace is left unfactored in that case and
    /// [`solve_into`](SparseLu::solve_into) fails cleanly.
    pub fn factor(&mut self, a: &SparseMatrix) -> Result<(), NumericError> {
        let same_pattern = self
            .symbolic
            .as_ref()
            .is_some_and(|s| Arc::ptr_eq(s.pattern(), a.pattern()));
        if same_pattern && self.refactor(a).is_ok() {
            return Ok(());
        }
        self.full_factor(a)
    }

    /// Solves `A·x = b` with the stored factors, allocating nothing.
    ///
    /// Takes `&mut self` only for the position-space scratch buffer the
    /// column-permuted path scatters through; the factors themselves
    /// are not modified. Natural-order factorizations substitute
    /// directly into `x`, exactly as before orderings existed.
    ///
    /// # Errors
    ///
    /// [`NumericError::NotFactored`] if no factorization is stored;
    /// [`NumericError::DimensionMismatch`] for wrong-sized `b` or `x`.
    pub fn solve_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), NumericError> {
        if !self.factored {
            return Err(NumericError::NotFactored);
        }
        let sym = self.symbolic.as_ref().expect("factored implies symbolic");
        let n = sym.dim();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: b.len() });
        }
        if x.len() != n {
            return Err(NumericError::DimensionMismatch { expected: n, actual: x.len() });
        }
        if sym.permuted {
            // Substitute in pivot/position space, then scatter position
            // k back to original unknown colperm[k].
            let y = &mut self.solve_buf;
            Self::substitute(sym, &self.lx, &self.ux, &self.ox, &self.udiag, b, y);
            for (k, &col) in sym.colperm.iter().enumerate() {
                x[col] = y[k];
            }
        } else {
            Self::substitute(sym, &self.lx, &self.ux, &self.ox, &self.udiag, b, x);
        }
        Ok(())
    }

    /// The permutation-gather + forward/backward substitution shared by
    /// both solve paths: `x = U⁻¹ L⁻¹ P b` in pivot-order coordinates,
    /// block by block.
    ///
    /// Diagonal blocks are processed in **reverse** order (the permuted
    /// matrix is block *upper* triangular): each block runs the usual
    /// forward/backward substitution against its own L/U, and as a
    /// component is finalized its raw off-diagonal coupling entries are
    /// subtracted from the earlier blocks' right-hand sides. With a
    /// single block (every non-BTF skeleton) the loops reduce exactly
    /// to the classic whole-matrix substitution.
    fn substitute(
        sym: &SparseSymbolic,
        lx: &[f64],
        ux: &[f64],
        ox: &[f64],
        udiag: &[f64],
        b: &[f64],
        x: &mut [f64],
    ) {
        // x = P·b.
        for (k, &orig) in sym.rowperm.iter().enumerate() {
            x[k] = b[orig];
        }
        for blk in (0..sym.block_count()).rev() {
            let (s, e) = (sym.block_ptr[blk], sym.block_ptr[blk + 1]);
            // Forward substitution with the block's unit-lower L
            // (column-oriented: entry rows are all > the column).
            for k in s..e {
                let xk = x[k];
                if xk != 0.0 {
                    for p in sym.lp[k]..sym.lp[k + 1] {
                        x[sym.li[p]] -= lx[p] * xk;
                    }
                }
            }
            // Backward substitution with the block's U; a finalized
            // component also retires its couplings into earlier blocks.
            for j in (s..e).rev() {
                let xj = x[j] / udiag[j];
                x[j] = xj;
                if xj != 0.0 {
                    for p in sym.up[j]..sym.up[j + 1] {
                        x[sym.ui[p]] -= ux[p] * xj;
                    }
                    for p in sym.op[j]..sym.op[j + 1] {
                        x[sym.oi[p]] -= ox[p] * xj;
                    }
                }
            }
        }
    }

    /// Full left-looking Gilbert–Peierls factorization with threshold
    /// partial pivoting; records the symbolic skeleton (freshly
    /// allocated and `Arc`-frozen) for subsequent refactorizations.
    fn full_factor(&mut self, a: &SparseMatrix) -> Result<(), NumericError> {
        let n = a.dim();
        let pat = a.pattern();
        // Block-triangular preordering: an explicitly set BTF order of
        // matching dimension wins; otherwise a stability fallback from
        // a seeded skeleton of the same pattern keeps that skeleton's
        // blocks (unless an explicit plain ordering overrides them).
        let btf: Option<Arc<BtfOrder>> = match &self.btf {
            Some(b) if b.dim() == n => Some(Arc::clone(b)),
            _ => match (&self.ordering, &self.symbolic) {
                (Some(perm), _) if perm.len() == n => None,
                (_, Some(sym)) if Arc::ptr_eq(sym.pattern(), pat) => sym.btf.clone(),
                _ => None,
            },
        };
        // Column pre-ordering: the BTF order's composed permutation;
        // else an explicitly set ordering of matching dimension;
        // otherwise a stability fallback from a seeded skeleton of the
        // same pattern keeps that skeleton's ordering (the ordering is
        // a property of the pattern, not the values); otherwise natural
        // order.
        let colperm: Vec<usize> = match (&btf, &self.ordering) {
            (Some(b), _) => b.colperm.clone(),
            (None, Some(perm)) if perm.len() == n => {
                let mut seen = vec![false; n];
                for &c in perm {
                    assert!(
                        c < n && !std::mem::replace(&mut seen[c], true),
                        "ordering is not a permutation of 0..{n}"
                    );
                }
                perm.clone()
            }
            _ => match &self.symbolic {
                Some(sym) if Arc::ptr_eq(sym.pattern(), pat) => sym.colperm.clone(),
                _ => (0..n).collect(),
            },
        };
        let block_ptr: Vec<usize> = match &btf {
            Some(b) => {
                // The order must block-triangularize *this* pattern:
                // every structural entry has to land at or above its
                // column's diagonal block, or the factorization below
                // would silently break triangularity.
                let mut blk_of_pos = vec![0usize; n];
                for blk in 0..b.block_count() {
                    blk_of_pos[b.block_ptr[blk]..b.block_ptr[blk + 1]].fill(blk);
                }
                let mut rpos = vec![0usize; n];
                let mut cpos = vec![0usize; n];
                for k in 0..n {
                    rpos[b.rowperm[k]] = k;
                    cpos[b.colperm[k]] = k;
                }
                for c in 0..n {
                    for &r in &pat.row_idx[pat.col_ptr[c]..pat.col_ptr[c + 1]] {
                        assert!(
                            blk_of_pos[rpos[r]] <= blk_of_pos[cpos[c]],
                            "BTF order does not match the matrix pattern: \
                             entry ({r},{c}) falls below the block diagonal"
                        );
                    }
                }
                b.block_ptr.clone()
            }
            None if n == 0 => vec![0],
            None => vec![0, n],
        };
        let permuted = colperm.iter().enumerate().any(|(k, &c)| k != c);
        self.factored = false;
        self.symbolic = None;

        // Structure vectors are built locally and frozen into the
        // shared skeleton at the end; only full factorizations (rare on
        // the steady-state path) pay these allocations.
        let mut lp: Vec<usize> = Vec::with_capacity(n + 1);
        let mut li: Vec<usize> = Vec::with_capacity(pat.nnz());
        let mut up: Vec<usize> = Vec::with_capacity(n + 1);
        let mut ui: Vec<usize> = Vec::with_capacity(pat.nnz());
        let mut op: Vec<usize> = Vec::with_capacity(n + 1);
        let mut oi: Vec<usize> = Vec::new();
        let mut pinv = vec![EMPTY; n];
        let mut rowperm = vec![EMPTY; n];
        self.lx.clear();
        self.ux.clear();
        self.ox.clear();
        self.udiag.clear();
        self.udiag.resize(n, 0.0);
        lp.push(0);
        up.push(0);
        op.push(0);

        self.work.clear();
        self.work.resize(n, 0.0);
        self.flag.clear();
        self.flag.resize(n, 0);
        self.mark = 0;

        let mut cur_block = 0usize;
        for j in 0..n {
            // Elimination step j processes original column `col`,
            // inside diagonal block `[s, block end)`.
            let col = colperm[j];
            while j >= block_ptr[cur_block + 1] {
                cur_block += 1;
            }
            let s = block_ptr[cur_block];
            // --- Symbolic: rows reachable from A(:,col) through the
            // DAG of already-computed L columns of *this block*, in
            // topological order. Nodes are *original* rows; a row that
            // is pivotal for step k in [s, j) has children = the rows
            // of L(:,k). Rows pivotal in earlier blocks are leaves:
            // their entries stay raw off-diagonal couplings.
            self.mark += 1;
            self.reach.clear();
            for p in pat.col_ptr[col]..pat.col_ptr[col + 1] {
                let r = pat.row_idx[p];
                if self.flag[r] != self.mark {
                    Self::dfs_from(
                        r,
                        &lp,
                        &li,
                        &pinv,
                        s,
                        &mut self.dfs,
                        &mut self.flag,
                        self.mark,
                        &mut self.reach,
                    );
                }
            }
            // `reach` now holds original rows in reverse topological
            // order (DFS postorder); iterate it backwards for the
            // numeric update.

            // --- Numeric: scatter A(:,col), then eliminate in
            // topological order.
            for p in pat.col_ptr[col]..pat.col_ptr[col + 1] {
                self.work[pat.row_idx[p]] = a.values[p];
            }
            for &r in self.reach.iter().rev() {
                let k = pinv[r];
                if k == EMPTY || k < s {
                    continue;
                }
                let ukj = self.work[r];
                if ukj != 0.0 {
                    // x[rows of L(:,k)] -= L(:,k) · ukj. During the
                    // factorization L's row indices are still original
                    // rows (the pivot-order remap happens at the end).
                    let seg = lp[k]..lp[k + 1];
                    for (row, l) in li[seg.clone()].iter().zip(&self.lx[seg]) {
                        self.work[*row] -= l * ukj;
                    }
                }
            }

            // --- Pivot: largest candidate among non-pivotal rows, with
            // preference for the diagonal (original row `col`, which
            // keeps a fill-reducing column ordering effectively
            // symmetric) when it is within DIAG_PREFERENCE of the
            // maximum.
            let mut pivot_row = EMPTY;
            let mut pivot_mag = 0.0;
            for &r in self.reach.iter().rev() {
                if pinv[r] == EMPTY {
                    let m = self.work[r].abs();
                    if m > pivot_mag {
                        pivot_mag = m;
                        pivot_row = r;
                    }
                }
            }
            if !pivot_mag.is_finite() || pivot_mag < PIVOT_EPS {
                self.reset_work_and_fail();
                // Report the original column, not the permuted pivot
                // position — callers name the MNA unknown from it.
                return Err(NumericError::SingularMatrix { pivot: colperm[j] });
            }
            // The preferred pivot row: the matrix diagonal (original
            // row `col`), or under BTF the transversal row the order
            // matched to this column (which is what makes the permuted
            // diagonal zero-free).
            let pref = match &btf {
                Some(b) => b.rowperm[j],
                None => col,
            };
            if pivot_row != pref
                && pinv[pref] == EMPTY
                && self.flag[pref] == self.mark
                && self.work[pref].abs() >= DIAG_PREFERENCE * pivot_mag
            {
                pivot_row = pref;
            }
            let ujj = self.work[pivot_row];
            pinv[pivot_row] = j;
            rowperm[j] = pivot_row;
            self.udiag[j] = ujj;

            // --- Store the column: pivotal rows into U (pivot-order
            // indices, all < j), non-pivotal rows into L (divided by
            // the pivot; indices assigned later rewritten to pivot
            // order as their pivots are chosen — so store original rows
            // here and remap at the end).
            for &r in self.reach.iter().rev() {
                let k = pinv[r];
                let v = self.work[r];
                self.work[r] = 0.0; // restore the accumulator
                if r == pivot_row {
                    continue;
                }
                if k != EMPTY && k < s {
                    // Coupling into an earlier diagonal block: stored
                    // raw (never factored), consumed by the block
                    // back-substitution. `k` is final — earlier blocks
                    // are fully pivoted.
                    oi.push(k);
                    self.ox.push(v);
                } else if k != EMPTY && k < j {
                    ui.push(k);
                    self.ux.push(v);
                } else {
                    // Not yet pivotal: belongs to L. Store the original
                    // row for now.
                    li.push(r);
                    self.lx.push(v / ujj);
                }
            }
            lp.push(li.len());
            up.push(ui.len());
            op.push(oi.len());
        }

        // Remap L's row indices from original rows to pivot positions
        // (every row is pivotal by now), and sort each U column by row
        // for a deterministic ascending refactorization order.
        for r in li.iter_mut() {
            *r = pinv[*r];
        }
        for j in 0..n {
            let (lo, hi) = (up[j], up[j + 1]);
            // Insertion sort of the (short) column segment, values in
            // lockstep.
            for i in lo + 1..hi {
                let mut k = i;
                while k > lo && ui[k - 1] > ui[k] {
                    ui.swap(k - 1, k);
                    self.ux.swap(k - 1, k);
                    k -= 1;
                }
            }
        }

        self.solve_buf.clear();
        self.solve_buf.resize(n, 0.0);
        self.symbolic = Some(Arc::new(SparseSymbolic {
            pattern: Arc::clone(pat),
            lp,
            li,
            up,
            ui,
            pinv,
            rowperm,
            colperm,
            permuted,
            block_ptr,
            op,
            oi,
            btf,
        }));
        self.factored = true;
        Ok(())
    }

    /// Depth-first search from original row `root` through the column
    /// DAG of L, appending finished rows to `reach` (postorder ⇒
    /// `reach` reversed is topological order). Iterative with an
    /// explicit stack — MNA elimination trees can be deep.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    fn dfs_from(
        root: usize,
        lp: &[usize],
        li: &[usize],
        pinv: &[usize],
        block_start: usize,
        dfs: &mut Vec<(usize, usize)>,
        flag: &mut [usize],
        mark: usize,
        reach: &mut Vec<usize>,
    ) {
        dfs.clear();
        dfs.push((root, 0));
        flag[root] = mark;
        while let Some((r, child)) = dfs.pop() {
            let k = pinv[r];
            let (lo, hi) = if k == EMPTY || k < block_start {
                // Non-pivotal rows — and rows pivotal in an earlier
                // diagonal block, whose entries stay raw off-diagonal
                // couplings — have no children.
                (0, 0)
            } else {
                (lp[k], lp[k + 1])
            };
            let mut advanced = false;
            for q in lo + child..hi {
                // L's row indices are original rows until the
                // end-of-factor remap, so no permutation lookup here.
                let child_row = li[q];
                if flag[child_row] != mark {
                    // Defer the rest of `r`'s children, descend.
                    dfs.push((r, q + 1 - lo));
                    dfs.push((child_row, 0));
                    flag[child_row] = mark;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                reach.push(r);
            }
        }
    }

    /// Numeric refactorization: replays the stored (shared) fill
    /// pattern and pivot order against new values with the same
    /// pattern. No graph traversal, no pivot search — a straight sweep
    /// over the skeleton's L/U structure.
    ///
    /// # Errors
    ///
    /// [`NumericError::SingularMatrix`] when a recycled pivot is exactly
    /// unusable, [`NumericError::NotFactored`] when one has decayed
    /// below `REFACTOR_TOL` of its column; the caller
    /// ([`factor`](SparseLu::factor)) falls back to a full
    /// factorization on any error.
    fn refactor(&mut self, a: &SparseMatrix) -> Result<(), NumericError> {
        let n = a.dim();
        let sym = self.symbolic.clone().expect("refactor requires a symbolic skeleton");
        self.factored = false;
        if self.threads > 1 && sym.block_count() > 1 {
            self.refactor_parallel(&sym, a)?;
        } else {
            Self::refactor_range(
                &sym,
                a,
                0..n,
                &mut self.lx,
                &mut self.ux,
                &mut self.ox,
                &mut self.udiag,
                &mut self.work,
            )?;
        }
        self.factored = true;
        Ok(())
    }

    /// Refactors the contiguous column range `cols` (which must cover
    /// whole diagonal blocks) of the skeleton. The value slices are the
    /// range's segments of `lx`/`ux`/`ox`/`udiag` — indexed relative to
    /// `cols.start`'s offsets, so disjoint ranges can run on disjoint
    /// borrows. `work` is a full-dimension accumulator, zeroed on entry
    /// and on exit (including the error exits).
    ///
    /// Because a block's columns read only that block's L/U values and
    /// scatter/gather through `work`, refactoring block ranges on
    /// separate workers with separate accumulators produces exactly the
    /// bits the serial sweep does.
    #[allow(clippy::too_many_arguments)]
    fn refactor_range(
        sym: &SparseSymbolic,
        a: &SparseMatrix,
        cols: Range<usize>,
        lx: &mut [f64],
        ux: &mut [f64],
        ox: &mut [f64],
        udiag: &mut [f64],
        work: &mut [f64],
    ) -> Result<(), NumericError> {
        let pat = a.pattern();
        let (cbase, lbase, ubase, obase) = (
            cols.start,
            sym.lp[cols.start],
            sym.up[cols.start],
            sym.op[cols.start],
        );
        // `work` is indexed by pivot position here; every position
        // touched is restored to zero before the column ends.
        for j in cols {
            // Scatter A(:,colperm[j]) through the row permutation.
            let col = sym.colperm[j];
            for p in pat.col_ptr[col]..pat.col_ptr[col + 1] {
                work[sym.pinv[pat.row_idx[p]]] = a.values[p];
            }
            // Eliminate using the stored U rows (ascending pivot order).
            for p in sym.up[j]..sym.up[j + 1] {
                let k = sym.ui[p];
                let ukj = work[k];
                ux[p - ubase] = ukj;
                if ukj != 0.0 {
                    for q in sym.lp[k]..sym.lp[k + 1] {
                        work[sym.li[q]] -= lx[q - lbase] * ukj;
                    }
                }
            }
            let ujj = work[j];
            // Stability guard: the recycled pivot must still dominate
            // its column to within REFACTOR_TOL.
            let mut colmax = ujj.abs();
            for q in sym.lp[j]..sym.lp[j + 1] {
                colmax = colmax.max(work[sym.li[q]].abs());
            }
            if !colmax.is_finite() || ujj.abs() < PIVOT_EPS || ujj.abs() < REFACTOR_TOL * colmax {
                // Clear the scattered column (the pattern scatter also
                // covers the off-diagonal positions) so the fallback
                // full factorization starts from a clean accumulator.
                work[j] = 0.0;
                for p in pat.col_ptr[col]..pat.col_ptr[col + 1] {
                    work[sym.pinv[pat.row_idx[p]]] = 0.0;
                }
                for p in sym.up[j]..sym.up[j + 1] {
                    work[sym.ui[p]] = 0.0;
                }
                for q in sym.lp[j]..sym.lp[j + 1] {
                    work[sym.li[q]] = 0.0;
                }
                return Err(if !colmax.is_finite() || ujj.abs() < PIVOT_EPS {
                    // Original column space, like the full factorization.
                    NumericError::SingularMatrix { pivot: sym.colperm[j] }
                } else {
                    NumericError::NotFactored
                });
            }
            udiag[j - cbase] = ujj;
            work[j] = 0.0;
            for p in sym.up[j]..sym.up[j + 1] {
                work[sym.ui[p]] = 0.0;
            }
            // Gather the raw off-diagonal couplings of this column.
            for p in sym.op[j]..sym.op[j + 1] {
                ox[p - obase] = work[sym.oi[p]];
                work[sym.oi[p]] = 0.0;
            }
            for q in sym.lp[j]..sym.lp[j + 1] {
                let r = sym.li[q];
                lx[q - lbase] = work[r] / ujj;
                work[r] = 0.0;
            }
        }
        Ok(())
    }

    /// Fans the numeric refactorization of a multi-block skeleton
    /// across scoped worker threads: the diagonal blocks are grouped
    /// into contiguous fill-balanced chunks, the value arrays are
    /// partitioned at the chunk boundaries, and each worker sweeps its
    /// chunk with its own cached full-dimension accumulator. The chunk
    /// partition affects only which thread computes what — every
    /// column's arithmetic is self-contained within its block, so the
    /// results are bit-identical to the serial sweep (and to any other
    /// thread count).
    fn refactor_parallel(
        &mut self,
        sym: &Arc<SparseSymbolic>,
        a: &SparseMatrix,
    ) -> Result<(), NumericError> {
        let n = sym.dim();
        let nb = sym.block_count();
        let workers = self.threads.min(nb);
        let block_cost = |b: usize| {
            let (s, e) = (sym.block_ptr[b], sym.block_ptr[b + 1]);
            (sym.lp[e] - sym.lp[s]) + (sym.up[e] - sym.up[s]) + (sym.op[e] - sym.op[s]) + (e - s)
        };
        let total: usize = (0..nb).map(block_cost).sum();
        let target = total.div_ceil(workers);
        let mut chunks: Vec<Range<usize>> = Vec::new();
        let mut start_block = 0usize;
        let mut acc = 0usize;
        for b in 0..nb {
            acc += block_cost(b);
            if acc >= target && chunks.len() + 1 < workers {
                chunks.push(sym.block_ptr[start_block]..sym.block_ptr[b + 1]);
                start_block = b + 1;
                acc = 0;
            }
        }
        if start_block < nb {
            chunks.push(sym.block_ptr[start_block]..sym.block_ptr[nb]);
        }
        while self.thread_work.len() < chunks.len() {
            self.thread_work.push(Vec::new());
        }
        for w in self.thread_work.iter_mut().take(chunks.len()) {
            if w.len() != n {
                w.clear();
                w.resize(n, 0.0);
            }
        }
        // Partition the value arrays at the chunk boundaries: one
        // column range plus its L/U/off-diagonal/diagonal value slices
        // per worker.
        type FactorPart<'a> =
            (Range<usize>, &'a mut [f64], &'a mut [f64], &'a mut [f64], &'a mut [f64]);
        let mut parts: Vec<FactorPart<'_>> = Vec::with_capacity(chunks.len());
        let (mut lx, mut ux, mut ox, mut ud) =
            (&mut self.lx[..], &mut self.ux[..], &mut self.ox[..], &mut self.udiag[..]);
        for cols in &chunks {
            let (l, lr) = lx.split_at_mut(sym.lp[cols.end] - sym.lp[cols.start]);
            let (u, ur) = ux.split_at_mut(sym.up[cols.end] - sym.up[cols.start]);
            let (o, or) = ox.split_at_mut(sym.op[cols.end] - sym.op[cols.start]);
            let (d, dr) = ud.split_at_mut(cols.end - cols.start);
            parts.push((cols.clone(), l, u, o, d));
            (lx, ux, ox, ud) = (lr, ur, or, dr);
        }
        let results = std::thread::scope(|scope| {
            let sym: &SparseSymbolic = sym;
            let mut handles = Vec::with_capacity(parts.len());
            for ((cols, lx, ux, ox, ud), work) in
                parts.into_iter().zip(self.thread_work.iter_mut())
            {
                handles.push(scope.spawn(move || {
                    let r = Self::refactor_range(sym, a, cols, lx, ux, ox, ud, work);
                    if r.is_err() {
                        // refactor_range clears its own column; a full
                        // re-zero keeps the cached accumulator safe for
                        // reuse regardless.
                        work.fill(0.0);
                    }
                    r
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("block refactorization worker panicked"))
                .collect::<Vec<_>>()
        });
        for r in results {
            r?;
        }
        Ok(())
    }

    /// Clears accumulator state after a singular full factorization so
    /// a later attempt starts from a clean workspace.
    fn reset_work_and_fail(&mut self) {
        self.work.fill(0.0);
        self.symbolic = None;
        self.factored = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift PRNG (no rand dependency in unit tests).
    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        }
    }

    fn dense_solve(m: &Matrix, b: &[f64]) -> Vec<f64> {
        crate::LuFactors::factor(m.clone()).unwrap().solve(b).unwrap()
    }

    /// Random banded well-conditioned matrix as a SparseMatrix.
    fn banded(n: usize, band: usize, seed: u64) -> SparseMatrix {
        let mut entries = Vec::new();
        for i in 0..n {
            for j in i.saturating_sub(band)..(i + band + 1).min(n) {
                entries.push((i, j));
            }
        }
        let mut m = SparseMatrix::from_entries(n, &entries);
        let mut next = rng(seed);
        for &(i, j) in &entries {
            m.add(i, j, next());
        }
        for i in 0..n {
            m.add(i, i, 2.0 * (band as f64 + 1.0)); // diagonally dominant
        }
        m
    }

    #[test]
    fn pattern_building_merges_duplicates() {
        let m = SparseMatrix::from_entries(3, &[(0, 0), (0, 0), (2, 1), (1, 2)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.dim(), 3);
        assert!(m.pattern().density() > 0.0);
    }

    #[test]
    fn add_accumulates_and_clear_zeroes() {
        let mut m = SparseMatrix::from_entries(2, &[(0, 0), (1, 1)]);
        m.add(0, 0, 1.5);
        m.add(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(0, 1), 0.0); // structural zero
        StampTarget::clear(&mut m);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "not part of the sparsity pattern")]
    fn add_outside_pattern_panics() {
        let mut m = SparseMatrix::from_entries(2, &[(0, 0)]);
        m.add(1, 0, 1.0);
    }

    #[test]
    fn solves_small_system_with_pivoting() {
        // Leading zero forces an off-diagonal pivot.
        let mut m = SparseMatrix::from_entries(2, &[(0, 1), (1, 0), (1, 1)]);
        m.add(0, 1, 2.0);
        m.add(1, 0, 3.0);
        m.add(1, 1, 1.0);
        let mut lu = SparseLu::new();
        lu.factor(&m).unwrap();
        let mut x = vec![0.0; 2];
        lu.solve_into(&[4.0, 5.0], &mut x).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn matches_dense_on_banded_systems() {
        for (n, band, seed) in [(5, 1, 7), (40, 2, 11), (120, 3, 13)] {
            let a = banded(n, band, seed);
            let d = a.to_dense();
            let mut next = rng(seed ^ 0xabcdef);
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let want = dense_solve(&d, &b);
            let mut lu = SparseLu::new();
            lu.factor(&a).unwrap();
            let mut x = vec![0.0; n];
            lu.solve_into(&b, &mut x).unwrap();
            for (g, w) in x.iter().zip(&want) {
                assert!(
                    (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                    "n={n}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn refactor_reuses_symbolic_and_matches_full_factor() {
        let n = 60;
        let mut a = banded(n, 2, 42);
        let mut lu = SparseLu::new();
        lu.factor(&a).unwrap();

        // New values, same pattern → the refactor path runs (verified
        // by the analyzed-pattern pointer staying put) and must agree
        // with a from-scratch factorization.
        let mut next = rng(4242);
        StampTarget::clear(&mut a);
        let pat = Arc::clone(a.pattern());
        for c in 0..n {
            for p in pat.col_ptr[c]..pat.col_ptr[c + 1] {
                let r = pat.row_idx[p];
                a.add(r, c, next() + if r == c { 12.0 } else { 0.0 });
            }
        }
        lu.factor(&a).unwrap();

        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut x = vec![0.0; n];
        lu.solve_into(&b, &mut x).unwrap();
        let want = dense_solve(&a.to_dense(), &b);
        for (g, w) in x.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn refactor_falls_back_when_pivot_decays() {
        // First system: strong diagonal. Second system with the same
        // pattern: the (1,1) diagonal collapses so the recycled pivot
        // order is numerically unacceptable — factor() must fall back
        // and still solve correctly.
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let mut a = SparseMatrix::from_entries(2, &entries);
        a.add(0, 0, 4.0);
        a.add(1, 1, 4.0);
        a.add(0, 1, 1.0);
        a.add(1, 0, 1.0);
        let mut lu = SparseLu::new();
        lu.factor(&a).unwrap();

        StampTarget::clear(&mut a);
        a.add(0, 0, 1e-14);
        a.add(0, 1, 2.0);
        a.add(1, 0, 3.0);
        a.add(1, 1, 1e-14);
        lu.factor(&a).unwrap();
        let mut x = vec![0.0; 2];
        lu.solve_into(&[4.0, 6.0], &mut x).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-9, "{x:?}");
    }

    #[test]
    fn singular_matrix_rejected_and_state_cleared() {
        let mut m = SparseMatrix::from_entries(2, &[(0, 0), (1, 0)]);
        m.add(0, 0, 1.0);
        m.add(1, 0, 2.0);
        // Column 1 is structurally empty → singular.
        let mut lu = SparseLu::new();
        assert!(matches!(lu.factor(&m), Err(NumericError::SingularMatrix { .. })));
        assert!(!lu.is_factored());
        let mut x = vec![0.0; 2];
        assert!(matches!(lu.solve_into(&[1.0, 2.0], &mut x), Err(NumericError::NotFactored)));

        // The workspace must recover on a good matrix afterwards.
        let mut good = SparseMatrix::from_entries(2, &[(0, 0), (1, 1)]);
        good.add(0, 0, 2.0);
        good.add(1, 1, 4.0);
        lu.factor(&good).unwrap();
        lu.solve_into(&[2.0, 8.0], &mut x).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_checks_lengths() {
        let mut m = SparseMatrix::from_entries(2, &[(0, 0), (1, 1)]);
        m.add(0, 0, 1.0);
        m.add(1, 1, 1.0);
        let mut lu = SparseLu::new();
        lu.factor(&m).unwrap();
        let mut x2 = vec![0.0; 2];
        let mut x3 = vec![0.0; 3];
        assert!(lu.solve_into(&[1.0], &mut x2).is_err());
        assert!(lu.solve_into(&[1.0, 2.0], &mut x3).is_err());
    }

    #[test]
    fn dimension_changes_between_factors() {
        let mut lu = SparseLu::new();
        let mut small = SparseMatrix::from_entries(2, &[(0, 0), (1, 1)]);
        small.add(0, 0, 1.0);
        small.add(1, 1, 1.0);
        lu.factor(&small).unwrap();
        assert_eq!(lu.dim(), 2);

        let big = banded(30, 1, 99);
        lu.factor(&big).unwrap();
        assert_eq!(lu.dim(), 30);
        let b: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut x = vec![0.0; 30];
        lu.solve_into(&b, &mut x).unwrap();
        let r = big.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9, "{ri} vs {bi}");
        }
    }

    /// A workspace seeded with another workspace's symbolic skeleton
    /// must refactor (sharing the `Arc`, computing no new skeleton) and
    /// produce the bit-identical solution the originating workspace
    /// produces.
    #[test]
    fn seeded_symbolic_is_shared_and_bit_identical() {
        let n = 80;
        let a = banded(n, 2, 1234);
        let mut original = SparseLu::new();
        original.factor(&a).unwrap();
        let sym = original.symbolic().expect("factored workspace has a skeleton");

        let mut seeded = SparseLu::new();
        seeded.seed_symbolic(Arc::clone(&sym));
        assert!(!seeded.is_factored(), "seeding must not claim a factorization");
        seeded.factor(&a).unwrap();
        // Still the same skeleton: the seeded factor was a pure
        // numeric refactorization.
        assert!(Arc::ptr_eq(&seeded.symbolic().unwrap(), &sym));

        let mut next = rng(99);
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let (mut x0, mut x1) = (vec![0.0; n], vec![0.0; n]);
        original.solve_into(&b, &mut x0).unwrap();
        seeded.solve_into(&b, &mut x1).unwrap();
        for (u, v) in x0.iter().zip(&x1) {
            assert_eq!(u.to_bits(), v.to_bits());
        }

        // Cloning a factored workspace shares the skeleton too.
        let clone = original.clone();
        assert!(Arc::ptr_eq(&clone.symbolic().unwrap(), &sym));
    }

    /// A seeded skeleton whose pivot order is numerically unacceptable
    /// for the new values must fall back to a fresh pivoting
    /// factorization and still solve correctly.
    #[test]
    fn seeded_symbolic_falls_back_on_pivot_decay() {
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let mut a = SparseMatrix::from_entries(2, &entries);
        a.add(0, 0, 4.0);
        a.add(1, 1, 4.0);
        a.add(0, 1, 1.0);
        a.add(1, 0, 1.0);
        let mut donor = SparseLu::new();
        donor.factor(&a).unwrap();
        let sym = donor.symbolic().unwrap();

        StampTarget::clear(&mut a);
        a.add(0, 0, 1e-14);
        a.add(0, 1, 2.0);
        a.add(1, 0, 3.0);
        a.add(1, 1, 1e-14);
        let mut seeded = SparseLu::new();
        seeded.seed_symbolic(Arc::clone(&sym));
        seeded.factor(&a).unwrap();
        assert!(
            !Arc::ptr_eq(&seeded.symbolic().unwrap(), &sym),
            "decayed pivots must force a fresh skeleton"
        );
        let mut x = vec![0.0; 2];
        seeded.solve_into(&[4.0, 6.0], &mut x).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-9, "{x:?}");
    }

    /// `merged_with` must produce content-identical patterns to a
    /// from-scratch rebuild over the slot union, and return the same
    /// `Arc` when nothing new is added.
    #[test]
    fn merged_pattern_matches_rebuild() {
        let base_slots = [(0, 0), (1, 1), (2, 2), (1, 0), (0, 1), (2, 1)];
        let base = SparseMatrix::from_entries(3, &base_slots);
        // Nothing new (duplicates + existing): same Arc back.
        let same = base.pattern().merged_with(&[(0, 0), (2, 1)]);
        assert!(Arc::ptr_eq(&same, base.pattern()));

        let extra = [(2, 0), (0, 2), (2, 0)];
        let merged = base.pattern().merged_with(&extra);
        let mut all: Vec<(usize, usize)> = base_slots.to_vec();
        all.extend_from_slice(&extra);
        let rebuilt = SparseMatrix::from_entries(3, &all);
        assert_eq!(&*merged, &**rebuilt.pattern(), "merged pattern content diverged");
    }

    /// 5-point-Laplacian pattern of a `rows × cols` grid (the MNA
    /// shape of a resistive mesh), with diagonally dominant values.
    fn grid(rows: usize, cols: usize, seed: u64) -> SparseMatrix {
        let n = rows * cols;
        let at = |r: usize, c: usize| r * cols + c;
        let mut entries = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                entries.push((at(r, c), at(r, c)));
                if c + 1 < cols {
                    entries.push((at(r, c), at(r, c + 1)));
                    entries.push((at(r, c + 1), at(r, c)));
                }
                if r + 1 < rows {
                    entries.push((at(r, c), at(r + 1, c)));
                    entries.push((at(r + 1, c), at(r, c)));
                }
            }
        }
        let mut m = SparseMatrix::from_entries(n, &entries);
        let mut next = rng(seed);
        for &(i, j) in &entries {
            if i != j {
                m.add(i, j, -1.0 - 0.1 * next().abs());
            }
        }
        for i in 0..n {
            m.add(i, i, 5.0 + next().abs());
        }
        m
    }

    #[test]
    fn amd_ordering_is_a_permutation_on_degenerate_patterns() {
        let check = |m: &SparseMatrix| {
            let perm = m.pattern().amd_ordering();
            let n = m.dim();
            assert_eq!(perm.len(), n);
            let mut seen = vec![false; n];
            for &c in &perm {
                assert!(c < n && !seen[c], "{perm:?} is not a permutation");
                seen[c] = true;
            }
        };
        // Empty pattern (all columns structurally empty).
        check(&SparseMatrix::from_entries(3, &[]));
        // n = 1, diagonal only.
        check(&SparseMatrix::from_entries(1, &[(0, 0)]));
        // A dense row + a dense column over otherwise empty structure.
        let mut dense = Vec::new();
        for j in 0..6 {
            dense.push((2, j));
            dense.push((j, 4));
        }
        check(&SparseMatrix::from_entries(6, &dense));
        // Unsymmetric pattern.
        check(&SparseMatrix::from_entries(4, &[(0, 3), (1, 0), (2, 2), (3, 1)]));
        check(&grid(5, 7, 3));
    }

    #[test]
    fn amd_ordered_factor_matches_dense_on_grid_and_banded() {
        for (a, seed) in [(grid(6, 6, 21), 77u64), (banded(50, 2, 9), 78)] {
            let n = a.dim();
            let mut next = rng(seed);
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let want = dense_solve(&a.to_dense(), &b);
            let mut lu = SparseLu::new();
            lu.set_ordering(a.pattern().amd_ordering());
            lu.factor(&a).unwrap();
            let sym = lu.symbolic().unwrap();
            assert_eq!(sym.ordering(), a.pattern().amd_ordering());
            let mut x = vec![0.0; n];
            lu.solve_into(&b, &mut x).unwrap();
            for (g, w) in x.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{g} vs {w}");
            }
        }
    }

    #[test]
    fn amd_reduces_grid_fill() {
        // The reduction grows with the grid (natural row-major fill is
        // O(n·√n), minimum degree ≈ O(n·log n)): 1.9× at 16×16, 2.2×
        // at 20×20, 2.7× at 32×32. 24×24 pins a comfortable ≥2×.
        let a = grid(24, 24, 5);
        let mut natural = SparseLu::new();
        natural.factor(&a).unwrap();
        let mut amd = SparseLu::new();
        amd.set_ordering(a.pattern().amd_ordering());
        amd.factor(&a).unwrap();
        let (fn_, fa) = (
            natural.symbolic().unwrap().fill_nnz(),
            amd.symbolic().unwrap().fill_nnz(),
        );
        assert!(
            fa * 2 <= fn_,
            "amd fill {fa} must at least halve natural fill {fn_} on a 24×24 grid"
        );
        assert!(!natural.symbolic().unwrap().is_permuted());
        assert!(amd.symbolic().unwrap().is_permuted());
    }

    /// An ordered factorization must refactor (same skeleton, same
    /// ordering) on new values with the same pattern, and a seeded
    /// workspace must solve bit-identically to the donor.
    #[test]
    fn ordered_refactor_and_seeding_keep_the_ordering() {
        let mut a = grid(8, 8, 31);
        let n = a.dim();
        let mut lu = SparseLu::new();
        lu.set_ordering(a.pattern().amd_ordering());
        lu.factor(&a).unwrap();
        let sym = lu.symbolic().unwrap();
        assert!(sym.is_permuted());

        // New values, same pattern → refactor path, same skeleton.
        let pat = Arc::clone(a.pattern());
        StampTarget::clear(&mut a);
        let mut next = rng(131);
        for c in 0..n {
            for p in pat.col_ptr[c]..pat.col_ptr[c + 1] {
                let r = pat.row_idx[p];
                a.add(r, c, next() + if r == c { 9.0 } else { 0.0 });
            }
        }
        lu.factor(&a).unwrap();
        assert!(Arc::ptr_eq(&lu.symbolic().unwrap(), &sym), "refactor must keep the skeleton");

        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let want = dense_solve(&a.to_dense(), &b);
        let mut x = vec![0.0; n];
        lu.solve_into(&b, &mut x).unwrap();
        for (g, w) in x.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{g} vs {w}");
        }

        // A seeded workspace (no ordering set of its own) inherits the
        // permuted skeleton and solves bit-identically.
        let mut seeded = SparseLu::new();
        seeded.seed_symbolic(Arc::clone(&sym));
        seeded.factor(&a).unwrap();
        assert!(Arc::ptr_eq(&seeded.symbolic().unwrap(), &sym));
        let mut y = vec![0.0; n];
        seeded.solve_into(&b, &mut y).unwrap();
        for (u, v) in x.iter().zip(&y) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    /// Requesting a different ordering on an already-factored workspace
    /// must not be silently ignored by the same-pattern refactor fast
    /// path: the next factor re-analyzes under the new permutation.
    #[test]
    fn set_ordering_overrides_a_stored_skeleton() {
        let a = grid(6, 6, 11);
        let mut lu = SparseLu::new();
        lu.factor(&a).unwrap();
        assert!(!lu.symbolic().unwrap().is_permuted());

        let perm = a.pattern().amd_ordering();
        lu.set_ordering(perm.clone());
        assert!(!lu.is_factored(), "a differing ordering drops the stored factorization");
        lu.factor(&a).unwrap();
        assert_eq!(lu.symbolic().unwrap().ordering(), perm);

        // Re-requesting the ordering already in use keeps the skeleton
        // (and the factorization).
        let sym = lu.symbolic().unwrap();
        lu.set_ordering(perm);
        assert!(lu.is_factored());
        assert!(Arc::ptr_eq(&lu.symbolic().unwrap(), &sym));

        let b: Vec<f64> = (0..a.dim()).map(|i| (i as f64).sin()).collect();
        let want = dense_solve(&a.to_dense(), &b);
        let mut x = vec![0.0; a.dim()];
        lu.solve_into(&b, &mut x).unwrap();
        for (g, w) in x.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_ordering_is_rejected() {
        let mut m = SparseMatrix::from_entries(2, &[(0, 0), (1, 1)]);
        m.add(0, 0, 1.0);
        m.add(1, 1, 1.0);
        let mut lu = SparseLu::new();
        lu.set_ordering(vec![0, 0]);
        let _ = lu.factor(&m);
    }

    #[test]
    fn ladder_like_mna_pattern_has_low_fill() {
        // Tridiagonal + one dense-ish source branch row, mimicking the
        // ladder macro's MNA structure; the point: factor + solve work
        // and the residual is tiny at a size dense LU would feel.
        let n = 400;
        let mut entries = Vec::new();
        for i in 0..n - 1 {
            entries.push((i, i));
            if i > 0 {
                entries.push((i, i - 1));
                entries.push((i - 1, i));
            }
        }
        // Branch row couples node 0 and the branch unknown n-1.
        entries.push((n - 1, 0));
        entries.push((0, n - 1));
        entries.push((n - 1, n - 1));
        let mut m = SparseMatrix::from_entries(n, &entries);
        let mut next = rng(17);
        for i in 0..n - 1 {
            m.add(i, i, 4.0 + next().abs());
            if i > 0 {
                m.add(i, i - 1, -1.0);
                m.add(i - 1, i, -1.0);
            }
        }
        m.add(n - 1, 0, 1.0);
        m.add(0, n - 1, 1.0);
        m.add(n - 1, n - 1, 0.5);
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut lu = SparseLu::new();
        lu.factor(&m).unwrap();
        let mut x = vec![0.0; n];
        lu.solve_into(&b, &mut x).unwrap();
        let r = m.mul_vec(&x).unwrap();
        let resid =
            r.iter().zip(&b).map(|(ri, bi)| (ri - bi).abs()).fold(0.0_f64, f64::max);
        assert!(resid < 1e-9, "residual {resid}");
    }

    /// A cascade of dense `bs`-sized diagonal blocks where each block
    /// feeds the previous one through a single coupling entry — the
    /// sparse analogue of a chain of amplifier stages. Block upper
    /// triangular in natural order, so BTF must find `count` blocks.
    fn block_cascade(count: usize, bs: usize, seed: u64) -> SparseMatrix {
        let n = count * bs;
        let mut entries = Vec::new();
        for blk in 0..count {
            let s = blk * bs;
            for r in 0..bs {
                for c in 0..bs {
                    entries.push((s + r, s + c));
                }
            }
            if blk > 0 {
                // Coupling from this block's first column up into the
                // previous block's last row.
                entries.push((s - 1, s));
            }
        }
        let mut m = SparseMatrix::from_entries(n, &entries);
        let mut next = rng(seed);
        for &(r, c) in &entries {
            m.add(r, c, next());
        }
        for i in 0..n {
            m.add(i, i, 3.0 * bs as f64);
        }
        m
    }

    #[test]
    fn btf_factor_matches_dense_on_block_cascade() {
        for (count, bs, seed) in [(6, 4, 3), (12, 7, 91), (30, 3, 55)] {
            let a = block_cascade(count, bs, seed);
            let n = a.dim();
            let order = a.pattern().btf_order().expect("structurally nonsingular");
            assert_eq!(order.block_count(), count, "cascade should condense per stage");
            let mut next = rng(seed ^ 0x5eed);
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let want = dense_solve(&a.to_dense(), &b);
            let mut lu = SparseLu::new();
            lu.set_btf_order(Arc::new(order));
            lu.factor(&a).unwrap();
            let sym = lu.symbolic().unwrap();
            assert_eq!(sym.block_count(), count);
            assert!(sym.off_nnz() > 0, "cascade couplings must be stored off-diagonal");
            let mut x = vec![0.0; n];
            lu.solve_into(&b, &mut x).unwrap();
            for (g, w) in x.iter().zip(&want) {
                assert!(
                    (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                    "count={count} bs={bs}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn btf_refactor_matches_full_factor_and_is_thread_invariant() {
        let (count, bs) = (10, 5);
        let mut a = block_cascade(count, bs, 77);
        let n = a.dim();
        let order = Arc::new(a.pattern().btf_order().unwrap());

        let mut lu = SparseLu::new();
        lu.set_btf_order(Arc::clone(&order));
        lu.factor(&a).unwrap();
        let sym = lu.symbolic().unwrap();

        // Restamp new values on the same pattern → refactor path.
        let mut next = rng(0xbeef);
        StampTarget::clear(&mut a);
        let pat = Arc::clone(a.pattern());
        for c in 0..n {
            for p in pat.col_ptr[c]..pat.col_ptr[c + 1] {
                let r = pat.row_idx[p];
                a.add(r, c, next() + if r == c { 20.0 } else { 0.0 });
            }
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();

        // Serial refactor in the original workspace.
        lu.factor(&a).unwrap();
        assert!(
            Arc::ptr_eq(&lu.symbolic().unwrap(), &sym),
            "same pattern must replay the skeleton"
        );
        let mut x1 = vec![0.0; n];
        lu.solve_into(&b, &mut x1).unwrap();

        // From-scratch BTF factorization must agree to the last bit
        // with the refactor replay of the same values... not required
        // in general, but threads 1 vs N over the same skeleton is:
        for threads in [2usize, 4, 16] {
            let mut lut = SparseLu::new();
            lut.seed_symbolic(Arc::clone(&sym));
            lut.set_threads(threads);
            lut.factor(&a).unwrap();
            let mut xt = vec![0.0; n];
            lut.solve_into(&b, &mut xt).unwrap();
            for (i, (p, q)) in x1.iter().zip(&xt).enumerate() {
                assert_eq!(
                    p.to_bits(),
                    q.to_bits(),
                    "threads={threads} diverged at component {i}: {p} vs {q}"
                );
            }
        }

        // And the dense reference keeps everyone honest.
        let want = dense_solve(&a.to_dense(), &b);
        for (g, w) in x1.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn btf_single_block_is_bit_identical_to_plain_ordering() {
        // A fully coupled (single-SCC) banded matrix: BTF degenerates
        // to one block whose local AMD is the same permutation the
        // plain AMD path uses — the factorization and solve must be
        // bit-for-bit the path that existed before BTF.
        let n = 80;
        let a = banded(n, 2, 23);
        let order = a.pattern().btf_order().unwrap();
        assert_eq!(order.block_count(), 1);
        let amd = a.pattern().amd_ordering();
        assert_eq!(order.colperm(), &amd[..], "single-block local AMD = global AMD");

        let mut next = rng(0x0dd);
        let b: Vec<f64> = (0..n).map(|_| next()).collect();

        let mut plain = SparseLu::new();
        plain.set_ordering(amd);
        plain.factor(&a).unwrap();
        let mut xp = vec![0.0; n];
        plain.solve_into(&b, &mut xp).unwrap();

        let mut btf = SparseLu::new();
        btf.set_btf_order(Arc::new(order));
        btf.set_threads(8); // single block: must stay on the serial path
        btf.factor(&a).unwrap();
        assert_eq!(btf.symbolic().unwrap().fill_nnz(), plain.symbolic().unwrap().fill_nnz());
        let mut xb = vec![0.0; n];
        btf.solve_into(&b, &mut xb).unwrap();

        for (p, q) in xp.iter().zip(&xb) {
            assert_eq!(p.to_bits(), q.to_bits(), "{p} vs {q}");
        }
    }

    #[test]
    fn btf_parallel_refactor_falls_back_on_decayed_pivot() {
        // Factor a healthy cascade, then restamp values that flip a
        // block's pivot dominance; the refactor (serial and parallel)
        // must reject the stale pivot and the fallback full
        // factorization must still produce a correct solve.
        let (count, bs) = (4, 3);
        let mut a = block_cascade(count, bs, 5);
        let n = a.dim();
        let order = Arc::new(a.pattern().btf_order().unwrap());
        let mut lu = SparseLu::new();
        lu.set_btf_order(Arc::clone(&order));
        lu.set_threads(4);
        lu.factor(&a).unwrap();

        let pat = Arc::clone(a.pattern());
        StampTarget::clear(&mut a);
        let mut next = rng(0xfade);
        for c in 0..n {
            for p in pat.col_ptr[c]..pat.col_ptr[c + 1] {
                let r = pat.row_idx[p];
                // Strong *off*-diagonal values, weak diagonal: the
                // recycled diagonal-preference pivots decay.
                m_add_scaled(&mut a, r, c, next(), r == c);
            }
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        lu.factor(&a).unwrap();
        let mut x = vec![0.0; n];
        lu.solve_into(&b, &mut x).unwrap();
        let want = dense_solve(&a.to_dense(), &b);
        for (g, w) in x.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-8 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    fn m_add_scaled(m: &mut SparseMatrix, r: usize, c: usize, v: f64, diag: bool) {
        if diag {
            m.add(r, c, v * 1e-10);
        } else {
            m.add(r, c, 10.0 + v);
        }
    }
}

