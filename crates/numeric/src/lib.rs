//! Dense *and sparse* linear algebra plus derivative-free minimization
//! for `castg`.
//!
//! This crate provides the numerical substrate used by the rest of the
//! workspace:
//!
//! * [`Matrix`] — a small dense row-major matrix with an in-place LU
//!   factorization ([`LuFactors`]) used by the MNA circuit simulator.
//! * [`LuWorkspace`] — reusable dense factor/solve buffers for hot
//!   loops (Newton iterations re-factor the same-sized system hundreds
//!   of times; the workspace makes each cycle allocation-free).
//! * [`SparseMatrix`] / [`SparseLu`] — the sparse (CSC) counterpart for
//!   large systems: a pattern-fixed stamping target plus a left-looking
//!   LU with threshold partial pivoting and KLU-style numeric
//!   refactorization. The symbolic skeleton ([`SparseSymbolic`]: fill
//!   structure, pivot order and column ordering) lives behind an `Arc`
//!   and is shareable across workspaces ([`SparseLu::seed_symbolic`]),
//!   so fault campaigns pay one symbolic analysis per circuit variant
//!   instead of one per solve. A fill-reducing **approximate minimum
//!   degree** column ordering ([`SparsePattern::amd_ordering`], applied
//!   via [`SparseLu::set_ordering`]) keeps mesh/crossbar-shaped systems
//!   — whose natural-order fill is O(n·√n) — factoring with near-linear
//!   fill; ladder/chain systems stay in natural order, bit-identical to
//!   before orderings existed. See [`sparse`] for the architecture
//!   notes.
//! * [`StampTarget`] — the stamping abstraction both matrix types
//!   implement, so one circuit-assembly routine drives either solver.
//! * [`brent_min`] — Brent's derivative-free one-dimensional minimizer
//!   (golden-section with parabolic interpolation), the method the paper
//!   uses for single-parameter test configurations.
//! * [`powell_min`] — Powell's direction-set method for multi-parameter
//!   configurations, with bound constraints handled by restricting every
//!   line search to the feasible segment.
//! * [`Bounds`] / [`ParamSpace`] — rectangular parameter domains with
//!   normalization helpers.
//! * [`grid`] — sweep helpers used to compute tps-graphs.
//! * [`stats`] — small statistics helpers (mean, standard deviation,
//!   percentiles) used by the tolerance-box calibration.
//!
//! # Dense or sparse?
//!
//! Dense LU is O(n³) with tiny constants — unbeatable for macro-sized
//! MNA systems (n ≲ 64–128), where the whole matrix fits in L1/L2 and
//! index chasing would dominate. The sparse path wins when the system
//! is both *large* and *structurally sparse*: assembly touches O(nnz)
//! slots instead of clearing n² entries, factorization cost follows the
//! fill (linear in n for the banded/tree-like matrices real netlists
//! produce), and the symbolic skeleton — fill pattern, pivot order,
//! traversal order — is computed once per pattern and replayed
//! numerically by every subsequent factorization. The circuit simulator
//! (`castg-spice`) automates the choice per circuit: sparse iff
//! `n ≥ 64` and `nnz/n² ≤ 0.25`, overridable through its
//! `AnalysisOptions::solver`. A differential test harness
//! (`tests/sparse_differential.rs`, `crates/numeric/tests/
//! proptest_sparse.rs`) pins the two paths to 1e-9 relative agreement.
//!
//! # Orderings and block-triangular decomposition
//!
//! The sparse factorization supports three preorderings, in increasing
//! structural ambition:
//!
//! * **Natural** — factor in stamping order. Optimal for banded
//!   (ladder/chain) patterns, where any permutation only adds fill.
//! * **AMD** ([`SparsePattern::amd_ordering`]) — a global approximate
//!   minimum degree column ordering. Cuts mesh/crossbar factor fill by
//!   2–3× (the committed `BENCH_campaign.json` records 2.4× on a 578-
//!   unknown mesh) at the price of a one-time symbolic analysis.
//! * **BTF** ([`SparsePattern::btf_order`], applied via
//!   [`SparseLu::set_btf_order`]) — the KLU-style block-triangular
//!   decomposition: a maximum transversal
//!   ([`SparsePattern::max_transversal`], Duff's MC21) puts a zero-free
//!   diagonal on the pattern, Tarjan's SCC condensation of the resulting
//!   digraph yields a block *upper* triangular permutation, and each
//!   diagonal block gets its own local AMD ordering. Only the diagonal
//!   blocks are factored — off-diagonal coupling entries are stored raw
//!   and retired during back-substitution in reverse block order — so
//!   fill cannot spread across blocks, pivoting stays block-local, and
//!   *independent* diagonal blocks can be refactored on scoped worker
//!   threads ([`SparseLu::set_threads`]) with bit-identical results at
//!   any thread count. The win case is one-directional macro chains
//!   (cascaded stages whose DC pattern has no feedback): a 512-unknown
//!   OTA chain condenses into ~260 blocks of size ≤ 2 and its DC solve
//!   runs ~10 % faster than global AMD; on irreducible patterns
//!   (meshes, feedback loops) the condensation finds one block and the
//!   caller should fall back to AMD — `castg-spice`'s `OrderingKind`
//!   dispatch does exactly that.
//!
//! The block structure travels inside the shared [`SparseSymbolic`]
//! ([`SparseSymbolic::blocks`], [`SparseSymbolic::block_fill`]), so
//! campaign variants inherit the decomposition with the symbolic
//! skeleton.
//!
//! # Example
//!
//! ```
//! use castg_numeric::{brent_min, BrentOptions};
//!
//! let f = |x: f64| (x - 2.0).powi(2) + 1.0;
//! let m = brent_min(f, 0.0, 5.0, &BrentOptions::default());
//! assert!((m.x - 2.0).abs() < 1e-8);
//! assert!((m.value - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod brent;
pub mod btf;
pub mod complex;
mod error;
pub mod grid;
mod lu;
mod matrix;
mod powell;
pub mod sparse;
pub mod stats;

pub use bounds::{Bounds, ParamSpace};
pub use btf::BtfOrder;
pub use brent::{brent_min, golden_section_min, BrentOptions, Minimum};
pub use complex::{CMatrix, Complex};
pub use error::NumericError;
pub use lu::{LuFactors, LuWorkspace};
pub use matrix::Matrix;
pub use powell::{powell_min, PowellOptions, PowellResult};
pub use sparse::{SparseLu, SparseMatrix, SparsePattern, SparseSymbolic, StampTarget};
