//! Dense linear algebra and derivative-free minimization for `castg`.
//!
//! This crate provides the numerical substrate used by the rest of the
//! workspace:
//!
//! * [`Matrix`] — a small dense row-major matrix with an in-place LU
//!   factorization ([`LuFactors`]) used by the MNA circuit simulator.
//! * [`LuWorkspace`] — reusable factor/solve buffers for hot loops
//!   (Newton iterations re-factor the same-sized system hundreds of
//!   times; the workspace makes each cycle allocation-free).
//! * [`brent_min`] — Brent's derivative-free one-dimensional minimizer
//!   (golden-section with parabolic interpolation), the method the paper
//!   uses for single-parameter test configurations.
//! * [`powell_min`] — Powell's direction-set method for multi-parameter
//!   configurations, with bound constraints handled by restricting every
//!   line search to the feasible segment.
//! * [`Bounds`] / [`ParamSpace`] — rectangular parameter domains with
//!   normalization helpers.
//! * [`grid`] — sweep helpers used to compute tps-graphs.
//! * [`stats`] — small statistics helpers (mean, standard deviation,
//!   percentiles) used by the tolerance-box calibration.
//!
//! # Example
//!
//! ```
//! use castg_numeric::{brent_min, BrentOptions};
//!
//! let f = |x: f64| (x - 2.0).powi(2) + 1.0;
//! let m = brent_min(f, 0.0, 5.0, &BrentOptions::default());
//! assert!((m.x - 2.0).abs() < 1e-8);
//! assert!((m.value - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod brent;
pub mod complex;
mod error;
pub mod grid;
mod lu;
mod matrix;
mod powell;
pub mod stats;

pub use bounds::{Bounds, ParamSpace};
pub use brent::{brent_min, golden_section_min, BrentOptions, Minimum};
pub use complex::{CMatrix, Complex};
pub use error::NumericError;
pub use lu::{LuFactors, LuWorkspace};
pub use matrix::Matrix;
pub use powell::{powell_min, PowellOptions, PowellResult};
