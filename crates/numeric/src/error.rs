use std::error::Error;
use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericError {
    /// A linear system could not be solved because the matrix is singular
    /// (or numerically singular) at the given pivot column.
    SingularMatrix {
        /// Column index at which elimination found no usable pivot, in
        /// the matrix's **original** (unpermuted) column space — sparse
        /// factorizations map their fill-reducing/BTF pivot position
        /// back before reporting, so callers can name the unknown.
        pivot: usize,
    },
    /// Matrix or vector dimensions do not agree for the requested operation.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// An interval or bound specification is empty or inverted.
    InvalidInterval {
        /// Lower edge as supplied.
        lo: f64,
        /// Upper edge as supplied.
        hi: f64,
    },
    /// The objective function returned a non-finite value at the point
    /// where the optimizer had to evaluate it.
    NonFiniteObjective {
        /// A human-readable description of where the evaluation happened.
        at: String,
    },
    /// A solve was requested from a workspace that holds no (successful)
    /// factorization.
    NotFactored,
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            NumericError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumericError::InvalidInterval { lo, hi } => {
                write!(f, "invalid interval [{lo}, {hi}]")
            }
            NumericError::NonFiniteObjective { at } => {
                write!(f, "objective returned a non-finite value at {at}")
            }
            NumericError::NotFactored => {
                write!(f, "workspace holds no factorization (factor_in_place first)")
            }
        }
    }
}

impl Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            NumericError::SingularMatrix { pivot: 3 },
            NumericError::DimensionMismatch { expected: 4, actual: 2 },
            NumericError::InvalidInterval { lo: 1.0, hi: 0.0 },
            NumericError::NonFiniteObjective { at: "x = [0, 1]".into() },
            NumericError::NotFactored,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
