use crate::NumericError;

/// A closed interval `[lo, hi]` bounding one test parameter.
///
/// The paper requires every test parameter to stay inside constraint
/// values "determined by the specifications of the macro and the test
/// equipment" (§3.1); `Bounds` is that constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    lo: f64,
    hi: f64,
}

impl Bounds {
    /// Creates a bound, validating `lo <= hi` and finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInterval`] if the interval is
    /// inverted or non-finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, NumericError> {
        if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
            return Err(NumericError::InvalidInterval { lo, hi });
        }
        Ok(Bounds { lo, hi })
    }

    /// Lower edge.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Interval width (`hi - lo`).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `x` lies inside the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Clamps `x` into the interval.
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }

    /// Maps `x` to `[0, 1]` (0 at `lo`, 1 at `hi`).
    ///
    /// A degenerate interval maps every point to `0`.
    pub fn normalize(&self, x: f64) -> f64 {
        if self.width() == 0.0 {
            0.0
        } else {
            (x - self.lo) / self.width()
        }
    }

    /// Inverse of [`Bounds::normalize`].
    pub fn denormalize(&self, u: f64) -> f64 {
        self.lo + u * self.width()
    }
}

/// A rectangular domain for a vector of test parameters.
///
/// # Example
///
/// ```
/// use castg_numeric::{Bounds, ParamSpace};
///
/// let space = ParamSpace::new(vec![
///     Bounds::new(0.0, 40e-6)?,   // Iin_dc
///     Bounds::new(1e3, 100e3)?,   // freq
/// ]);
/// assert_eq!(space.dim(), 2);
/// assert!(space.contains(&[20e-6, 50e3]));
/// assert!(!space.contains(&[20e-6, 200e3]));
/// # Ok::<(), castg_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    dims: Vec<Bounds>,
}

impl ParamSpace {
    /// Creates a parameter space from per-dimension bounds.
    pub fn new(dims: Vec<Bounds>) -> Self {
        ParamSpace { dims }
    }

    /// Number of parameters.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Bounds of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bounds(&self, i: usize) -> Bounds {
        self.dims[i]
    }

    /// Iterates over the per-dimension bounds.
    pub fn iter(&self) -> impl Iterator<Item = &Bounds> {
        self.dims.iter()
    }

    /// Whether the point lies inside the domain (and has the right
    /// dimension).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dims.len() && x.iter().zip(&self.dims).all(|(xi, b)| b.contains(*xi))
    }

    /// Clamps every coordinate into its bound.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn clamp(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dims.len(), "dimension mismatch");
        x.iter().zip(&self.dims).map(|(xi, b)| b.clamp(*xi)).collect()
    }

    /// Center of the domain.
    pub fn center(&self) -> Vec<f64> {
        self.dims.iter().map(Bounds::mid).collect()
    }

    /// Maps a point to the unit hypercube.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dims.len(), "dimension mismatch");
        x.iter().zip(&self.dims).map(|(xi, b)| b.normalize(*xi)).collect()
    }

    /// Inverse of [`ParamSpace::normalize`].
    ///
    /// # Panics
    ///
    /// Panics if `u` has the wrong dimension.
    pub fn denormalize(&self, u: &[f64]) -> Vec<f64> {
        assert_eq!(u.len(), self.dims.len(), "dimension mismatch");
        u.iter().zip(&self.dims).map(|(ui, b)| b.denormalize(*ui)).collect()
    }

    /// Largest `t`-interval `[t_lo, t_hi]` such that `x + t·d` stays inside
    /// the domain for all `t` in the interval. Returns `None` if `x` itself
    /// is outside, or if `d` is (numerically) the zero direction.
    ///
    /// This is how the bounded Powell line search restricts Brent's method
    /// to the feasible segment.
    pub fn line_extent(&self, x: &[f64], d: &[f64]) -> Option<(f64, f64)> {
        if !self.contains(x) {
            return None;
        }
        let mut t_lo = f64::NEG_INFINITY;
        let mut t_hi = f64::INFINITY;
        let mut any_direction = false;
        for ((xi, di), b) in x.iter().zip(d).zip(&self.dims) {
            if di.abs() < 1e-300 {
                continue;
            }
            any_direction = true;
            let t1 = (b.lo() - xi) / di;
            let t2 = (b.hi() - xi) / di;
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            t_lo = t_lo.max(lo);
            t_hi = t_hi.min(hi);
        }
        if !any_direction || t_lo > t_hi {
            None
        } else {
            Some((t_lo, t_hi))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space2() -> ParamSpace {
        ParamSpace::new(vec![Bounds::new(0.0, 10.0).unwrap(), Bounds::new(-1.0, 1.0).unwrap()])
    }

    #[test]
    fn bounds_rejects_inverted_and_nonfinite() {
        assert!(Bounds::new(1.0, 0.0).is_err());
        assert!(Bounds::new(f64::NAN, 1.0).is_err());
        assert!(Bounds::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn bounds_basic_queries() {
        let b = Bounds::new(2.0, 6.0).unwrap();
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.mid(), 4.0);
        assert!(b.contains(2.0) && b.contains(6.0));
        assert!(!b.contains(6.0001));
        assert_eq!(b.clamp(100.0), 6.0);
        assert_eq!(b.clamp(-100.0), 2.0);
    }

    #[test]
    fn normalize_roundtrip() {
        let b = Bounds::new(-3.0, 5.0).unwrap();
        for x in [-3.0, 0.0, 2.5, 5.0] {
            let u = b.normalize(x);
            assert!((0.0..=1.0).contains(&u));
            assert!((b.denormalize(u) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_bounds_normalize_to_zero() {
        let b = Bounds::new(4.0, 4.0).unwrap();
        assert_eq!(b.normalize(4.0), 0.0);
        assert_eq!(b.denormalize(0.7), 4.0);
    }

    #[test]
    fn space_contains_and_clamp() {
        let s = space2();
        assert!(s.contains(&[5.0, 0.0]));
        assert!(!s.contains(&[5.0, 2.0]));
        assert!(!s.contains(&[5.0])); // wrong dimension
        assert_eq!(s.clamp(&[20.0, -5.0]), vec![10.0, -1.0]);
        assert_eq!(s.center(), vec![5.0, 0.0]);
    }

    #[test]
    fn space_normalize_roundtrip() {
        let s = space2();
        let x = vec![7.5, -0.25];
        let u = s.normalize(&x);
        let back = s.denormalize(&u);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn line_extent_axis_aligned() {
        let s = space2();
        let (lo, hi) = s.line_extent(&[5.0, 0.0], &[1.0, 0.0]).unwrap();
        assert_eq!((lo, hi), (-5.0, 5.0));
    }

    #[test]
    fn line_extent_diagonal() {
        let s = space2();
        let (lo, hi) = s.line_extent(&[5.0, 0.0], &[1.0, 1.0]).unwrap();
        // x stays in [0,10] for t in [-5,5]; y stays in [-1,1] for t in [-1,1].
        assert_eq!((lo, hi), (-1.0, 1.0));
    }

    #[test]
    fn line_extent_from_edge_is_one_sided() {
        let s = space2();
        let (lo, hi) = s.line_extent(&[0.0, 0.0], &[1.0, 0.0]).unwrap();
        assert_eq!((lo, hi), (0.0, 10.0));
    }

    #[test]
    fn line_extent_rejects_outside_point_and_zero_direction() {
        let s = space2();
        assert!(s.line_extent(&[50.0, 0.0], &[1.0, 0.0]).is_none());
        assert!(s.line_extent(&[5.0, 0.0], &[0.0, 0.0]).is_none());
    }
}
