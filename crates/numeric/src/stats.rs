//! Small statistics helpers used by the tolerance-box calibration.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation (Bessel-corrected); `None` for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Maximum absolute value; `0.0` for an empty slice.
pub fn max_abs(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Linearly interpolated percentile `p ∈ [0, 100]` of the samples.
///
/// Returns `None` for an empty slice. NaN samples are excluded; if all
/// samples are NaN the result is `None`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(v[lo] + (v[hi] - v[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn std_dev_of_known_values() {
        // Sample std-dev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138.
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.138).abs() < 1e-3);
        assert_eq!(std_dev(&[1.0]), None);
    }

    #[test]
    fn max_abs_handles_negatives() {
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn percentile_median_and_extremes() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0), Some(2.5));
    }

    #[test]
    fn percentile_skips_nan() {
        let xs = [f64::NAN, 1.0, 2.0];
        assert_eq!(percentile(&xs, 100.0), Some(2.0));
        assert_eq!(percentile(&[f64::NAN], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_validates_p() {
        percentile(&[1.0], 150.0);
    }
}
