//! Sweep grids used to compute tps-graphs (Figs. 2–4 of the paper).

/// Returns `n` evenly spaced values covering `[lo, hi]` inclusive.
///
/// `n == 0` yields an empty vector; `n == 1` yields `[lo]`.
///
/// # Example
///
/// ```
/// let xs = castg_numeric::grid::linspace(0.0, 1.0, 5);
/// assert_eq!(xs, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![lo],
        _ => {
            let step = (hi - lo) / (n - 1) as f64;
            (0..n).map(|i| lo + step * i as f64).collect()
        }
    }
}

/// Returns `n` logarithmically spaced values covering `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo <= 0` or `hi <= 0` — logarithmic spacing needs positive
/// endpoints (frequency axes always satisfy this).
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "logspace requires positive endpoints, got [{lo}, {hi}]");
    linspace(lo.ln(), hi.ln(), n).into_iter().map(f64::exp).collect()
}

/// A two-dimensional rectangular sweep grid with row-major cell storage.
///
/// The tps-graphs of the paper are exactly this: a grid over two test
/// parameters with a sensitivity value per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2d {
    xs: Vec<f64>,
    ys: Vec<f64>,
    values: Vec<f64>,
}

impl Grid2d {
    /// Builds a grid by evaluating `f(x, y)` at every grid point.
    pub fn evaluate<F: FnMut(f64, f64) -> f64>(xs: Vec<f64>, ys: Vec<f64>, mut f: F) -> Self {
        let mut values = Vec::with_capacity(xs.len() * ys.len());
        for y in &ys {
            for x in &xs {
                values.push(f(*x, *y));
            }
        }
        Grid2d { xs, ys, values }
    }

    /// Builds a grid from precomputed row-major values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != xs.len() * ys.len()`.
    pub fn from_values(xs: Vec<f64>, ys: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), xs.len() * ys.len(), "value count must match grid size");
        Grid2d { xs, ys, values }
    }

    /// The x-axis sample positions.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y-axis sample positions.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Value at grid index `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn value(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.xs.len() && iy < self.ys.len(), "grid index out of bounds");
        self.values[iy * self.xs.len() + ix]
    }

    /// Minimum value and its `(x, y)` location.
    ///
    /// Returns `None` for an empty grid or a grid of only NaNs.
    pub fn min(&self) -> Option<(f64, f64, f64)> {
        let mut best: Option<(f64, f64, f64)> = None;
        for (iy, y) in self.ys.iter().enumerate() {
            for (ix, x) in self.xs.iter().enumerate() {
                let v = self.values[iy * self.xs.len() + ix];
                if v.is_nan() {
                    continue;
                }
                if best.is_none_or(|(_, _, bv)| v < bv) {
                    best = Some((*x, *y, v));
                }
            }
        }
        best
    }

    /// Maximum value and its `(x, y)` location (NaNs skipped).
    pub fn max(&self) -> Option<(f64, f64, f64)> {
        let mut best: Option<(f64, f64, f64)> = None;
        for (iy, y) in self.ys.iter().enumerate() {
            for (ix, x) in self.xs.iter().enumerate() {
                let v = self.values[iy * self.xs.len() + ix];
                if v.is_nan() {
                    continue;
                }
                if best.is_none_or(|(_, _, bv)| v > bv) {
                    best = Some((*x, *y, v));
                }
            }
        }
        best
    }

    /// Iterates `(x, y, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.ys.iter().enumerate().flat_map(move |(iy, y)| {
            self.xs
                .iter()
                .enumerate()
                .map(move |(ix, x)| (*x, *y, self.values[iy * self.xs.len() + ix]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_count() {
        let v = linspace(-1.0, 1.0, 11);
        assert_eq!(v.len(), 11);
        assert_eq!(v[0], -1.0);
        assert_eq!(*v.last().unwrap(), 1.0);
    }

    #[test]
    fn linspace_edge_cases() {
        assert!(linspace(0.0, 1.0, 0).is_empty());
        assert_eq!(linspace(3.0, 9.0, 1), vec![3.0]);
    }

    #[test]
    fn logspace_is_geometric() {
        let v = logspace(1.0, 100.0, 3);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 10.0).abs() < 1e-9);
        assert!((v[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive endpoints")]
    fn logspace_rejects_nonpositive() {
        logspace(0.0, 10.0, 3);
    }

    #[test]
    fn grid_evaluate_and_lookup() {
        let g = Grid2d::evaluate(vec![0.0, 1.0], vec![0.0, 2.0], |x, y| x + 10.0 * y);
        assert_eq!(g.value(0, 0), 0.0);
        assert_eq!(g.value(1, 0), 1.0);
        assert_eq!(g.value(0, 1), 20.0);
        assert_eq!(g.value(1, 1), 21.0);
    }

    #[test]
    fn grid_min_max() {
        let g = Grid2d::evaluate(vec![0.0, 1.0, 2.0], vec![0.0, 1.0], |x, y| {
            (x - 1.0).powi(2) + (y - 1.0).powi(2)
        });
        let (x, y, v) = g.min().unwrap();
        assert_eq!((x, y, v), (1.0, 1.0, 0.0));
        let (x, y, v) = g.max().unwrap();
        assert_eq!((x, y), (0.0, 0.0));
        assert_eq!(v, 2.0);
    }

    #[test]
    fn grid_min_skips_nan() {
        let g = Grid2d::from_values(vec![0.0, 1.0], vec![0.0], vec![f64::NAN, 5.0]);
        assert_eq!(g.min().unwrap(), (1.0, 0.0, 5.0));
    }

    #[test]
    fn grid_iter_visits_every_cell() {
        let g = Grid2d::evaluate(vec![0.0, 1.0], vec![0.0, 1.0, 2.0], |x, y| x * y);
        assert_eq!(g.iter().count(), 6);
    }

    #[test]
    #[should_panic(expected = "value count")]
    fn from_values_validates_size() {
        Grid2d::from_values(vec![0.0], vec![0.0], vec![1.0, 2.0]);
    }
}
