//! Property-based tests for the numeric substrate.

use castg_numeric::{
    brent_min, golden_section_min, powell_min, BrentOptions, Bounds, LuFactors, LuWorkspace,
    Matrix, ParamSpace, PowellOptions,
};
use proptest::prelude::*;

/// Builds a random diagonally dominant matrix (always well conditioned).
fn dominant_matrix(entries: &[f64], n: usize) -> Matrix {
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = entries[i * n + j];
        }
        let row_sum: f64 = (0..n).map(|j| a[(i, j)].abs()).sum();
        a[(i, i)] += row_sum + 1.0;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LU solve leaves a tiny residual on random well-conditioned
    /// systems of MNA-like sizes.
    #[test]
    fn lu_residual_is_small(
        n in 2usize..12,
        seed_entries in prop::collection::vec(-1.0f64..1.0, 144),
        rhs_entries in prop::collection::vec(-10.0f64..10.0, 12),
    ) {
        let a = dominant_matrix(&seed_entries[..n * n], n);
        let b = rhs_entries[..n].to_vec();
        let x = LuFactors::factor(a.clone()).unwrap().solve(&b).unwrap();
        let r = a.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-9, "residual {}", (ri - bi).abs());
        }
    }

    /// The zero-allocation workspace path (`factor_in_place` +
    /// `solve_into`) is bit-identical to the allocating `LuFactors`
    /// path on random well-conditioned systems — both run the same
    /// elimination kernel, so not even the last ulp may differ.
    #[test]
    fn workspace_solve_is_bit_identical_to_factors(
        n in 2usize..12,
        seed_entries in prop::collection::vec(-1.0f64..1.0, 144),
        rhs_entries in prop::collection::vec(-10.0f64..10.0, 12),
    ) {
        let a = dominant_matrix(&seed_entries[..n * n], n);
        let b = rhs_entries[..n].to_vec();
        let lu = LuFactors::factor(a.clone()).unwrap();
        let reference = lu.solve(&b).unwrap();

        let mut ws = LuWorkspace::new(n);
        let mut scratch = a;
        let mut x = vec![0.0; n];
        ws.factor_in_place(&mut scratch).unwrap();
        ws.solve_into(&b, &mut x).unwrap();

        for (i, (got, want)) in x.iter().zip(&reference).enumerate() {
            prop_assert_eq!(got.to_bits(), want.to_bits(),
                "solution differs at {} ({} vs {})", i, got, want);
        }
        prop_assert_eq!(ws.det().unwrap().to_bits(), lu.det().to_bits());
    }

    /// A single workspace reused across randomly varying dimensions
    /// (regrowing and shrinking between factorizations) keeps producing
    /// the exact `LuFactors` results — stale state from a previous size
    /// must never leak into a solve.
    #[test]
    fn workspace_reuse_across_dimension_changes_is_exact(
        sizes in prop::collection::vec(2usize..10, 1..6),
        seed_entries in prop::collection::vec(-1.0f64..1.0, 100),
        rhs_entries in prop::collection::vec(-10.0f64..10.0, 10),
    ) {
        let mut ws = LuWorkspace::new(sizes[0]);
        let mut x = Vec::new();
        for (round, &n) in sizes.iter().enumerate() {
            let a = dominant_matrix(&seed_entries[..n * n], n);
            let b = &rhs_entries[..n];
            let reference = LuFactors::factor(a.clone()).unwrap().solve(b).unwrap();

            let mut scratch = a;
            ws.factor_in_place(&mut scratch).unwrap();
            prop_assert_eq!(ws.dim(), n);
            prop_assert_eq!(scratch.rows(), n, "scratch must match the new dimension");
            prop_assert_eq!(scratch.cols(), n);
            x.clear();
            x.resize(n, 0.0);
            ws.solve_into(b, &mut x).unwrap();
            for (got, want) in x.iter().zip(&reference) {
                prop_assert_eq!(got.to_bits(), want.to_bits(), "round {}", round);
            }
        }
    }

    /// Determinant of a product-friendly 2×2 matches the closed form.
    #[test]
    fn det_2x2_closed_form(a in -5.0f64..5.0, b in -5.0f64..5.0,
                           c in -5.0f64..5.0, d in -5.0f64..5.0) {
        prop_assume!((a * d - b * c).abs() > 1e-6);
        let m = Matrix::from_rows(&[&[a, b], &[c, d]]);
        let lu = LuFactors::factor(m).unwrap();
        prop_assert!((lu.det() - (a * d - b * c)).abs() < 1e-9);
    }

    /// Brent localizes the minimum of a shifted quadratic anywhere in
    /// the interval.
    #[test]
    fn brent_finds_quadratic_minimum(center in -10.0f64..10.0, scale in 0.1f64..100.0) {
        let m = brent_min(
            |x| scale * (x - center).powi(2),
            -12.0,
            12.0,
            &BrentOptions::default(),
        );
        prop_assert!((m.x - center).abs() < 1e-5, "found {} expected {center}", m.x);
    }

    /// Brent and golden-section agree on smooth unimodal objectives.
    #[test]
    fn brent_matches_golden(center in -3.0f64..3.0) {
        let f = |x: f64| (x - center).powi(2) + 0.1 * (x - center).abs();
        let opts = BrentOptions::default();
        let b = brent_min(f, -4.0, 4.0, &opts);
        let g = golden_section_min(f, -4.0, 4.0, &opts);
        prop_assert!((b.x - g.x).abs() < 1e-3);
    }

    /// Powell solves randomly shifted quadratic bowls inside the box and
    /// clamps to the boundary when the optimum is outside.
    #[test]
    fn powell_quadratic_bowls(cx in -3.0f64..3.0, cy in -3.0f64..3.0) {
        let space = ParamSpace::new(vec![
            Bounds::new(-2.0, 2.0).unwrap(),
            Bounds::new(-2.0, 2.0).unwrap(),
        ]);
        let r = powell_min(
            |x| (x[0] - cx).powi(2) + 2.0 * (x[1] - cy).powi(2),
            &[0.0, 0.0],
            &space,
            &PowellOptions::default(),
        );
        let expect = [cx.clamp(-2.0, 2.0), cy.clamp(-2.0, 2.0)];
        prop_assert!((r.x[0] - expect[0]).abs() < 1e-3, "{:?} vs {:?}", r.x, expect);
        prop_assert!((r.x[1] - expect[1]).abs() < 1e-3, "{:?} vs {:?}", r.x, expect);
        prop_assert!(space.contains(&r.x));
    }

    /// line_extent always returns a segment whose endpoints stay inside
    /// the box.
    #[test]
    fn line_extent_endpoints_feasible(
        x0 in 0.0f64..1.0,
        y0 in 0.0f64..1.0,
        dx in -1.0f64..1.0,
        dy in -1.0f64..1.0,
    ) {
        prop_assume!(dx.abs() > 1e-6 || dy.abs() > 1e-6);
        let space = ParamSpace::new(vec![
            Bounds::new(0.0, 1.0).unwrap(),
            Bounds::new(0.0, 1.0).unwrap(),
        ]);
        if let Some((t0, t1)) = space.line_extent(&[x0, y0], &[dx, dy]) {
            prop_assert!(t0 <= t1);
            for t in [t0, t1] {
                let p = [x0 + t * dx, y0 + t * dy];
                prop_assert!(p[0] >= -1e-9 && p[0] <= 1.0 + 1e-9, "{p:?}");
                prop_assert!(p[1] >= -1e-9 && p[1] <= 1.0 + 1e-9, "{p:?}");
            }
        }
    }
}
