//! Differential property tests: the sparse LU path against the dense
//! kernel on random well-conditioned systems.
//!
//! A second linear solver is exactly the kind of change that silently
//! diverges, so these properties pin the sparse path to the dense one:
//! every random system a proptest generates must solve to 1e-9
//! *relative* agreement through both kernels, on the first (full,
//! pivoting) factorization and on pattern-reusing refactorizations.
//!
//! The ordering properties extend the contract to column permutations:
//! factoring under *any* valid permutation — random or AMD-produced —
//! must still agree with dense LU (the permutation is un-done before
//! the caller sees a solution), and the AMD construction itself must
//! emit a valid bijection on arbitrary patterns, including degenerate
//! ones (empty columns, dense rows, `n = 1`).

use castg_numeric::{LuFactors, Matrix, SparseLu, SparseMatrix, StampTarget};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Relative agreement the two solvers must reach.
const REL_TOL: f64 = 1e-9;

fn assert_rel_close(dense: &[f64], sparse: &[f64]) -> Result<(), TestCaseError> {
    for (i, (d, s)) in dense.iter().zip(sparse).enumerate() {
        let scale = d.abs().max(s.abs()).max(1.0);
        prop_assert!(
            (d - s).abs() <= REL_TOL * scale,
            "solutions diverge at {}: dense {} vs sparse {}",
            i,
            d,
            s
        );
    }
    Ok(())
}

/// Builds a random banded, diagonally dominant system in both dense and
/// sparse form from one entry stream (the forms are exactly equal by
/// construction).
fn banded_pair(n: usize, band: usize, entries: &[f64]) -> (Matrix, SparseMatrix) {
    let mut slots = Vec::new();
    for i in 0..n {
        for j in i.saturating_sub(band)..(i + band + 1).min(n) {
            slots.push((i, j));
        }
    }
    let mut dense = Matrix::zeros(n, n);
    let mut sparse = SparseMatrix::from_entries(n, &slots);
    for (&(i, j), &v) in slots.iter().zip(entries) {
        dense[(i, j)] = v;
        sparse.add(i, j, v);
    }
    for i in 0..n {
        let row_sum: f64 = (0..n).map(|j| dense[(i, j)].abs()).sum();
        dense[(i, i)] += row_sum + 1.0;
        sparse.add(i, i, row_sum + 1.0);
    }
    (dense, sparse)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Full factorization path: random banded well-conditioned systems
    /// agree with dense LU to 1e-9 relative.
    #[test]
    fn sparse_factor_matches_dense(
        n in 4usize..80,
        band in 1usize..4,
        entries in prop::collection::vec(-1.0f64..1.0, 80 * 9),
        rhs in prop::collection::vec(-10.0f64..10.0, 80),
    ) {
        let (dense, sparse) = banded_pair(n, band, &entries);
        let b = &rhs[..n];

        let want = LuFactors::factor(dense).unwrap().solve(b).unwrap();
        let mut lu = SparseLu::new();
        lu.factor(&sparse).unwrap();
        let mut got = vec![0.0; n];
        lu.solve_into(b, &mut got).unwrap();
        assert_rel_close(&want, &got)?;
    }

    /// Refactorization path: after a first factorization, re-stamping
    /// new values into the *same pattern* and factoring again (which
    /// takes the symbolic-reuse fast path) still agrees with dense LU.
    #[test]
    fn sparse_refactor_matches_dense(
        n in 4usize..60,
        band in 1usize..3,
        entries_a in prop::collection::vec(-1.0f64..1.0, 60 * 7),
        entries_b in prop::collection::vec(-1.0f64..1.0, 60 * 7),
        rhs in prop::collection::vec(-10.0f64..10.0, 60),
    ) {
        let (_, mut sparse) = banded_pair(n, band, &entries_a);
        let b = &rhs[..n];
        let mut lu = SparseLu::new();
        lu.factor(&sparse).unwrap();

        // Same pattern, new values: this exercises the refactor path.
        StampTarget::clear(&mut sparse);
        let (dense_b, sparse_b) = banded_pair(n, band, &entries_b);
        for (r, c, v) in sparse_b.entries() {
            sparse.add(r, c, v);
        }
        lu.factor(&sparse).unwrap();

        let want = LuFactors::factor(dense_b).unwrap().solve(b).unwrap();
        let mut got = vec![0.0; n];
        lu.solve_into(b, &mut got).unwrap();
        assert_rel_close(&want, &got)?;
    }

    /// Ordering invariance: factoring under a random valid column
    /// permutation — or the AMD-produced one — must agree with dense
    /// LU to 1e-9 relative, exactly like natural order does.
    #[test]
    fn permuted_sparse_matches_dense(
        n in 4usize..60,
        band in 1usize..4,
        entries in prop::collection::vec(-1.0f64..1.0, 60 * 9),
        rhs in prop::collection::vec(-10.0f64..10.0, 60),
        perm_seed in prop::collection::vec(0usize..1_000_000, 60),
    ) {
        let (dense, sparse) = banded_pair(n, band, &entries);
        let b = &rhs[..n];
        let want = LuFactors::factor(dense).unwrap().solve(b).unwrap();

        // A random permutation derived deterministically from the seed
        // vector (Fisher–Yates with generated swap targets).
        let mut random_perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            random_perm.swap(i, perm_seed[i] % (i + 1));
        }

        for perm in [random_perm, sparse.pattern().amd_ordering()] {
            let mut lu = SparseLu::new();
            lu.set_ordering(perm.clone());
            lu.factor(&sparse).unwrap();
            let sym = lu.symbolic().unwrap();
            prop_assert_eq!(sym.ordering(), &perm[..]);
            let mut got = vec![0.0; n];
            lu.solve_into(b, &mut got).unwrap();
            assert_rel_close(&want, &got)?;
        }
    }

    /// The AMD construction must produce a valid bijection of `0..n`
    /// for arbitrary random patterns — including patterns with empty
    /// columns, duplicate slots and dense rows — and for the
    /// degenerate edge cases.
    #[test]
    fn amd_ordering_is_always_a_bijection(
        n in 1usize..40,
        slot_rows in prop::collection::vec(0usize..40, 160),
        slot_cols in prop::collection::vec(0usize..40, 160),
        slot_count in 0usize..160,
        dense_row in 0usize..40,
    ) {
        let mut entries: Vec<(usize, usize)> = slot_rows
            .iter()
            .zip(&slot_cols)
            .take(slot_count)
            .map(|(&r, &c)| (r % n, c % n))
            .collect();
        // Force a dense row and a dense column through one vertex.
        for j in 0..n {
            entries.push((dense_row % n, j));
            entries.push((j, dense_row % n));
        }
        let with_dense = SparseMatrix::from_entries(n, &entries);
        let empty = SparseMatrix::from_entries(n, &[]);
        for pattern in [with_dense.pattern(), empty.pattern()] {
            let perm = pattern.amd_ordering();
            prop_assert_eq!(perm.len(), n);
            let mut seen = vec![false; n];
            for &c in &perm {
                prop_assert!(c < n && !seen[c], "not a bijection: {:?}", perm);
                seen[c] = true;
            }
        }
    }

    /// The maximum transversal on a *structurally nonsingular* random
    /// pattern (random extras over a hidden permutation diagonal) must
    /// find a complete matching: a bijection `colmatch` with
    /// `(colmatch[c], c)` a structural entry for every column — a
    /// zero-free diagonal under the implied row permutation. Emptying
    /// any one column makes the pattern structurally singular, and the
    /// transversal must report that cleanly as `None`.
    #[test]
    fn max_transversal_finds_zero_free_diagonal_or_rejects(
        n in 2usize..40,
        perm_seed in prop::collection::vec(0usize..1_000_000, 40),
        slot_rows in prop::collection::vec(0usize..40, 120),
        slot_cols in prop::collection::vec(0usize..40, 120),
        slot_count in 0usize..120,
        emptied in 0usize..40,
    ) {
        // Hidden transversal: a random permutation's entries guarantee
        // structural nonsingularity without forcing the main diagonal.
        let mut hidden: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            hidden.swap(i, perm_seed[i] % (i + 1));
        }
        let mut entries: Vec<(usize, usize)> =
            hidden.iter().enumerate().map(|(c, &r)| (r, c)).collect();
        entries.extend(
            slot_rows
                .iter()
                .zip(&slot_cols)
                .take(slot_count)
                .map(|(&r, &c)| (r % n, c % n)),
        );
        let m = SparseMatrix::from_entries(n, &entries);
        let colmatch = m.pattern().max_transversal();
        prop_assert!(colmatch.is_some(), "nonsingular pattern rejected");
        let colmatch = colmatch.unwrap();
        prop_assert_eq!(colmatch.len(), n);
        let mut seen = vec![false; n];
        for (c, &r) in colmatch.iter().enumerate() {
            prop_assert!(r < n && !seen[r], "not a bijection: {:?}", colmatch);
            seen[r] = true;
            prop_assert!(
                m.pattern().slot(r, c).is_some(),
                "matched ({}, {}) is not a structural entry",
                r,
                c
            );
        }

        // Structural singularity: an empty column can match no row.
        let emptied = emptied % n;
        let gutted: Vec<(usize, usize)> =
            entries.iter().copied().filter(|&(_, c)| c != emptied).collect();
        let singular = SparseMatrix::from_entries(n, &gutted);
        prop_assert!(
            singular.pattern().max_transversal().is_none(),
            "pattern with empty column {} accepted",
            emptied
        );
        prop_assert!(singular.pattern().btf_order().is_none());
    }

    /// The full BTF preordering on random structurally nonsingular
    /// patterns: composed row and column permutations are bijections,
    /// the block boundaries are strictly increasing from 0 to n, the
    /// permuted diagonal is zero-free, and — the condensation contract —
    /// every structural entry lands on or *above* the block diagonal
    /// (Tarjan's emission order is a valid topological order of the
    /// SCC condensation, so `P·A·Q` is block upper triangular).
    #[test]
    fn btf_order_is_topological_block_upper_triangular(
        n in 1usize..40,
        perm_seed in prop::collection::vec(0usize..1_000_000, 40),
        slot_rows in prop::collection::vec(0usize..40, 160),
        slot_cols in prop::collection::vec(0usize..40, 160),
        slot_count in 0usize..160,
    ) {
        let mut hidden: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            hidden.swap(i, perm_seed[i] % (i + 1));
        }
        let mut entries: Vec<(usize, usize)> =
            hidden.iter().enumerate().map(|(c, &r)| (r, c)).collect();
        entries.extend(
            slot_rows
                .iter()
                .zip(&slot_cols)
                .take(slot_count)
                .map(|(&r, &c)| (r % n, c % n)),
        );
        let m = SparseMatrix::from_entries(n, &entries);
        let btf = m.pattern().btf_order();
        prop_assert!(btf.is_some(), "nonsingular pattern rejected");
        let btf = btf.unwrap();
        prop_assert_eq!(btf.dim(), n);

        // Composed permutations are bijections.
        for perm in [btf.rowperm(), btf.colperm()] {
            prop_assert_eq!(perm.len(), n);
            let mut seen = vec![false; n];
            for &p in perm {
                prop_assert!(p < n && !seen[p], "not a bijection: {:?}", perm);
                seen[p] = true;
            }
        }

        // Block boundaries partition 0..n.
        let bp = btf.block_ptr();
        prop_assert_eq!(bp[0], 0);
        prop_assert_eq!(*bp.last().unwrap(), n);
        prop_assert!(bp.windows(2).all(|w| w[0] < w[1]), "{:?}", bp);
        prop_assert_eq!(btf.block_count(), bp.len() - 1);

        // Zero-free permuted diagonal.
        for k in 0..n {
            prop_assert!(
                m.pattern().slot(btf.rowperm()[k], btf.colperm()[k]).is_some(),
                "permuted diagonal position {} is a structural zero",
                k
            );
        }

        // Block upper triangularity: map every original entry to its
        // permuted position; its row block must not exceed its column
        // block.
        let mut rpos = vec![0usize; n];
        let mut cpos = vec![0usize; n];
        for k in 0..n {
            rpos[btf.rowperm()[k]] = k;
            cpos[btf.colperm()[k]] = k;
        }
        let block_of = |k: usize| bp.partition_point(|&b| b <= k) - 1;
        for (r, c, _) in m.entries() {
            prop_assert!(
                block_of(rpos[r]) <= block_of(cpos[c]),
                "entry ({}, {}) lands below the block diagonal",
                r,
                c
            );
        }
    }

    /// The residual of the sparse solve is tiny in its own right (not
    /// just relative to the dense solution).
    #[test]
    fn sparse_residual_is_small(
        n in 4usize..80,
        band in 1usize..4,
        entries in prop::collection::vec(-1.0f64..1.0, 80 * 9),
        rhs in prop::collection::vec(-10.0f64..10.0, 80),
    ) {
        let (_, sparse) = banded_pair(n, band, &entries);
        let b = &rhs[..n];
        let mut lu = SparseLu::new();
        lu.factor(&sparse).unwrap();
        let mut x = vec![0.0; n];
        lu.solve_into(b, &mut x).unwrap();
        let r = sparse.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(b) {
            prop_assert!((ri - bi).abs() < 1e-9, "residual {}", (ri - bi).abs());
        }
    }
}

/// Degenerate BTF shapes where the answer is exactly known: `n <= 1`,
/// the fully dense pattern (one strongly connected component — a single
/// block), and the diagonal pattern (n independent scalar equations —
/// n blocks of size 1).
#[test]
fn btf_degenerate_cases() {
    // n = 1: one 1×1 block.
    let one = SparseMatrix::from_entries(1, &[(0, 0)]);
    let btf = one.pattern().btf_order().expect("1×1 with diagonal entry");
    assert_eq!(btf.block_ptr(), &[0, 1]);
    assert_eq!(btf.block_count(), 1);
    assert_eq!(btf.nontrivial_blocks(), 0);
    assert_eq!(btf.largest_block(), 1);

    // n = 1 without its entry: structurally singular.
    let empty = SparseMatrix::from_entries(1, &[]);
    assert!(empty.pattern().max_transversal().is_none());
    assert!(empty.pattern().btf_order().is_none());

    // Fully dense: everything reaches everything — one block of size n.
    let n = 9;
    let all: Vec<(usize, usize)> =
        (0..n).flat_map(|r| (0..n).map(move |c| (r, c))).collect();
    let dense = SparseMatrix::from_entries(n, &all);
    let btf = dense.pattern().btf_order().expect("dense is nonsingular");
    assert_eq!(btf.block_count(), 1);
    assert_eq!(btf.largest_block(), n);
    assert_eq!(btf.nontrivial_blocks(), 1);

    // Diagonal: n decoupled scalars — n blocks of size 1.
    let diag: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
    let diag = SparseMatrix::from_entries(n, &diag);
    let btf = diag.pattern().btf_order().expect("diagonal is nonsingular");
    assert_eq!(btf.block_count(), n);
    assert_eq!(btf.largest_block(), 1);
    assert_eq!(btf.nontrivial_blocks(), 0);
    assert_eq!(btf.block_ptr(), &(0..=n).collect::<Vec<_>>()[..]);
}
