//! Differential property tests: the sparse LU path against the dense
//! kernel on random well-conditioned systems.
//!
//! A second linear solver is exactly the kind of change that silently
//! diverges, so these properties pin the sparse path to the dense one:
//! every random system a proptest generates must solve to 1e-9
//! *relative* agreement through both kernels, on the first (full,
//! pivoting) factorization and on pattern-reusing refactorizations.

use castg_numeric::{LuFactors, Matrix, SparseLu, SparseMatrix, StampTarget};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Relative agreement the two solvers must reach.
const REL_TOL: f64 = 1e-9;

fn assert_rel_close(dense: &[f64], sparse: &[f64]) -> Result<(), TestCaseError> {
    for (i, (d, s)) in dense.iter().zip(sparse).enumerate() {
        let scale = d.abs().max(s.abs()).max(1.0);
        prop_assert!(
            (d - s).abs() <= REL_TOL * scale,
            "solutions diverge at {}: dense {} vs sparse {}",
            i,
            d,
            s
        );
    }
    Ok(())
}

/// Builds a random banded, diagonally dominant system in both dense and
/// sparse form from one entry stream (the forms are exactly equal by
/// construction).
fn banded_pair(n: usize, band: usize, entries: &[f64]) -> (Matrix, SparseMatrix) {
    let mut slots = Vec::new();
    for i in 0..n {
        for j in i.saturating_sub(band)..(i + band + 1).min(n) {
            slots.push((i, j));
        }
    }
    let mut dense = Matrix::zeros(n, n);
    let mut sparse = SparseMatrix::from_entries(n, &slots);
    for (&(i, j), &v) in slots.iter().zip(entries) {
        dense[(i, j)] = v;
        sparse.add(i, j, v);
    }
    for i in 0..n {
        let row_sum: f64 = (0..n).map(|j| dense[(i, j)].abs()).sum();
        dense[(i, i)] += row_sum + 1.0;
        sparse.add(i, i, row_sum + 1.0);
    }
    (dense, sparse)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Full factorization path: random banded well-conditioned systems
    /// agree with dense LU to 1e-9 relative.
    #[test]
    fn sparse_factor_matches_dense(
        n in 4usize..80,
        band in 1usize..4,
        entries in prop::collection::vec(-1.0f64..1.0, 80 * 9),
        rhs in prop::collection::vec(-10.0f64..10.0, 80),
    ) {
        let (dense, sparse) = banded_pair(n, band, &entries);
        let b = &rhs[..n];

        let want = LuFactors::factor(dense).unwrap().solve(b).unwrap();
        let mut lu = SparseLu::new();
        lu.factor(&sparse).unwrap();
        let mut got = vec![0.0; n];
        lu.solve_into(b, &mut got).unwrap();
        assert_rel_close(&want, &got)?;
    }

    /// Refactorization path: after a first factorization, re-stamping
    /// new values into the *same pattern* and factoring again (which
    /// takes the symbolic-reuse fast path) still agrees with dense LU.
    #[test]
    fn sparse_refactor_matches_dense(
        n in 4usize..60,
        band in 1usize..3,
        entries_a in prop::collection::vec(-1.0f64..1.0, 60 * 7),
        entries_b in prop::collection::vec(-1.0f64..1.0, 60 * 7),
        rhs in prop::collection::vec(-10.0f64..10.0, 60),
    ) {
        let (_, mut sparse) = banded_pair(n, band, &entries_a);
        let b = &rhs[..n];
        let mut lu = SparseLu::new();
        lu.factor(&sparse).unwrap();

        // Same pattern, new values: this exercises the refactor path.
        StampTarget::clear(&mut sparse);
        let (dense_b, sparse_b) = banded_pair(n, band, &entries_b);
        for (r, c, v) in sparse_b.entries() {
            sparse.add(r, c, v);
        }
        lu.factor(&sparse).unwrap();

        let want = LuFactors::factor(dense_b).unwrap().solve(b).unwrap();
        let mut got = vec![0.0; n];
        lu.solve_into(b, &mut got).unwrap();
        assert_rel_close(&want, &got)?;
    }

    /// The residual of the sparse solve is tiny in its own right (not
    /// just relative to the dense solution).
    #[test]
    fn sparse_residual_is_small(
        n in 4usize..80,
        band in 1usize..4,
        entries in prop::collection::vec(-1.0f64..1.0, 80 * 9),
        rhs in prop::collection::vec(-10.0f64..10.0, 80),
    ) {
        let (_, sparse) = banded_pair(n, band, &entries);
        let b = &rhs[..n];
        let mut lu = SparseLu::new();
        lu.factor(&sparse).unwrap();
        let mut x = vec![0.0; n];
        lu.solve_into(b, &mut x).unwrap();
        let r = sparse.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(b) {
            prop_assert!((ri - bi).abs() < 1e-9, "residual {}", (ri - bi).abs());
        }
    }
}
