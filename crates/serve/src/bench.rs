//! `castg bench-serve`: spawn the daemon in-process, replay a mixed
//! deck corpus from M concurrent clients, and report throughput,
//! latency percentiles and cache hit rates to `BENCH_serve.json`.
//!
//! The corpus deliberately contains duplicates (every client replays
//! the same jobs every round), so the run exercises both cache layers:
//! round one misses and fills, later rounds hit; different clients
//! posting the same deck share one plan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use castg_core::report::json_escape;

use crate::client::Client;
use crate::json::{parse_json, Json};
use crate::request::ServerCeilings;
use crate::server::{spawn, ServerConfig};

const DIVIDER_DECK: &str = include_str!("../../../tests/fixtures/divider.sp");
const DIVIDER_CFG1: &str = include_str!("../../../tests/fixtures/divider_configs/1_dc_out.cfg");
const DIVIDER_CFG2: &str = include_str!("../../../tests/fixtures/divider_configs/2_step_dev.cfg");
const IV_DECK: &str = include_str!("../../../tests/fixtures/iv_converter.sp");
const IV_CFG1: &str = include_str!("../../../tests/fixtures/iv_configs/1_dc_transfer.cfg");
const IV_CFG2: &str = include_str!("../../../tests/fixtures/iv_configs/2_supply_current.cfg");
const BJT_DECK: &str = include_str!("../../../tests/fixtures/bjt_opamp.sp");
const BJT_CFG1: &str = include_str!("../../../tests/fixtures/bjt_configs/1_dc_follow.cfg");
const BJT_CFG2: &str = include_str!("../../../tests/fixtures/bjt_configs/2_supply_current.cfg");

/// A three-stage resistive ladder (the synthetic LadderMacro shape,
/// written as a deck so the corpus needs no runtime file I/O).
const LADDER_DECK: &str = "\
.title R-ladder
V1 src 0 DC 5
R1 src n1 1k
R2 n1 0 2k
R3 n1 n2 1k
R4 n2 0 2k
R5 n2 out 1k
R6 out 0 2k
";

const LADDER_CFG: &str = "\
macro type: R-ladder
test configuration: DC output
control V1: dc(lev)
observe out: dc()
return: dV(out)
parameter lev: 1 .. 8
variable box_rel: 0.05
variable box_gain: 0.2
variable box_floor: 1e-3
seed lev: 5
";

/// A small resistor mesh with cross links (denser coupling than the
/// ladder; different fault dictionary shape).
const MESH_DECK: &str = "\
.title R-mesh
V1 src 0 DC 5
RS src in 100
R1 in a 1k
R2 in b 1k
R3 a b 500
R4 a out 1k
R5 b out 1k
R6 out 0 2k
";

const MESH_CFG: &str = "\
macro type: R-mesh
test configuration: DC output
control V1: dc(lev)
observe out: dc()
return: dV(out)
parameter lev: 1 .. 8
variable box_rel: 0.05
variable box_gain: 0.3
variable box_floor: 1e-3
seed lev: 5
";

/// Bench knobs (all have serving defaults).
#[derive(Debug, Clone)]
pub struct BenchServeOptions {
    /// Concurrent clients.
    pub clients: usize,
    /// Rounds: each client posts every corpus job once per round.
    pub rounds: usize,
    /// Worker-pool size (0 = cores).
    pub workers: usize,
    /// Threads per campaign.
    pub threads_per_campaign: usize,
    /// Fault cap for the heavy corpus decks (IV/BJT op-amps).
    pub max_faults_heavy: usize,
    /// Output path for the JSON summary.
    pub out: Option<std::path::PathBuf>,
}

impl Default for BenchServeOptions {
    fn default() -> Self {
        BenchServeOptions {
            clients: 4,
            rounds: 3,
            workers: 0,
            threads_per_campaign: 1,
            max_faults_heavy: 12,
            out: Some(std::path::PathBuf::from("BENCH_serve.json")),
        }
    }
}

/// What the bench measured (also serialized to `BENCH_serve.json`).
#[derive(Debug, Clone)]
pub struct BenchServeReport {
    /// Concurrent clients.
    pub clients: usize,
    /// Rounds per client.
    pub rounds: usize,
    /// Corpus jobs per round.
    pub corpus: usize,
    /// Total `POST /v1/campaign` requests sent.
    pub requests: u64,
    /// Requests that returned 200.
    pub ok: u64,
    /// Campaigns per second of wall clock (batch included).
    pub campaigns_per_s: f64,
    /// Median request latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile request latency (ms).
    pub p95_ms: f64,
    /// Result-cache (hits, misses).
    pub result_cache: (u64, u64),
    /// Plan-cache (hits, misses).
    pub plan_cache: (u64, u64),
    /// Panicked fault outcomes across the whole run (must be 0).
    pub panicked: u64,
    /// Whether the daemon drained and joined cleanly.
    pub clean_shutdown: bool,
}

fn job_json(name: &str, deck: &str, configs: &[&str], max_faults: Option<usize>) -> String {
    let mut s = format!(
        "{{\"name\": \"{}\", \"deck\": \"{}\", \"configs\": [",
        json_escape(name),
        json_escape(deck)
    );
    for (i, cfg) in configs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push('"');
        s.push_str(&json_escape(cfg));
        s.push('"');
    }
    s.push(']');
    if let Some(m) = max_faults {
        s.push_str(&format!(", \"max_faults\": {m}"));
    }
    s.push('}');
    s
}

/// The mixed corpus: light resistive macros exhaustively, the two
/// op-amps fault-capped, plus a formatting variant of the ladder deck
/// (same canonical bytes — exercises the plan cache without the raw
/// memo) and a `--param`-style override job.
fn corpus(max_faults_heavy: usize) -> Vec<String> {
    let ladder_reformatted = "\
.title R-ladder
* same ladder, different number spellings and spacing
V1  src 0  DC 5.0
R1 src n1 1000
R2 n1 0 2000
R3 n1 n2 1E3
R4 n2 0 2E3
R5 n2  out 1k
R6 out 0 2k
";
    vec![
        job_json("divider", DIVIDER_DECK, &[DIVIDER_CFG1, DIVIDER_CFG2], None),
        job_json("ladder", LADDER_DECK, &[LADDER_CFG], None),
        job_json("ladder", ladder_reformatted, &[LADDER_CFG], None),
        job_json("mesh", MESH_DECK, &[MESH_CFG], None),
        job_json("iv", IV_DECK, &[IV_CFG1, IV_CFG2], Some(max_faults_heavy)),
        job_json("bjt-opamp", BJT_DECK, &[BJT_CFG1, BJT_CFG2], Some(max_faults_heavy)),
    ]
}

/// Runs the serve benchmark; writes the summary and returns it.
///
/// # Errors
///
/// A human-readable message when the daemon cannot start, a request
/// fails outright, or a gate fails (zero throughput, no cache hits,
/// panicked outcomes, unclean shutdown).
pub fn run_bench_serve(options: &BenchServeOptions) -> Result<BenchServeReport, String> {
    let config = ServerConfig {
        workers: options.workers,
        threads_per_campaign: options.threads_per_campaign,
        ceilings: ServerCeilings::default(),
        ..ServerConfig::default()
    };
    let handle = spawn(config).map_err(|e| format!("cannot start daemon: {e}"))?;
    let addr = handle.addr;
    let jobs = Arc::new(corpus(options.max_faults_heavy));
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let ok = Arc::new(AtomicU64::new(0));
    let sent = Arc::new(AtomicU64::new(0));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    let t0 = Instant::now();
    let mut client_threads = Vec::new();
    for c in 0..options.clients.max(1) {
        let jobs = Arc::clone(&jobs);
        let latencies = Arc::clone(&latencies);
        let ok = Arc::clone(&ok);
        let sent = Arc::clone(&sent);
        let failures = Arc::clone(&failures);
        let rounds = options.rounds.max(1);
        client_threads.push(std::thread::spawn(move || {
            let mut client = Client::new(addr);
            for round in 0..rounds {
                // Stagger job order per client so the very first round
                // mixes misses and hits across clients.
                for k in 0..jobs.len() {
                    let job = &jobs[(k + c + round) % jobs.len()];
                    let t = Instant::now();
                    sent.fetch_add(1, Ordering::Relaxed);
                    match client.request("POST", "/v1/campaign", job.as_bytes()) {
                        Ok(response) => {
                            latencies
                                .lock()
                                .expect("latency vec poisoned")
                                .push(t.elapsed().as_secs_f64() * 1e3);
                            if response.status == 200 {
                                ok.fetch_add(1, Ordering::Relaxed);
                            } else {
                                failures.lock().expect("failures poisoned").push(format!(
                                    "client {c}: status {} body {}",
                                    response.status,
                                    String::from_utf8_lossy(&response.body)
                                ));
                            }
                        }
                        Err(e) => failures
                            .lock()
                            .expect("failures poisoned")
                            .push(format!("client {c}: {e}")),
                    }
                }
            }
        }));
    }
    for t in client_threads {
        t.join().map_err(|_| "client thread panicked".to_string())?;
    }

    // One batch request on top: the whole corpus in a single POST.
    let mut client = Client::new(addr);
    let batch_body = format!("{{\"jobs\": [{}]}}", jobs.join(", "));
    let batch = client
        .request("POST", "/v1/batch", batch_body.as_bytes())
        .map_err(|e| format!("batch request failed: {e}"))?;
    if batch.status != 200 {
        return Err(format!(
            "batch returned {}: {}",
            batch.status,
            String::from_utf8_lossy(&batch.body)
        ));
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let failures = failures.lock().expect("failures poisoned");
    if let Some(first) = failures.first() {
        return Err(format!("{} request(s) failed; first: {first}", failures.len()));
    }

    // Scrape the daemon's own stats.
    let stats_raw = client
        .request("GET", "/v1/stats", b"")
        .map_err(|e| format!("stats request failed: {e}"))?;
    let stats = parse_json(&stats_raw.body).map_err(|e| format!("stats body: {e}"))?;
    let counter = |path: &[&str]| -> u64 {
        let mut v: &Json = &stats;
        for p in path {
            match v.get(p) {
                Some(next) => v = next,
                None => return 0,
            }
        }
        v.as_f64().unwrap_or(0.0) as u64
    };
    let result_cache = (counter(&["result_cache", "hits"]), counter(&["result_cache", "misses"]));
    let plan_cache = (counter(&["plan_cache", "hits"]), counter(&["plan_cache", "misses"]));
    let panicked = counter(&["outcomes", "panicked"]);
    let campaigns = counter(&["campaigns"]);

    // Shut down and verify the drain.
    let _ = client.request("POST", "/v1/shutdown", b"");
    let clean_shutdown = handle.join();

    let mut lat = latencies.lock().expect("latency vec poisoned").clone();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[idx]
    };
    let report = BenchServeReport {
        clients: options.clients.max(1),
        rounds: options.rounds.max(1),
        corpus: jobs.len(),
        requests: sent.load(Ordering::Relaxed),
        ok: ok.load(Ordering::Relaxed),
        campaigns_per_s: campaigns as f64 / wall_s,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        result_cache,
        plan_cache,
        panicked,
        clean_shutdown,
    };

    if let Some(path) = &options.out {
        std::fs::write(path, render_report_json(&report))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    // Gates: the CI smoke fails on any of these.
    if report.campaigns_per_s <= 0.0 {
        return Err("gate failed: campaigns_per_s must be > 0".to_string());
    }
    if report.result_cache.0 == 0 {
        return Err("gate failed: expected at least one result-cache hit".to_string());
    }
    if report.panicked != 0 {
        return Err(format!("gate failed: {} panicked fault outcome(s)", report.panicked));
    }
    if !report.clean_shutdown {
        return Err("gate failed: daemon did not drain cleanly".to_string());
    }
    Ok(report)
}

/// Renders the bench summary as JSON (the `BENCH_serve.json` body).
pub fn render_report_json(r: &BenchServeReport) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"clients\": {},\n",
            "  \"rounds\": {},\n",
            "  \"corpus\": {},\n",
            "  \"requests\": {},\n",
            "  \"ok\": {},\n",
            "  \"campaigns_per_s\": {:.3},\n",
            "  \"p50_ms\": {:.3},\n",
            "  \"p95_ms\": {:.3},\n",
            "  \"result_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
            "  \"plan_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
            "  \"panicked\": {},\n",
            "  \"clean_shutdown\": {}\n",
            "}}\n",
        ),
        r.clients,
        r.rounds,
        r.corpus,
        r.requests,
        r.ok,
        r.campaigns_per_s,
        r.p50_ms,
        r.p95_ms,
        r.result_cache.0,
        r.result_cache.1,
        r.plan_cache.0,
        r.plan_cache.1,
        r.panicked,
        r.clean_shutdown,
    )
}
