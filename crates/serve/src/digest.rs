//! Content addressing for campaign requests: an in-tree SHA-256 and
//! the canonical request-digest construction both cache layers key on.
//!
//! # The cache key, precisely
//!
//! Two campaign requests share a result-cache entry exactly when their
//! [`RequestDigest`] inputs match:
//!
//! 1. **Canonical deck bytes** — the deck parsed and written back
//!    through the exact round-trip writer
//!    ([`castg_netlist::canonical_deck_bytes`]), which erases
//!    whitespace, comments, continuations, `.param` indirection and
//!    number formatting while preserving node interning order, device
//!    order, bit-exact values and identifier spellings (net-name case
//!    is *semantic*: fault names in the report body carry the deck's
//!    first spelling of each net, so decks differing only in case
//!    produce different report bytes and must not share an entry).
//!    Decks the writer cannot represent (flattened `.subckt`
//!    internals) fall back to their raw bytes, losing only the
//!    formatting normalization, never soundness.
//! 2. **Sorted config texts** — the request's configuration
//!    descriptions, lexicographically sorted. The server assigns config
//!    ids *after* the same sort (see [`sort_configs`]), so reordering
//!    the `configs` array changes neither the digest nor the report.
//! 3. **Resolved parameter table** — `(name, value-bits)` pairs sorted
//!    by name. (Canonical deck bytes already embed resolved values;
//!    the table keeps the raw-fallback path keyed correctly too.)
//! 4. **Dictionary derivation** — mode, bridge/pinhole resistances,
//!    skip/max fault slicing.
//! 5. **Solver options** — the forced solver/ordering pair, if any.
//! 6. **Budget options** — `max_newton_iters` and `budget_ms`, which
//!    change typed outcomes and therefore report bytes.
//! 7. **The macro name** — it appears verbatim in the report body.
//!
//! Thread counts are deliberately **excluded**: campaign reports are
//! bit-identical at any worker count, so requests differing only in
//! parallelism share cache entries.
//!
//! Every field is fed domain-separated (tag + length prefix), so no
//! concatenation of fields can collide with another split of the same
//! bytes.

use castg_faults::BridgeDerivation;
use castg_spice::{OrderingKind, SolverKind};

/// A 256-bit content digest.
pub type Digest = [u8; 32];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2,
];

/// Incremental SHA-256 (FIPS 180-4). Pure Rust, no tables beyond the
/// round constants; the build image has no registry, so the hash lives
/// in-tree like everything else.
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the standard IV.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c,
                0x1f83d9ab, 0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total: 0,
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    /// Feeds bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 32];
        for (chunk, s) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&s.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Lower-hex rendering of a digest.
pub fn hex(d: &Digest) -> String {
    let mut s = String::with_capacity(64);
    for b in d {
        use std::fmt::Write as _;
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// The request options that participate in the digest (everything
/// beyond deck + configs + params). Defaults mirror the server's
/// request defaults, so `castg check` can print the digest of the
/// default request offline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigestOptions {
    /// Bridge-derivation mode of the derived dictionary.
    pub derivation: BridgeDerivation,
    /// Dictionary bridge resistance (ohms).
    pub bridge_ohms: f64,
    /// Dictionary pinhole resistance (ohms).
    pub pinhole_ohms: f64,
    /// Faults skipped off the front of the derived dictionary.
    pub skip_faults: usize,
    /// Dictionary truncation after the skip (`usize::MAX` = none).
    pub max_faults: Option<usize>,
    /// Forced solver/ordering pair (`None` = Auto/Auto heuristics).
    pub dispatch: Option<(SolverKind, OrderingKind)>,
    /// Per-item Newton-iteration allowance, post-clamping.
    pub max_newton_iters: Option<usize>,
    /// Per-item wall-clock budget (ms), post-clamping.
    pub budget_ms: Option<u64>,
}

impl Default for DigestOptions {
    fn default() -> Self {
        DigestOptions {
            derivation: BridgeDerivation::Exhaustive,
            bridge_ohms: 10e3,
            pinhole_ohms: 2e3,
            skip_faults: 0,
            max_faults: None,
            dispatch: None,
            max_newton_iters: None,
            budget_ms: None,
        }
    }
}

/// Sorts config texts into the canonical (lexicographic) order the
/// server assigns ids in. Both the digest and the pipeline consume
/// configs in this order, which is what makes the digest sound under
/// request-side reordering.
pub fn sort_configs(configs: &mut [String]) {
    configs.sort();
}

/// Builds the canonical request digest. `name` is the macro name (it
/// appears in the report body, so it is part of the key);
/// `canonical_deck` is the round-trip-normalized deck bytes (or the
/// raw deck text when the writer reported it unrepresentable);
/// `configs` must already be in canonical order ([`sort_configs`]);
/// `params` is the resolved parameter table, sorted here by name.
pub fn request_digest(
    name: &str,
    canonical_deck: &[u8],
    configs: &[String],
    params: &[(String, f64)],
    options: &DigestOptions,
) -> Digest {
    let mut h = Sha256::new();
    let mut field = |tag: &str, bytes: &[u8]| {
        h.update(tag.as_bytes());
        h.update(&(bytes.len() as u64).to_le_bytes());
        h.update(bytes);
    };
    field("name", name.as_bytes());
    field("deck", canonical_deck);
    field("nconfigs", &(configs.len() as u64).to_le_bytes());
    for cfg in configs {
        field("config", cfg.as_bytes());
    }
    let mut sorted_params: Vec<&(String, f64)> = params.iter().collect();
    sorted_params.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, value) in sorted_params {
        field("param", name.as_bytes());
        field("value", &value.to_bits().to_le_bytes());
    }
    let derivation = match options.derivation {
        BridgeDerivation::Exhaustive => b"exhaustive".as_slice(),
        BridgeDerivation::Adjacent => b"adjacent".as_slice(),
    };
    field("derivation", derivation);
    field("bridge_ohms", &options.bridge_ohms.to_bits().to_le_bytes());
    field("pinhole_ohms", &options.pinhole_ohms.to_bits().to_le_bytes());
    field("skip_faults", &(options.skip_faults as u64).to_le_bytes());
    field(
        "max_faults",
        &(options.max_faults.map(|v| v as u64).unwrap_or(u64::MAX)).to_le_bytes(),
    );
    let dispatch = match options.dispatch {
        None => "auto".to_string(),
        Some((solver, ordering)) => format!("{solver:?}/{ordering:?}"),
    };
    field("dispatch", dispatch.as_bytes());
    field(
        "max_newton_iters",
        &(options.max_newton_iters.map(|v| v as u64).unwrap_or(u64::MAX)).to_le_bytes(),
    );
    field(
        "budget_ms",
        &options.budget_ms.unwrap_or(u64::MAX).to_le_bytes(),
    );
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 test vectors.
    #[test]
    fn sha256_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a' — exercises the multi-block + buffered path
        // (unaligned 100-byte updates straddle block boundaries).
        let mut h = Sha256::new();
        let chunk = [b'a'; 100];
        for _ in 0..10_000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn digest_separates_fields() {
        let base = request_digest("m", b"deck", &[], &[], &DigestOptions::default());
        // Moving bytes between fields must change the digest.
        let shifted = request_digest("m", b"dec", &["k".into()], &[], &DigestOptions::default());
        assert_ne!(base, shifted);
        // The macro name appears in the report, so it is in the key.
        assert_ne!(base, request_digest("n", b"deck", &[], &[], &DigestOptions::default()));
        // Any option flip changes it too.
        let opts = DigestOptions { skip_faults: 1, ..DigestOptions::default() };
        assert_ne!(base, request_digest("m", b"deck", &[], &[], &opts));
        let opts = DigestOptions { max_newton_iters: Some(7), ..DigestOptions::default() };
        assert_ne!(base, request_digest("m", b"deck", &[], &[], &opts));
    }

    #[test]
    fn digest_ignores_param_order() {
        let a = [("x".to_string(), 1.0), ("y".to_string(), 2.0)];
        let b = [("y".to_string(), 2.0), ("x".to_string(), 1.0)];
        assert_eq!(
            request_digest("m", b"d", &[], &a, &DigestOptions::default()),
            request_digest("m", b"d", &[], &b, &DigestOptions::default()),
        );
    }
}
