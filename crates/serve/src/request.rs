//! Typed campaign requests: the JSON body of `POST /v1/campaign`
//! decoded into a [`CampaignRequest`], plus the server-side
//! [`ServerCeilings`] every request's budgets are clamped under.

use castg_faults::BridgeDerivation;
use castg_spice::{OrderingKind, SolverKind};

use crate::json::Json;

/// One campaign job, as posted by a client.
///
/// ```json
/// {
///   "name": "divider",
///   "deck": "V1 vin 0 DC 5\nR1 vin out 1k\nR2 out 0 2k\n",
///   "configs": ["macro type: ...\ntest configuration: ...\n..."],
///   "params": {"rload": 2e3},
///   "faults": "exhaustive",
///   "ordering": "auto",
///   "bridge_ohms": 10e3,
///   "pinhole_ohms": 2e3,
///   "skip_faults": 0,
///   "max_faults": 100,
///   "max_newton_iters": 2000,
///   "budget_ms": 5000
/// }
/// ```
///
/// `deck` and `configs` are required; everything else defaults exactly
/// like the `castg generate` CLI flags of the same names. Unknown
/// top-level fields are rejected (a typo must not silently change the
/// cache key semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRequest {
    /// Macro name used in the report (default `"netlist"`).
    pub name: String,
    /// The SPICE deck text.
    pub deck: String,
    /// Configuration description texts (the server sorts these into
    /// canonical order before assigning ids).
    pub configs: Vec<String>,
    /// `.param` overrides, `name → value`.
    pub params: Vec<(String, f64)>,
    /// Bridge-derivation mode.
    pub derivation: BridgeDerivation,
    /// Dictionary bridge resistance (ohms).
    pub bridge_ohms: f64,
    /// Dictionary pinhole resistance (ohms).
    pub pinhole_ohms: f64,
    /// Forced solver/ordering pair (`None` = heuristics).
    pub dispatch: Option<(SolverKind, OrderingKind)>,
    /// Faults skipped off the front of the dictionary.
    pub skip_faults: usize,
    /// Dictionary truncation after the skip.
    pub max_faults: Option<usize>,
    /// Requested Newton-iteration allowance per coverage item.
    pub max_newton_iters: Option<usize>,
    /// Requested wall-clock budget per coverage item (ms).
    pub budget_ms: Option<u64>,
}

/// Server-enforced ceilings on per-request resources. Every request's
/// effective budget is `min(requested, ceiling)`; a request that asks
/// for nothing gets the ceiling. This bounds what any one tenant can
/// pin a worker for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCeilings {
    /// Hard cap on faults per campaign (after skip/max slicing).
    pub max_faults: usize,
    /// Hard cap on configs per campaign.
    pub max_configs: usize,
    /// Newton-iteration ceiling per coverage work item.
    pub max_newton_iters: usize,
    /// Wall-clock ceiling per coverage work item (ms).
    pub budget_ms: u64,
    /// Hard cap on jobs in one `POST /v1/batch`.
    pub max_batch_jobs: usize,
}

impl Default for ServerCeilings {
    fn default() -> Self {
        ServerCeilings {
            max_faults: 4096,
            max_configs: 64,
            max_newton_iters: 200_000,
            budget_ms: 60_000,
            max_batch_jobs: 256,
        }
    }
}

impl ServerCeilings {
    /// The effective Newton allowance for a request: the requested
    /// value clamped under the ceiling, or the ceiling when absent.
    pub fn clamp_newton(&self, requested: Option<usize>) -> usize {
        requested.map_or(self.max_newton_iters, |v| v.min(self.max_newton_iters))
    }

    /// The effective wall-clock budget for a request.
    pub fn clamp_budget_ms(&self, requested: Option<u64>) -> u64 {
        requested.map_or(self.budget_ms, |v| v.min(self.budget_ms))
    }
}

/// A request-decoding error, reported as HTTP 400.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError(pub String);

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RequestError {}

fn err<T>(msg: impl Into<String>) -> Result<T, RequestError> {
    Err(RequestError(msg.into()))
}

const KNOWN_FIELDS: &[&str] = &[
    "name",
    "deck",
    "configs",
    "params",
    "faults",
    "ordering",
    "bridge_ohms",
    "pinhole_ohms",
    "skip_faults",
    "max_faults",
    "max_newton_iters",
    "budget_ms",
];

impl CampaignRequest {
    /// Decodes one campaign job from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// [`RequestError`] naming the offending field for missing/extra
    /// fields, wrong types, or out-of-range values.
    pub fn from_json(v: &Json) -> Result<Self, RequestError> {
        let members = match v.as_object() {
            Some(m) => m,
            None => return err(format!("request body must be an object, got {}", v.type_name())),
        };
        for (key, _) in members {
            if !KNOWN_FIELDS.contains(&key.as_str()) {
                return err(format!(
                    "unknown field `{key}` (known: {})",
                    KNOWN_FIELDS.join(", ")
                ));
            }
        }

        let deck = match v.get("deck").map(|d| (d.as_str(), d.type_name())) {
            Some((Some(s), _)) => s.to_string(),
            Some((None, t)) => return err(format!("`deck` must be a string, got {t}")),
            None => return err("missing required field `deck`"),
        };
        let configs_v = match v.get("configs") {
            Some(c) => c,
            None => return err("missing required field `configs`"),
        };
        let configs_arr = match configs_v.as_array() {
            Some(a) => a,
            None => {
                return err(format!("`configs` must be an array, got {}", configs_v.type_name()))
            }
        };
        if configs_arr.is_empty() {
            return err("`configs` must hold at least one configuration description");
        }
        let mut configs = Vec::with_capacity(configs_arr.len());
        for (i, c) in configs_arr.iter().enumerate() {
            match c.as_str() {
                Some(s) => configs.push(s.to_string()),
                None => return err(format!("`configs[{i}]` must be a string, got {}", c.type_name())),
            }
        }

        let name = match v.get("name") {
            None => "netlist".to_string(),
            Some(n) => match n.as_str() {
                Some(s) => s.to_string(),
                None => return err(format!("`name` must be a string, got {}", n.type_name())),
            },
        };

        let mut params = Vec::new();
        if let Some(p) = v.get("params") {
            let members = match p.as_object() {
                Some(m) => m,
                None => return err(format!("`params` must be an object, got {}", p.type_name())),
            };
            for (pname, pval) in members {
                match pval.as_f64() {
                    Some(x) => params.push((pname.clone(), x)),
                    None => {
                        return err(format!(
                            "`params.{pname}` must be a number, got {}",
                            pval.type_name()
                        ))
                    }
                }
            }
        }

        let derivation = match v.get("faults") {
            None => BridgeDerivation::Exhaustive,
            Some(f) => match f.as_str() {
                Some("exhaustive") => BridgeDerivation::Exhaustive,
                Some("adjacent") => BridgeDerivation::Adjacent,
                Some(other) => {
                    return err(format!("`faults` must be exhaustive or adjacent, got `{other}`"))
                }
                None => return err(format!("`faults` must be a string, got {}", f.type_name())),
            },
        };

        let dispatch = match v.get("ordering") {
            None => None,
            Some(o) => match o.as_str() {
                Some("auto") => None,
                Some("natural") => Some((SolverKind::Sparse, OrderingKind::Natural)),
                Some("amd") => Some((SolverKind::Sparse, OrderingKind::Amd)),
                Some("btf") => Some((SolverKind::Sparse, OrderingKind::Btf)),
                Some(other) => {
                    return err(format!(
                        "`ordering` must be auto, natural, amd or btf, got `{other}`"
                    ))
                }
                None => return err(format!("`ordering` must be a string, got {}", o.type_name())),
            },
        };

        let num = |field: &str| -> Result<Option<f64>, RequestError> {
            match v.get(field) {
                None => Ok(None),
                Some(n) => match n.as_f64() {
                    Some(x) if x > 0.0 => Ok(Some(x)),
                    Some(_) => err(format!("`{field}` must be positive")),
                    None => err(format!("`{field}` must be a number, got {}", n.type_name())),
                },
            }
        };
        let uint = |field: &str| -> Result<Option<usize>, RequestError> {
            match v.get(field) {
                None => Ok(None),
                Some(n) => match n.as_usize() {
                    Some(x) => Ok(Some(x)),
                    None => err(format!(
                        "`{field}` must be a non-negative integer, got {}",
                        n.type_name()
                    )),
                },
            }
        };

        Ok(CampaignRequest {
            name,
            deck,
            configs,
            params,
            derivation,
            bridge_ohms: num("bridge_ohms")?.unwrap_or(10e3),
            pinhole_ohms: num("pinhole_ohms")?.unwrap_or(2e3),
            dispatch,
            skip_faults: uint("skip_faults")?.unwrap_or(0),
            max_faults: uint("max_faults")?,
            max_newton_iters: uint("max_newton_iters")?,
            budget_ms: uint("budget_ms")?.map(|v| v as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn decode(body: &str) -> Result<CampaignRequest, RequestError> {
        CampaignRequest::from_json(&parse_json(body.as_bytes()).unwrap())
    }

    #[test]
    fn minimal_request_gets_cli_defaults() {
        let r = decode(r#"{"deck":"R1 a 0 1k\n","configs":["cfg"]}"#).unwrap();
        assert_eq!(r.name, "netlist");
        assert_eq!(r.derivation, BridgeDerivation::Exhaustive);
        assert_eq!(r.bridge_ohms, 10e3);
        assert_eq!(r.pinhole_ohms, 2e3);
        assert_eq!(r.dispatch, None);
        assert_eq!(r.skip_faults, 0);
        assert_eq!(r.max_faults, None);
        assert_eq!(r.max_newton_iters, None);
        assert_eq!(r.budget_ms, None);
    }

    #[test]
    fn full_request_round_trips() {
        let r = decode(
            r#"{"name":"ota","deck":"d","configs":["b","a"],
                "params":{"w":2.0},"faults":"adjacent","ordering":"btf",
                "bridge_ohms":5e3,"pinhole_ohms":1e3,"skip_faults":2,
                "max_faults":10,"max_newton_iters":500,"budget_ms":100}"#,
        )
        .unwrap();
        assert_eq!(r.name, "ota");
        assert_eq!(r.configs, vec!["b".to_string(), "a".to_string()]);
        assert_eq!(r.derivation, BridgeDerivation::Adjacent);
        assert_eq!(r.dispatch, Some((SolverKind::Sparse, OrderingKind::Btf)));
        assert_eq!(r.params, vec![("w".to_string(), 2.0)]);
        assert_eq!(r.skip_faults, 2);
        assert_eq!(r.max_faults, Some(10));
        assert_eq!(r.max_newton_iters, Some(500));
        assert_eq!(r.budget_ms, Some(100));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let e = decode(r#"{"deck":"d","configs":["c"],"thread":4}"#).unwrap_err();
        assert!(e.0.contains("unknown field `thread`"), "{e}");
    }

    #[test]
    fn typed_field_errors() {
        for (body, needle) in [
            (r#"{"configs":["c"]}"#, "missing required field `deck`"),
            (r#"{"deck":"d"}"#, "missing required field `configs`"),
            (r#"{"deck":"d","configs":[]}"#, "at least one"),
            (r#"{"deck":"d","configs":[1]}"#, "`configs[0]` must be a string"),
            (r#"{"deck":"d","configs":["c"],"faults":"all"}"#, "`faults` must be"),
            (r#"{"deck":"d","configs":["c"],"ordering":"rcm"}"#, "`ordering` must be"),
            (r#"{"deck":"d","configs":["c"],"max_faults":-1}"#, "non-negative integer"),
            (r#"{"deck":"d","configs":["c"],"bridge_ohms":0}"#, "must be positive"),
            (r#"[1]"#, "must be an object"),
        ] {
            let e = decode(body).unwrap_err();
            assert!(e.0.contains(needle), "body {body}: got `{e}`");
        }
    }

    #[test]
    fn ceilings_clamp() {
        let c = ServerCeilings { max_newton_iters: 100, budget_ms: 50, ..Default::default() };
        assert_eq!(c.clamp_newton(None), 100);
        assert_eq!(c.clamp_newton(Some(1000)), 100);
        assert_eq!(c.clamp_newton(Some(7)), 7);
        assert_eq!(c.clamp_budget_ms(None), 50);
        assert_eq!(c.clamp_budget_ms(Some(500)), 50);
        assert_eq!(c.clamp_budget_ms(Some(5)), 5);
    }
}
