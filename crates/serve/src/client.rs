//! A minimal blocking HTTP/1.1 client for the daemon's own protocol —
//! used by `castg bench-serve` and the integration tests. Keep-alive
//! with one transparent reconnect on a broken connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to one daemon.
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    timeout: Duration,
}

impl Client {
    /// Creates a client for `addr` (connects lazily).
    pub fn new(addr: SocketAddr) -> Self {
        Client { addr, stream: None, timeout: Duration::from_secs(120) }
    }

    fn connect(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the full response. Retries once on a
    /// broken keep-alive connection (the server may have closed it
    /// between requests).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on connect/read/write failures or a response
    /// the client cannot parse.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        match self.request_once(method, path, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                self.stream = None; // reconnect once
                self.request_once(method, path, body)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: castg\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.connect()?;
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;

        // Read the response head.
        let mut buf = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p + 4;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head_text = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 head"))?;
        let mut lines = head_text.split("\r\n");
        let status_line = lines
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty head"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
            })?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "missing Content-Length")
            })?;
        let keep_alive = headers
            .iter()
            .find(|(n, _)| n == "connection")
            .map(|(_, v)| !v.eq_ignore_ascii_case("close"))
            .unwrap_or(true);

        let mut body_bytes = buf[head_end..].to_vec();
        while body_bytes.len() < content_length {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            body_bytes.extend_from_slice(&chunk[..n]);
        }
        body_bytes.truncate(content_length);
        if !keep_alive {
            self.stream = None;
        }
        Ok(ClientResponse { status, headers, body: body_bytes })
    }
}
