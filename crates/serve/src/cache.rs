//! The daemon's two caches.
//!
//! * [`ResultCache`] — content-addressed: canonical request digest →
//!   the exact response bytes served for it. A hit replays the stored
//!   bytes, so hit and miss responses are byte-identical by
//!   construction.
//! * [`PlanCache`] — process-wide lift of the per-`Circuit` plan
//!   sharing: canonical deck digest → a compiled [`Circuit`] whose
//!   `StampPlan`/`SparseSymbolic` are `Arc`-shared into every campaign
//!   that uses the same deck. A second raw-text memo level maps
//!   `H(raw deck + param overrides)` to the canonical digest so repeat
//!   decks skip the parse entirely.
//!
//! Both are bounded LRUs under a [`Mutex`]; capacities are small
//! enough that O(n) eviction scans are noise next to a campaign.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use castg_spice::Circuit;

use crate::digest::Digest;

/// A bounded least-recently-used map.
///
/// Recency is a monotonic counter per entry; eviction scans for the
/// minimum. With the daemon's capacities (tens to hundreds of entries)
/// this is simpler and no slower in practice than an intrusive list.
pub struct Lru<K, V> {
    map: HashMap<K, (V, u64)>,
    capacity: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// Creates an LRU holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Lru { map: HashMap::new(), capacity: capacity.max(1), tick: 0 }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((value, stamp)) => {
                *stamp = tick;
                Some(value)
            }
            None => None,
        }
    }

    /// Inserts `key`, evicting the least-recently-used entry if full.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A response stored in the result cache: enough to replay it exactly.
#[derive(Clone)]
pub struct StoredResponse {
    /// HTTP status the original response carried.
    pub status: u16,
    /// The exact body bytes.
    pub body: Arc<Vec<u8>>,
    /// Hex form of the request digest (served in `X-Castg-Digest`).
    pub digest_hex: String,
}

/// Content-addressed result cache with hit/miss counters.
pub struct ResultCache {
    inner: Mutex<Lru<Digest, StoredResponse>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Creates a result cache bounded to `capacity` responses.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Lru::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a digest, counting the hit or miss.
    pub fn get(&self, digest: &Digest) -> Option<StoredResponse> {
        let mut inner = self.inner.lock().expect("result cache poisoned");
        match inner.get(digest) {
            Some(found) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(found.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a response under its digest.
    pub fn insert(&self, digest: Digest, response: StoredResponse) {
        self.inner.lock().expect("result cache poisoned").insert(digest, response);
    }

    /// (hits, misses, live entries).
    pub fn stats(&self) -> (u64, u64, usize) {
        let len = self.inner.lock().expect("result cache poisoned").len();
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed), len)
    }
}

/// A compiled deck held by the plan cache.
///
/// Cloning the [`Circuit`] shares its compiled `StampPlan` and
/// `SparseSymbolic` (they are `Arc`s inside), so every campaign built
/// from this entry reuses the same symbolic factorization.
#[derive(Clone)]
pub struct PlanEntry {
    /// Compiled circuit (plan + symbolic already built).
    pub circuit: Circuit,
    /// Deck title, if the deck carried one.
    pub title: Option<String>,
    /// Resolved `.param` table in deck order.
    pub params: Vec<(String, f64)>,
    /// Canonical deck bytes (writer output, or raw bytes when the deck
    /// is not representable by the writer).
    pub canonical_deck: Arc<Vec<u8>>,
}

/// Process-wide plan cache with a raw-text memo level.
pub struct PlanCache {
    /// `H(raw deck text + param overrides)` → canonical deck digest.
    /// Lets byte-identical resubmissions skip the parse.
    raw_memo: Mutex<Lru<Digest, Digest>>,
    /// Canonical deck digest → compiled entry.
    plans: Mutex<Lru<Digest, PlanEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates a plan cache bounded to `capacity` compiled decks (the
    /// raw memo gets 4× that — memo entries are two digests).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            raw_memo: Mutex::new(Lru::new(capacity.max(1) * 4)),
            plans: Mutex::new(Lru::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Memoized raw-text lookup: the canonical digest for this exact
    /// raw deck + overrides, if we have parsed it before.
    pub fn lookup_raw(&self, raw_key: &Digest) -> Option<Digest> {
        self.raw_memo.lock().expect("plan cache poisoned").get(raw_key).copied()
    }

    /// Records the raw-text → canonical mapping.
    pub fn memo_raw(&self, raw_key: Digest, canonical: Digest) {
        self.raw_memo.lock().expect("plan cache poisoned").insert(raw_key, canonical);
    }

    /// Looks up a compiled entry, counting the hit or miss.
    pub fn get(&self, canonical: &Digest) -> Option<PlanEntry> {
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        match plans.get(canonical) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a compiled entry.
    pub fn insert(&self, canonical: Digest, entry: PlanEntry) {
        self.plans.lock().expect("plan cache poisoned").insert(canonical, entry);
    }

    /// (hits, misses, live compiled decks).
    pub fn stats(&self) -> (u64, u64, usize) {
        let len = self.plans.lock().expect("plan cache poisoned").len();
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut lru: Lru<u32, &str> = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.get(&1), Some(&"a")); // refresh 1 → 2 is oldest
        lru.insert(3, "c");
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&"a"));
        assert_eq!(lru.get(&3), Some(&"c"));
    }

    #[test]
    fn lru_update_keeps_len() {
        let mut lru: Lru<u32, &str> = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(1, "b");
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&1), Some(&"b"));
    }

    #[test]
    fn result_cache_counts() {
        let cache = ResultCache::new(4);
        let d = [7u8; 32];
        assert!(cache.get(&d).is_none());
        cache.insert(
            d,
            StoredResponse { status: 200, body: Arc::new(b"{}".to_vec()), digest_hex: "07".into() },
        );
        let hit = cache.get(&d).unwrap();
        assert_eq!(hit.status, 200);
        assert_eq!(*hit.body, b"{}".to_vec());
        assert_eq!(cache.stats(), (1, 1, 1));
    }
}
