//! `castg-serve` — a multi-tenant campaign daemon for the castg
//! pipeline: HTTP/1.1 + JSON over `std::net`, a content-addressed
//! result cache, and a process-wide plan cache.
//!
//! The pipeline crates answer "run this campaign once"; this crate
//! answers "keep answering campaign requests". A long-running daemon
//! amortizes what the CLI pays on every invocation — process startup,
//! deck parsing, stamp-plan compilation, symbolic factorization — and
//! deduplicates identical work across tenants entirely.
//!
//! Everything is in-tree: the HTTP parser ([`http`]), the JSON parser
//! ([`json`]) and the SHA-256 ([`digest`]) are small hand-rolled
//! implementations because the build environment has no crate registry,
//! matching the rest of the workspace (vendored stand-ins, no external
//! deps).
//!
//! # Protocol
//!
//! HTTP/1.1 over TCP, JSON bodies, `Content-Length` framing only (no
//! chunked transfer), keep-alive by default:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/campaign` | One campaign: deck text + config descriptions + options in, the full pipeline report out (the same JSON shape `castg generate --json` writes, rendered by `castg_core::report::render_json_report`). |
//! | `POST /v1/batch` | `{"jobs": [<campaign>, ...]}`: N jobs in, N reports out in order, fanned over one shared worker pool. |
//! | `GET /v1/health` | Liveness + uptime. |
//! | `GET /v1/stats` | Cache hit rates, campaigns served, accumulated fault-outcome tallies, convergence-ladder totals. |
//! | `POST /v1/shutdown` | Graceful shutdown (also SIGINT/SIGTERM). |
//!
//! Campaign responses carry two extra headers — `X-Castg-Digest` (the
//! hex request digest) and `X-Castg-Cache` (`hit`/`miss`) — so the
//! body stays byte-identical to the CLI's `--json` output and between
//! cache hits and the miss that filled them.
//!
//! # The cache key, precisely
//!
//! The result cache is **content-addressed**: the key is a SHA-256
//! over the *canonicalized* request ([`digest::request_digest`]):
//!
//! * the deck parsed and re-serialized through the exact round-trip
//!   writer (`castg_netlist::canonical_deck_bytes`), which erases
//!   formatting, comments and `.param` indirection while preserving
//!   semantics bit-for-bit (identifier case included — net spellings
//!   surface in report bytes, so they are semantic);
//! * the config texts in sorted order (ids are assigned after the same
//!   sort, so reordering is digest- *and* report-neutral);
//! * the macro name (it appears verbatim in the report body);
//! * the resolved parameter table, derivation options, forced
//!   solver/ordering, and the **post-clamp** budgets.
//!
//! Thread counts are excluded: campaign reports are bit-identical at
//! any worker count (PR 7's structural guarantee), so requests
//! differing only in parallelism share entries. A cache hit replays
//! the stored bytes, making hit == miss byte equality structural
//! rather than probabilistic.
//!
//! The plan cache sits below it: canonical deck digest → compiled
//! [`castg_spice::Circuit`] whose `StampPlan`/`SparseSymbolic` are
//! `Arc`-shared into every campaign on the same deck, plus a raw-text
//! memo so byte-identical resubmissions skip parsing entirely.
//!
//! # Budget ceilings and failure isolation
//!
//! Every request runs under [`request::ServerCeilings`]: per-item
//! Newton-iteration and wall-clock budgets are `min(requested,
//! ceiling)` (the ceiling applies when the request is silent), fault
//! counts and batch sizes are capped, so no tenant can pin a worker
//! indefinitely. The pipeline runs under `catch_unwind` — a panicking
//! campaign is a 500 response for that tenant, never a dead worker —
//! and per-item panics inside the campaign surface as typed
//! `panicked` outcomes exactly as in the CLI.
//!
//! # In-process use
//!
//! Tests and `castg bench-serve` spawn the daemon in-process:
//!
//! ```
//! use castg_serve::server::{spawn, ServerConfig};
//! use castg_serve::client::Client;
//!
//! let handle = spawn(ServerConfig::default())?;
//! let mut client = Client::new(handle.addr);
//! let health = client.request("GET", "/v1/health", b"")?;
//! assert_eq!(health.status, 200);
//! handle.shutdown();
//! assert!(handle.join());
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)] // one documented exception: server::signal
#![warn(missing_docs)]

pub mod bench;
pub mod cache;
pub mod campaign;
pub mod client;
pub mod digest;
pub mod http;
pub mod json;
pub mod request;
pub mod server;

pub use bench::{run_bench_serve, BenchServeOptions, BenchServeReport};
pub use campaign::{CacheStatus, CampaignResponse, Engine};
pub use digest::{hex, request_digest, sha256, sort_configs, Digest, DigestOptions};
pub use request::{CampaignRequest, ServerCeilings};
pub use server::{serve_forever, spawn, ServerConfig, ServerHandle};
