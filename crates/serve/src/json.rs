//! A minimal JSON value parser for request bodies.
//!
//! The build image has no registry, so — like the deck parser and the
//! fuzz harness — this is a small in-tree implementation of exactly
//! what the daemon consumes: RFC 8259 values with typed, located errors
//! and a recursion cap. It never panics on any input; the
//! `fuzz_http_request` target pins that.

use std::fmt;

/// Maximum nesting depth of arrays/objects (a request body is a flat
/// campaign description; 64 is generous and keeps recursion bounded).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (doubles; campaign counts fit exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered (duplicate keys: last wins on
    /// lookup, both retained for error reporting).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (last occurrence wins, per common practice).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Number payload as a non-negative integer (rejects fractional,
    /// negative and out-of-range values).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// One-word description of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A typed JSON parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError { offset: self.pos, reason: reason.into() })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                self.pos -= 1;
                self.err(format!("expected `{}`, found `{}`", b as char, got as char))
            }
            None => self.err(format!("expected `{}`, found end of input", b as char)),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return self.err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => self.err(format!("unexpected byte 0x{other:02x}")),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("malformed literal (expected `{word}`)"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one leading zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return self.err("malformed number (no integer digits)"),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("malformed number (no fraction digits)");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("malformed number (no exponent digits)");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The slice is ASCII by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number slice is ASCII");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => self.err(format!("number `{text}` overflows a double")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    None => return self.err("unterminated escape"),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return self.err("lone high surrogate");
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return self.err("invalid low surrogate");
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return self.err("escape is not a scalar value"),
                        }
                    }
                    Some(other) => {
                        return self.err(format!("unknown escape `\\{}`", other as char))
                    }
                },
                Some(b) if b < 0x20 => {
                    return self.err("raw control character in string");
                }
                Some(b) => {
                    // Re-validate UTF-8 at the boundary we sliced.
                    let len = match b {
                        0x00..=0x7f => 0,
                        0xc0..=0xdf => 1,
                        0xe0..=0xef => 2,
                        0xf0..=0xf7 => 3,
                        _ => return self.err("invalid UTF-8 lead byte in string"),
                    };
                    let start = self.pos - 1;
                    for _ in 0..len {
                        match self.bump() {
                            Some(c) if (0x80..0xc0).contains(&c) => {}
                            _ => return self.err("invalid UTF-8 continuation in string"),
                        }
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8 sequence in string"),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return self.err("malformed \\u escape"),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                Some(_) => {
                    self.pos -= 1;
                    return self.err("expected `,` or `]` in array");
                }
                None => return self.err("unterminated array"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(members)),
                Some(_) => {
                    self.pos -= 1;
                    return self.err("expected `,` or `}` in object");
                }
                None => return self.err("unterminated object"),
            }
        }
    }
}

/// Parses one JSON value (with nothing but whitespace after it).
///
/// # Errors
///
/// [`JsonError`] with the byte offset for any malformed input; never
/// panics.
pub fn parse_json(input: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input, pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing bytes after the JSON value");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_campaign_shape() {
        let v = parse_json(
            br#"{"name":"divider","deck":"V1 a 0 DC 5\nR1 a 0 1k\n",
                 "configs":["cfg one"],"max_faults":4,
                 "params":{"rload":2e3},"strictness":null,"flag":true}"#,
        )
        .unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("divider"));
        assert_eq!(v.get("max_faults").and_then(Json::as_usize), Some(4));
        assert_eq!(v.get("configs").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert_eq!(
            v.get("params").and_then(|p| p.get("rload")).and_then(Json::as_f64),
            Some(2e3)
        );
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert!(v.get("deck").unwrap().as_str().unwrap().contains('\n'));
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse_json(br#""a\"b\\c\/\b\f\n\r\t\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/\u{8}\u{c}\n\r\t\u{e9}\u{1f600}"));
    }

    #[test]
    fn typed_errors_never_panic() {
        for bad in [
            &b"{"[..],
            b"[1,",
            b"\"\\u12",
            b"\"\\ud800\"",
            b"01",
            b"1e",
            b"nul",
            b"{\"a\" 1}",
            b"[]x",
            b"\"\xff\"",
            b"1e999",
        ] {
            let e = parse_json(bad).unwrap_err();
            assert!(!e.reason.is_empty());
        }
        // Depth cap.
        let deep = [b'['; 200].to_vec();
        assert!(parse_json(&deep).is_err());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse_json(br#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
    }
}
